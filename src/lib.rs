//! # keybridge
//!
//! Keyword search over relational databases, bridging the usability of
//! keyword queries and the expressiveness of structured queries — a full
//! reproduction of Demidova's *"Usability and Expressiveness in Database
//! Keyword Search: Bridging the Gap"* (VLDB 2009 PhD Workshop / doctoral
//! dissertation 2013).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`relstore`] | in-memory relational engine: schema, PK/FK indexes, join-tree execution |
//! | [`index`] | inverted index with TF/ATF/DF/IDF and joint co-occurrence statistics |
//! | [`core`] | keyword → structured-query framework: templates, interpretations, probabilistic model, rankers |
//! | [`iqp`] | incremental query construction: options, information-gain sessions, construction plans |
//! | [`divq`] | diversification of interpretations; α-nDCG-W and WS-recall metrics |
//! | [`freeq`] | ontology-based construction options and lazy traversal for very large schemas |
//! | [`yagof`] | ontology ↔ database matching by instance overlap |
//! | [`datagen`] | seeded synthetic datasets, ontologies, and keyword workloads |
//!
//! ## Quickstart
//!
//! ```
//! use keybridge::core::{Interpreter, InterpreterConfig, KeywordQuery, TemplateCatalog};
//! use keybridge::datagen::{ImdbConfig, ImdbDataset};
//! use keybridge::index::InvertedIndex;
//!
//! // A seeded movie database, its inverted index, and its join templates.
//! let data = ImdbDataset::generate(ImdbConfig::tiny(42)).unwrap();
//! let index = InvertedIndex::build(&data.db);
//! let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
//!
//! // Translate a keyword query into ranked structured queries. `top_k`
//! // generates best-first and stops once the k-th best is provably found;
//! // `ranked_interpretations` materializes and sorts the whole space.
//! let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
//! let query = KeywordQuery::parse(index.tokenizer(), "tom hanks");
//! let top = interpreter.top_k_complete(&query, 10);
//! assert!(!top.is_empty());
//! assert!(top.len() <= 10);
//! ```
//!
//! ## Serving concurrent users over a live store
//!
//! For multi-user traffic, bundle the structures into an `Arc`-shared
//! [`core::SearchSnapshot`] and start a [`core::SearchService`] worker pool
//! over it. Concurrent queries share thread-safe, lock-striped
//! non-emptiness and execution caches, so one user's pruning work prunes
//! every other user's search — while every reply stays byte-identical to
//! the single-threaded path. The store is mutable: `ingest` absorbs insert
//! batches (integrity-checked, index maintained incrementally) and
//! publishes each as the next epoch, with a fresh shared-cache generation
//! so stale derived state can never leak into post-update answers:
//!
//! ```
//! use keybridge::core::{InterpreterConfig, KeywordQuery, SearchService, SearchSnapshot};
//! use keybridge::datagen::{ImdbConfig, ImdbDataset};
//! use keybridge::relstore::{RowBatch, Value};
//! use std::sync::Arc;
//!
//! let data = ImdbDataset::generate(ImdbConfig::tiny(42)).unwrap();
//! let actor = data.db.schema().table_id("actor").unwrap();
//! let snapshot = Arc::new(
//!     SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap(),
//! );
//! let service = SearchService::start(snapshot, 2);
//!
//! // Submit asynchronously from any thread; block on the ticket when ready.
//! let query = KeywordQuery::from_terms(vec!["tom".into()]);
//! let ticket = service.submit(query.clone(), 5);
//! // The ticket payload is a Result: a panicking worker replies with a
//! // typed error (the panic is contained) instead of hanging up.
//! let reply = ticket.wait().expect("service alive").expect("request served");
//! assert!(reply.answers.len() <= 5);
//! assert_eq!(reply.epoch.0, 0);
//!
//! // Ingest a batch: it becomes visible at the next snapshot epoch.
//! let batch: RowBatch = vec![(actor, vec![Value::Int(999), Value::text("tom fresh")])];
//! let receipt = service.ingest(&batch).expect("valid batch");
//! assert_eq!(receipt.epoch.0, 1);
//! assert_eq!(service.search_versioned(&query, 5).epoch, receipt.epoch);
//!
//! // Diversified top-k (Alg. 4.1) and incremental construction sessions
//! // are served request modes too; a session pins the epoch it was opened
//! // on, so concurrent ingests never shift its window.
//! use keybridge::core::{DiversifyOptions, SessionConfig};
//! let div = service.search_diversified(&query, DiversifyOptions::default());
//! assert!(div.answers.len() <= 10 && div.answers.len() <= div.pool);
//! assert_eq!(div.epoch, receipt.epoch);
//! let session = service.open_session(&query, 10, SessionConfig::default());
//! assert_eq!(session.epoch, receipt.epoch);
//! let window = service.session_answers(session.id, 3).expect("session open");
//! assert_eq!(window.epoch, session.epoch);
//! assert!(service.close_session(session.id));
//! ```
//!
//! ## Durable stores
//!
//! A service started with [`core::SearchService::start_durable`] survives
//! process death: every accepted batch is appended to a CRC-framed
//! write-ahead log and fsynced *before* its epoch is published,
//! [`core::SearchService::checkpoint`] folds the log into an atomically
//! replaced, checksummed snapshot file, and [`core::SearchService::open`]
//! recovers the newest durable epoch — replaying the log tail and
//! discarding a torn final record. Recovered answers are byte-identical to
//! a never-crashed service's (`tests/recovery.rs` proves this at every
//! injected kill point); `examples/quickstart.rs` §8 walks the
//! checkpoint → crash → reopen cycle.
//!
//! ## Sharded scatter-gather serving
//!
//! The same request surface scales out horizontally.
//! [`core::ServiceBuilder`] with `.shards(k)` partitions the rows into k
//! FK-closed shards ([`relstore::assign_shards`]) and starts a
//! [`core::ShardedService`]: per-shard worker pools, epoch chains, and
//! cache generations behind one coordinator that scatters each request,
//! merges the per-shard streams, and replies **byte-identically** to the
//! single-shard service (`tests/sharded.rs` proves this on every fixture
//! under concurrent mixed-mode load). Ingested batches route to their
//! owning shards and advance only those shards' epochs; replies carry the
//! per-shard epoch vector. Both deployments implement the
//! [`core::ServeRequests`] trait — one typed [`core::Request`] enum in,
//! one [`core::Reply`] ticket out — so callers are deployment-agnostic;
//! `examples/quickstart.rs` §9 walks the sharded end-to-end.

pub use keybridge_core as core;
pub use keybridge_datagen as datagen;
pub use keybridge_divq as divq;
pub use keybridge_freeq as freeq;
pub use keybridge_index as index;
pub use keybridge_iqp as iqp;
pub use keybridge_relstore as relstore;
pub use keybridge_yagof as yagof;
