//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API subset the bench crate uses — `Criterion`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! runner: a short warm-up, then `sample_size` timed samples, reporting the
//! median and spread to stdout. No statistics engine, no plotting, no
//! comparison against saved baselines; for that this workspace snapshots
//! bench output explicitly (see `BENCH_baseline.json`).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the stand-in runs every batch at
/// size 1, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Opaque hint preventing the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// No-op in the stand-in (upstream parses CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warmup: self.warmup,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Upstream prints a summary at drop; the stand-in reports per bench.
    pub fn final_summary(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warmup: Duration,
}

impl Bencher {
    /// Time `routine`, repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
        );
    }
}

/// Human-scale duration formatting, criterion-style.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Group benchmarks into a callable, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn runner_completes() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        quick(&mut c);
        c.final_summary();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
