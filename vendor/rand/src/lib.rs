//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal implementation of the `rand` 0.8 API surface it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded
//! via SplitMix64 — statistically solid for synthetic-data generation and
//! fully deterministic per seed, which is all the datagen and test code
//! require. The stream differs from upstream `StdRng` (ChaCha12), so seeds
//! produce different (but still stable) data than a registry build would.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a full-range value (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's widening-multiply method
/// with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((5_000..7_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_int_covers_span() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
