//! Quickstart: keyword search over a small movie database.
//!
//! Builds a seeded IMDB-like database, indexes it, translates an ambiguous
//! keyword query into ranked structured queries, and executes the best one.
//!
//! Run with: `cargo run --release --example quickstart`

use keybridge::core::{
    execute_interpretation, render_natural, render_sql, DiversifyOptions, DurableOptions,
    Interpreter, InterpreterConfig, KeywordQuery, SearchService, SearchSnapshot, ServeRequests,
    ServiceBuilder, SessionConfig, TemplateCatalog,
};
use keybridge::datagen::{ImdbConfig, ImdbDataset};
use keybridge::index::InvertedIndex;
use keybridge::relstore::{ExecOptions, Value};
use std::sync::Arc;

fn main() {
    // 1. Data + index + templates.
    let data = ImdbDataset::generate(ImdbConfig::default()).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    println!(
        "database: {} tables, {} rows; index: {} terms; catalog: {} templates",
        data.db.schema().table_count(),
        data.db.total_rows(),
        index.term_count(),
        catalog.len()
    );

    // 2. An ambiguous keyword query: "hanks" is a surname but also occurs in
    //    titles and roles; "terminal" is a title word and a company word.
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
    let query = KeywordQuery::parse(index.tokenizer(), "hanks terminal");
    let ranked = interpreter.ranked_interpretations(&query);
    println!(
        "\nquery \"{query}\" has {} candidate interpretations; top 5:",
        ranked.len()
    );
    for s in ranked.iter().take(5) {
        println!(
            "  p={:5.3}  {}",
            s.probability,
            render_natural(&data.db, &catalog, &s.interpretation)
        );
    }

    // 3. Execute the most probable interpretation through the batched
    //    hash-join executor (semi-join reduction + columnar batches).
    if let Some(best) = ranked.first() {
        println!(
            "\nSQL: {}",
            render_sql(&data.db, &catalog, &best.interpretation)
        );
        let result = execute_interpretation(
            &data.db,
            &index,
            &catalog,
            &best.interpretation,
            ExecOptions::default(),
        )
        .expect("valid interpretation executes");
        println!(
            "results: {} joining tuple trees ({} probes, {:.0}% of candidate rows \
             pruned by the semi-join pass)",
            result.len(),
            result.stats.probes,
            result.stats.semijoin_reduction() * 100.0
        );
    }

    // 4. Or skip the per-interpretation plumbing entirely: stream the top
    //    answers end to end — generation and execution interleave, and only
    //    as many bindings as needed are ever materialized.
    let (answers, stats) = interpreter.answers_top_k_with_stats(&query, 5);
    println!(
        "\ntop {} answers (of {} interpretations generated, {} executed):",
        answers.len(),
        stats.generated,
        stats.executed
    );
    for a in &answers {
        let tpl = catalog.get(a.interpretation.template);
        let cells: Vec<String> = a
            .jtt
            .iter()
            .zip(&tpl.tree.nodes)
            .map(|(row, table)| {
                let t = data.db.schema().table(*table);
                let vals = data.db.table(*table).row(*row);
                format!("{}({})", t.name, vals[1])
            })
            .collect();
        println!("  score={:7.3}  {}", a.log_score, cells.join(" ⋈ "));
    }

    // 5. Serve many users at once: bundle the immutable structures into an
    //    Arc-shared SearchSnapshot and put a SearchService worker pool in
    //    front of it. Concurrent queries share the thread-safe non-emptiness
    //    and execution caches, so each request prunes the next one's work —
    //    and every reply is byte-identical to the single-threaded path.
    let snapshot = Arc::new(SearchSnapshot::new(
        data.db,
        index,
        catalog,
        InterpreterConfig::default(),
    ));
    let service = SearchService::start(snapshot, 4);
    let tickets: Vec<_> = ["hanks terminal", "tom cruise", "hanks terminal"]
        .into_iter()
        .map(|text| {
            let q = KeywordQuery::from_terms(text.split(' ').map(str::to_owned).collect());
            (text, service.submit(q, 3))
        })
        .collect();
    println!(
        "\nserving {} concurrent requests over 4 workers:",
        tickets.len()
    );
    for (text, ticket) in tickets {
        let reply = ticket
            .wait()
            .expect("service alive")
            .expect("request served without a worker panic");
        println!(
            "  \"{text}\" -> {} answers (epoch {})",
            reply.answers.len(),
            reply.epoch
        );
    }
    let stats = service.stats();
    println!(
        "service stats: {} served; shared caches hold {} verdicts, {} predicates, \
         {} results ({} cross-query hits)",
        stats.served,
        stats.nonempty_entries,
        stats.predicate_entries,
        stats.result_entries,
        stats.nonempty_hits + stats.predicate_hits + stats.result_hits,
    );

    // 6. The database is live: ingest new rows while serving. A batch is
    //    validated as a unit (referential integrity included), spliced into
    //    the inverted index incrementally, and published as the next epoch —
    //    readers never block, and post-update answers are byte-identical to
    //    a from-scratch rebuild over the grown database.
    let snap = service.snapshot();
    let actor = snap.db.schema().table_id("actor").expect("imdb schema");
    let movie = snap.db.schema().table_id("movie").expect("imdb schema");
    let acts = snap.db.schema().table_id("acts").expect("imdb schema");
    let (new_actor, new_movie, new_acts) = (900_001, 900_002, 900_003);
    let batch: keybridge::relstore::RowBatch = vec![
        (
            actor,
            vec![Value::Int(new_actor), Value::text("tom stoppard")],
        ),
        (
            movie,
            vec![
                Value::Int(new_movie),
                Value::text("the terminal encore"),
                Value::Int(2024),
                Value::Int(1),
                Value::Int(1),
            ],
        ),
        (
            acts,
            vec![
                Value::Int(new_acts),
                Value::Int(new_actor),
                Value::Int(new_movie),
                Value::text("the writer"),
            ],
        ),
    ];
    let receipt = service.ingest(&batch).expect("valid batch");
    let q = KeywordQuery::from_terms(vec!["stoppard".into(), "encore".into()]);
    let reply = service.search_versioned(&q, 3);
    println!(
        "\ningested {} rows -> epoch {}; \"stoppard encore\" now finds {} answers \
         (served at epoch {})",
        receipt.rows,
        receipt.epoch,
        reply.answers.len(),
        reply.epoch
    );

    // 7. The expressive modes are served too. `search_diversified` returns
    //    a relevant-AND-structurally-novel interpretation list (Alg. 4.1)
    //    instead of near-duplicate readings of the same intent, and the
    //    session registry runs incremental query construction server-side —
    //    each session pinned to the epoch it was opened on, so a user's
    //    window never shifts under them while ingests land.
    let snap = service.snapshot();
    let query = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
    let div = service.search_diversified(&query, DiversifyOptions::default());
    println!(
        "\ndiversified \"hanks terminal\": {} selected from a pool of {} \
         executed interpretations (epoch {}):",
        div.answers.len(),
        div.pool,
        div.epoch
    );
    for a in div.answers.iter().take(5) {
        println!(
            "  p={:5.3} (pool rank {:2}, {} result tuples)  {}",
            a.relevance,
            a.pool_rank,
            a.keys.len(),
            render_natural(&snap.db, &snap.catalog, &a.interpretation)
        );
    }

    let mut view = service.open_session(&query, 10, SessionConfig::default());
    println!(
        "\nconstruction session {:?} opened at epoch {} with {} candidates",
        view.id, view.epoch, view.remaining
    );
    // Answer the proposed options like a user hunting the actor⋈movie
    // reading: accept everything it subsumes, reject the rest.
    while !view.finished {
        let Some(option) = view.next_option.clone() else {
            break;
        };
        let accept = view.steps.is_multiple_of(2); // a scripted user
        println!(
            "  Q{}: {}  ->  {}",
            view.steps + 1,
            option.describe(&snap.db, &snap.catalog),
            if accept { "yes" } else { "no" }
        );
        view = service
            .advance_session(view.id, &option, accept)
            .expect("session open");
    }
    let answers = service.session_answers(view.id, 3).expect("session open");
    println!(
        "after {} options the window holds {} candidates; {} answer non-empty \
         (still epoch {} — sessions are snapshot-isolated from ingests)",
        view.steps,
        view.remaining,
        answers.answers.len(),
        answers.epoch
    );
    service.close_session(view.id);

    // 8. Durability: a durable service survives process death. Every
    //    accepted batch is appended to a write-ahead log and fsynced
    //    *before* its epoch is published, and `checkpoint()` folds the log
    //    into an atomically-replaced snapshot file. Opening the directory
    //    recovers the newest durable epoch — including batches that only
    //    ever lived in the log.
    let dir = std::env::temp_dir().join(format!("keybridge-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        max_joins: 4,
        max_templates: 100_000,
        ..DurableOptions::default()
    };
    let durable = SearchService::start_durable(service.snapshot(), 2, &dir, &opts)
        .expect("fresh store directory");
    drop(service);
    let batch: keybridge::relstore::RowBatch = vec![(
        actor,
        vec![Value::Int(900_004), Value::text("tom checkpointed")],
    )];
    durable.ingest(&batch).expect("valid batch");
    durable.checkpoint().expect("checkpoint succeeds");
    let batch: keybridge::relstore::RowBatch = vec![(
        actor,
        vec![Value::Int(900_005), Value::text("tom replayed")],
    )];
    durable.ingest(&batch).expect("valid batch"); // durable only in the WAL
    let q = KeywordQuery::from_terms(vec!["tom".into()]);
    let before = durable.search_versioned(&q, 5);
    drop(durable); // "crash": all in-memory state is gone

    let recovered = SearchService::open(&dir, 2, &opts).expect("store recovers");
    let after = recovered.search_versioned(&q, 5);
    let identical = before.epoch == after.epoch
        && before.answers.len() == after.answers.len()
        && before
            .answers
            .iter()
            .zip(&after.answers)
            .all(|(a, b)| a.log_score.to_bits() == b.log_score.to_bits() && a.jtt == b.jtt);
    println!(
        "\nrecovered store at epoch {} ({} batch replayed from the WAL); \
         pre-crash and post-recovery \"tom\" answers identical: {identical}",
        after.epoch,
        recovered.stats().recovery_replayed_batches,
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // 9. Scale out: `ServiceBuilder` serves the same Request/Reply surface
    //    from a sharded scatter-gather deployment. Rows are partitioned
    //    into FK-closed shards — every foreign key stays inside its shard —
    //    each with its own worker pool, epoch chain, and cache generations.
    //    A coordinator scatters each query, merges the per-shard answer
    //    streams, and the merged reply is byte-identical to the
    //    single-shard service over the same data. Ingested batches route
    //    to the shards that own them, so an insert bumps only the touched
    //    shards' epochs and leaves every other shard's caches warm.
    let sharded = ServiceBuilder::new()
        .workers(2)
        .shards(4)
        .start(Arc::clone(&snap))
        .expect("an in-memory sharded service always starts");
    let q = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
    let reply = sharded.search_versioned(&q, 3);
    println!(
        "\nsharded \"hanks terminal\": {} answers merged from {} shards \
         (per-shard epochs {:?})",
        reply.answers.len(),
        reply.shard_epochs.len(),
        reply.shard_epochs.iter().map(|e| e.0).collect::<Vec<_>>(),
    );
    let batch: keybridge::relstore::RowBatch = vec![(
        actor,
        vec![Value::Int(900_006), Value::text("tom scattered")],
    )];
    let receipt = sharded.ingest_batch(&batch).expect("valid batch");
    let reply = sharded.search_versioned(&q, 3);
    let stats = sharded.service_stats();
    println!(
        "ingest -> global epoch {}; only the owning shard advanced \
         (per-shard epochs now {:?}; {} of {} shards ever touched)",
        receipt.epoch,
        reply.shard_epochs.iter().map(|e| e.0).collect::<Vec<_>>(),
        stats.shards_touched,
        reply.shard_epochs.len(),
    );
}
