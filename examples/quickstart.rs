//! Quickstart: keyword search over a small movie database.
//!
//! Builds a seeded IMDB-like database, indexes it, translates an ambiguous
//! keyword query into ranked structured queries, and executes the best one.
//!
//! Run with: `cargo run --release --example quickstart`

use keybridge::core::{
    execute_interpretation, render_natural, render_sql, Interpreter, InterpreterConfig,
    KeywordQuery, TemplateCatalog,
};
use keybridge::datagen::{ImdbConfig, ImdbDataset};
use keybridge::index::InvertedIndex;
use keybridge::relstore::ExecOptions;

fn main() {
    // 1. Data + index + templates.
    let data = ImdbDataset::generate(ImdbConfig::default()).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    println!(
        "database: {} tables, {} rows; index: {} terms; catalog: {} templates",
        data.db.schema().table_count(),
        data.db.total_rows(),
        index.term_count(),
        catalog.len()
    );

    // 2. An ambiguous keyword query: "hanks" is a surname but also occurs in
    //    titles and roles; "terminal" is a title word and a company word.
    let interpreter =
        Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
    let query = KeywordQuery::parse(index.tokenizer(), "hanks terminal");
    let ranked = interpreter.ranked_interpretations(&query);
    println!(
        "\nquery \"{query}\" has {} candidate interpretations; top 5:",
        ranked.len()
    );
    for s in ranked.iter().take(5) {
        println!(
            "  p={:5.3}  {}",
            s.probability,
            render_natural(&data.db, &catalog, &s.interpretation)
        );
    }

    // 3. Execute the most probable interpretation.
    if let Some(best) = ranked.first() {
        println!(
            "\nSQL: {}",
            render_sql(&data.db, &catalog, &best.interpretation)
        );
        let result = execute_interpretation(
            &data.db,
            &index,
            &catalog,
            &best.interpretation,
            ExecOptions::default(),
        )
        .expect("valid interpretation executes");
        println!("results: {} joining tuple trees", result.len());
        let tpl = catalog.get(best.interpretation.template);
        for jtt in result.jtts.iter().take(3) {
            let cells: Vec<String> = jtt
                .iter()
                .zip(&tpl.tree.nodes)
                .map(|(row, table)| {
                    let t = data.db.schema().table(*table);
                    let vals = data.db.table(*table).row(*row);
                    format!("{}({})", t.name, vals[1])
                })
                .collect();
            println!("  {}", cells.join(" ⋈ "));
        }
    }
}
