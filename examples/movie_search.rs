//! Incremental query construction (IQP) on a movie database.
//!
//! Simulates the Fig. 3.1 interaction: a user issues an ambiguous keyword
//! query, the system proposes construction options chosen by information
//! gain, and the user's accept/reject answers zoom the query window onto the
//! intended structured query. A scripted "user" answers truthfully for a
//! workload intent; the transcript is printed.
//!
//! Run with: `cargo run --release --example movie_search`

use keybridge::core::{
    render_natural, IntentDescription, Interpreter, InterpreterConfig, KeywordQuery,
    TemplateCatalog,
};
use keybridge::datagen::{ImdbConfig, ImdbDataset, Workload, WorkloadConfig};
use keybridge::index::InvertedIndex;
use keybridge::iqp::{ConstructionSession, SessionConfig, SimulatedUser};

fn main() {
    let data = ImdbDataset::generate(ImdbConfig::default()).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());

    // Take multi-concept workload queries (the ambiguous ones).
    let workload = Workload::imdb(
        &data,
        WorkloadConfig {
            seed: 11,
            n_queries: 40,
            mc_fraction: 1.0,
        },
    );

    let mut shown = 0;
    for wq in &workload.queries {
        let query = KeywordQuery::from_terms(wq.keywords.clone());
        let ranked = interpreter.ranked_interpretations(&query);
        if ranked.len() < 8 {
            continue; // want a visibly ambiguous example
        }
        let intent = IntentDescription {
            bindings: wq
                .intent
                .bindings
                .iter()
                .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                .collect(),
            tables: wq.intent.tables.clone(),
        };
        let user = SimulatedUser {
            db: &data.db,
            catalog: &catalog,
            intent,
        };
        let Some(target) = user.find_target(&ranked).cloned() else {
            continue;
        };
        let rank = user.rank_of_target(&ranked).expect("target is ranked");

        println!("keyword query : \"{query}\"");
        println!("candidates    : {}", ranked.len());
        println!(
            "intended query: {} (rank {rank} in the list)",
            render_natural(&data.db, &catalog, &target)
        );
        println!("--- construction session ---");
        let mut session = ConstructionSession::new(&catalog, &ranked, SessionConfig::default());
        while !session.finished(&catalog) {
            let Some(option) = session.next_option(&catalog) else {
                break;
            };
            let accept = option.subsumed_by(&target, &catalog);
            println!(
                "  Q{}: {}  ->  {}",
                session.steps() + 1,
                option.describe(&data.db, &catalog),
                if accept { "yes" } else { "no" }
            );
            session.apply(&catalog, option, accept);
        }
        println!(
            "after {} options the query window holds {} interpretations:",
            session.steps(),
            session.remaining().len()
        );
        for (c, p) in session.remaining() {
            let marker = if *c == target { " <= intended" } else { "" };
            println!(
                "  p={:5.3}  {}{}",
                p,
                render_natural(&data.db, &catalog, c),
                marker
            );
        }
        // The payoff: execute the final window through the batched
        // hash-join engine and show actual answer tuples.
        let window = session.window_answers(&data.db, &index, &catalog, 3);
        println!("window answers ({} non-empty candidates):", window.len());
        for (i, result) in window.iter().take(3) {
            let (c, _) = &session.remaining()[*i];
            let tpl = catalog.get(c.template);
            for jtt in result.jtts.iter().take(2) {
                let cells: Vec<String> = jtt
                    .iter()
                    .zip(&tpl.tree.nodes)
                    .map(|(row, table)| {
                        let t = data.db.schema().table(*table);
                        format!("{}({})", t.name, data.db.table(*table).row(*row)[1])
                    })
                    .collect();
                println!("  [{}] {}", i, cells.join(" ⋈ "));
            }
        }
        println!();
        shown += 1;
        if shown >= 3 {
            break;
        }
    }
    if shown == 0 {
        println!("no sufficiently ambiguous workload query found — rerun with another seed");
    }
}
