//! FreeQ at scale: interactive construction over thousands of tables.
//!
//! Generates a Freebase-like database (configurable to the paper's 7,000+
//! tables), materializes the top of a keyword query's interpretation space
//! lazily, and compares the interaction cost of plain schema-level options
//! against ontology-based options.
//!
//! Run with: `cargo run --release --example freebase_scale`

use keybridge::core::KeywordQuery;
use keybridge::datagen::{FreebaseConfig, FreebaseDataset};
use keybridge::freeq::{
    FreeQSession, FreeQSessionConfig, LazyExplorer, SchemaOntology, TraversalConfig,
};
use keybridge::index::InvertedIndex;
use keybridge::relstore::TableId;
use std::time::Instant;

fn main() {
    let cfg = FreebaseConfig {
        domains: 50,
        types_per_domain: 40,
        topics: 20_000,
        rows_per_table: 25,
        seed: 9,
        scale: 1.0,
    };
    let t0 = Instant::now();
    let fb = FreebaseDataset::generate(cfg).expect("generation succeeds");
    let index = InvertedIndex::build(&fb.db);
    println!(
        "generated {} type tables over {} domains, {} rows, indexed in {:?}",
        fb.type_table_count(),
        fb.domains.len(),
        fb.db.total_rows(),
        t0.elapsed()
    );

    let domains: Vec<(String, Vec<TableId>)> = fb
        .domains
        .iter()
        .map(|d| (d.name.clone(), d.tables.clone()))
        .collect();
    let ontology = SchemaOntology::from_domains(&domains);
    println!("ontology layer: {} concepts", ontology.len());

    // Pick a highly ambiguous keyword: one occurring in many tables.
    let mut best = ("".to_owned(), 0usize);
    for (_, row) in fb.db.table(fb.topic).rows().take(500) {
        let name = row[1].as_text().unwrap_or("");
        for tok in name.split(' ') {
            let n = index.attrs_containing(tok).len();
            if n > best.1 {
                best = (tok.to_owned(), n);
            }
        }
    }
    let (keyword, spread) = best;
    println!("\nkeyword \"{keyword}\" occurs in {spread} attributes");

    let query = KeywordQuery::from_terms(vec![keyword.clone(), keyword]);
    let explorer = LazyExplorer::new(
        &fb.db,
        &index,
        TraversalConfig {
            top_n: 300,
            ..Default::default()
        },
    );
    println!(
        "interpretation space ≈ {} — materializing only the top 300",
        explorer.space_size(&query)
    );
    let t1 = Instant::now();
    let tops = explorer.top_interpretations(&query);
    println!(
        "lazy traversal returned {} interpretations in {:?}",
        tops.len(),
        t1.elapsed()
    );
    if tops.len() < 10 {
        println!("space too small for an interesting session; rerun with another seed");
        return;
    }

    // Intend a low-ranked interpretation (the hard case for ranking).
    let target: Vec<TableId> = tops[tops.len() - 1]
        .bindings
        .iter()
        .map(|a| a.table)
        .collect();

    let plain = FreeQSession::new(None, tops.clone(), FreeQSessionConfig::default())
        .run_with_target(&target)
        .expect("target among candidates");
    let onto = FreeQSession::new(Some(&ontology), tops, FreeQSessionConfig::default())
        .run_with_target(&target)
        .expect("target among candidates");

    println!("\nconstruction towards a low-probability intent:");
    println!(
        "  plain schema options   : {:3} questions (target retained: {})",
        plain.steps, plain.target_retained
    );
    println!(
        "  ontology-based options : {:3} questions (target retained: {})",
        onto.steps, onto.target_retained
    );
}
