//! Diversification of keyword-search results (DivQ).
//!
//! Reproduces the Table 4.1 experience interactively: for an ambiguous
//! keyword query, print the top-k interpretations once ranked purely by
//! relevance and once re-ranked by the diversification algorithm, together
//! with the result overlap each ordering accumulates.
//!
//! Run with: `cargo run --release --example diversify`

use keybridge::core::{
    execute_interpretation, render_natural, Interpreter, InterpreterConfig, KeywordQuery,
    TemplateCatalog,
};
use keybridge::datagen::{ImdbConfig, ImdbDataset};
use keybridge::divq::{div_pool, diversify, DiversifyConfig};
use keybridge::index::InvertedIndex;
use keybridge::relstore::ExecOptions;
use std::collections::BTreeSet;

fn main() {
    let data = ImdbDataset::generate(ImdbConfig::default()).expect("generation succeeds");
    let index = InvertedIndex::build(&data.db);
    let catalog = TemplateCatalog::enumerate(&data.db, 4, 100_000).expect("medium schema");
    let interpreter = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());

    // A single ambiguous surname: many structurally different readings.
    // `top_k` generates the diversification pool best-first; the exhaustive
    // interpretation space is never materialized.
    let query = KeywordQuery::parse(index.tokenizer(), "stone pictures");
    let ranked = interpreter.top_k_complete(&query, 25);
    println!(
        "query \"{query}\": top {} interpretations generated\n",
        ranked.len()
    );
    if ranked.is_empty() {
        return;
    }

    let items = div_pool(&ranked, &catalog);
    let k = 5.min(items.len());
    let div_order = diversify(&items, DiversifyConfig { lambda: 0.1, k });

    // Accumulated result keys show the redundancy difference.
    let keys_of = |idx: usize| -> BTreeSet<_> {
        execute_interpretation(
            &data.db,
            &index,
            &catalog,
            &ranked[idx].interpretation,
            ExecOptions::default(),
        )
        .map(|r| r.keys)
        .unwrap_or_default()
    };

    println!("top-{k} by relevance ranking:");
    let mut seen = BTreeSet::new();
    for (i, s) in ranked.iter().enumerate().take(k) {
        let keys = keys_of(i);
        let new = keys.difference(&seen).count();
        println!(
            "  p={:5.3}  (+{new:3} new tuples)  {}",
            s.probability,
            render_natural(&data.db, &catalog, &s.interpretation)
        );
        seen.extend(keys);
    }

    println!("\ntop-{k} after diversification (λ = 0.1):");
    let mut seen = BTreeSet::new();
    for &i in &div_order {
        let keys = keys_of(i);
        let new = keys.difference(&seen).count();
        println!(
            "  p={:5.3}  (+{new:3} new tuples)  {}",
            ranked[i].probability,
            render_natural(&data.db, &catalog, &ranked[i].interpretation)
        );
        seen.extend(keys);
    }
}
