//! The §3.8.5 scalability simulation.
//!
//! The paper's simulator: a complete graph over `n` tables as the schema,
//! randomly picked connected subgraphs as templates, each keyword occurring
//! in each table with probability 60%, random weights on table/keyword
//! occurrences, and the greedy construction algorithm run against a randomly
//! drawn target interpretation. The query hierarchy is expanded *lazily*:
//! partial interpretations assign a prefix of the keywords, and the frontier
//! is expanded one keyword level at a time whenever it falls below the
//! threshold (Alg. 3.2's `T`).
//!
//! Reported per run: interpretation-space size, options evaluated, and time
//! per option generation — the columns of Tables 3.2 and 3.3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Simulation parameters (§3.8.5 defaults).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub seed: u64,
    pub n_tables: usize,
    pub n_keywords: usize,
    /// Probability a keyword occurs in a table (0.6 in the paper).
    pub occurrence_prob: f64,
    /// Hierarchy expansion threshold (10/20/30 in Tables 3.2–3.3).
    pub threshold: usize,
    /// Maximum tables per template.
    pub max_template_size: usize,
}

impl SimConfig {
    /// Paper-style defaults for `n_tables` tables and `n_keywords` keywords.
    pub fn paper(n_tables: usize, n_keywords: usize, threshold: usize, seed: u64) -> Self {
        SimConfig {
            seed,
            n_tables,
            n_keywords,
            occurrence_prob: 0.6,
            threshold,
            max_template_size: 6,
        }
    }

    fn n_templates(&self) -> usize {
        // Connected subgraphs of a complete graph grow combinatorially with
        // n; we scale quadratically, which reproduces the paper's sharp
        // growth of the interpretation space without materializing it.
        ((self.n_tables * self.n_tables) / 40).max(4)
    }
}

/// A generated random interpretation space.
#[derive(Debug, Clone)]
pub struct SimSpace {
    cfg: SimConfig,
    /// Tables per template.
    templates: Vec<Vec<usize>>,
    /// `occ[k][t]`: keyword `k` occurs in table `t`.
    occ: Vec<Vec<bool>>,
    /// Random weight of each (keyword, table) occurrence.
    weights: Vec<Vec<f64>>,
    /// Random prior per template.
    priors: Vec<f64>,
}

/// A complete or partial interpretation: a template plus the tables assigned
/// to the first `assign.len()` keywords.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SimPartial {
    template: usize,
    assign: Vec<usize>,
}

/// Result of one simulated construction run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total number of complete interpretations (computed analytically).
    pub space_size: u128,
    /// Options the simulated user evaluated.
    pub steps: usize,
    /// Wall-clock time spent generating options.
    pub option_time: Duration,
}

impl SimSpace {
    /// Generate a random space.
    pub fn generate(cfg: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_templates = cfg.n_templates();
        let mut templates = Vec::with_capacity(n_templates);
        for _ in 0..n_templates {
            let size = rng.gen_range(1..=cfg.max_template_size.min(cfg.n_tables));
            // In a complete graph every table subset is connected; sample
            // a random subset of `size` distinct tables.
            let mut tables: Vec<usize> = (0..cfg.n_tables).collect();
            for i in (1..tables.len()).rev() {
                let j = rng.gen_range(0..=i);
                tables.swap(i, j);
            }
            tables.truncate(size);
            tables.sort_unstable();
            templates.push(tables);
        }
        let occ: Vec<Vec<bool>> = (0..cfg.n_keywords)
            .map(|_| {
                (0..cfg.n_tables)
                    .map(|_| rng.gen_bool(cfg.occurrence_prob))
                    .collect()
            })
            .collect();
        let weights: Vec<Vec<f64>> = (0..cfg.n_keywords)
            .map(|_| {
                (0..cfg.n_tables)
                    .map(|_| rng.gen_range(0.05..1.0))
                    .collect()
            })
            .collect();
        let priors: Vec<f64> = (0..n_templates).map(|_| rng.gen_range(0.05..1.0)).collect();
        SimSpace {
            cfg,
            templates,
            occ,
            weights,
            priors,
        }
    }

    /// Tables of template `t` where keyword `k` occurs.
    fn options_for(&self, template: usize, k: usize) -> Vec<usize> {
        self.templates[template]
            .iter()
            .copied()
            .filter(|&t| self.occ[k][t])
            .collect()
    }

    /// Size of the complete interpretation space:
    /// `Σ_T Π_k |{t ∈ T : occ(k, t)}|` (Def. 3.5.5 for this model).
    pub fn space_size(&self) -> u128 {
        let mut total: u128 = 0;
        for t in 0..self.templates.len() {
            let mut prod: u128 = 1;
            for k in 0..self.cfg.n_keywords {
                prod *= self.options_for(t, k).len() as u128;
                if prod == 0 {
                    break;
                }
            }
            total += prod;
        }
        total
    }

    /// Weight of a partial interpretation.
    fn weight(&self, p: &SimPartial) -> f64 {
        let mut w = self.priors[p.template];
        for (k, &t) in p.assign.iter().enumerate() {
            w *= self.weights[k][t];
        }
        w
    }

    /// Draw a target complete interpretation with probability proportional
    /// to its weight.
    fn draw_target(&self, rng: &mut StdRng) -> Option<SimPartial> {
        // Template marginal: prior × Π_k Σ_t w(k, t).
        let mut marginals = Vec::with_capacity(self.templates.len());
        for t in 0..self.templates.len() {
            let mut m = self.priors[t];
            for k in 0..self.cfg.n_keywords {
                let s: f64 = self
                    .options_for(t, k)
                    .iter()
                    .map(|&tb| self.weights[k][tb])
                    .sum();
                m *= s;
            }
            marginals.push(m);
        }
        let total: f64 = marginals.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut u = rng.gen_range(0.0..total);
        let mut template = 0;
        for (i, m) in marginals.iter().enumerate() {
            if u < *m {
                template = i;
                break;
            }
            u -= m;
        }
        let mut assign = Vec::with_capacity(self.cfg.n_keywords);
        for k in 0..self.cfg.n_keywords {
            let opts = self.options_for(template, k);
            if opts.is_empty() {
                return None;
            }
            let total: f64 = opts.iter().map(|&t| self.weights[k][t]).sum();
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = opts[0];
            for &t in &opts {
                if u < self.weights[k][t] {
                    chosen = t;
                    break;
                }
                u -= self.weights[k][t];
            }
            assign.push(chosen);
        }
        Some(SimPartial { template, assign })
    }

    fn entropy(weights: &[f64]) -> f64 {
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &w in weights {
            let p = w / sum;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        h
    }

    /// Run one greedy construction session against a random target.
    /// Returns `None` if the space is degenerate (no valid interpretation).
    pub fn run_construction(&self, run_seed: u64) -> Option<SimReport> {
        let mut rng = StdRng::seed_from_u64(run_seed);
        let target = self.draw_target(&mut rng)?;
        let cfg = &self.cfg;

        // allowed[k][t]: still-possible tables per keyword (atom constraints).
        let mut allowed: Vec<Vec<bool>> = (0..cfg.n_keywords)
            .map(|k| (0..cfg.n_tables).map(|t| self.occ[k][t]).collect())
            .collect();
        // Frontier: one empty partial per template that can still complete.
        let mut frontier: Vec<SimPartial> = (0..self.templates.len())
            .map(|t| SimPartial {
                template: t,
                assign: Vec::new(),
            })
            .filter(|p| self.can_complete(p, &allowed))
            .collect();

        let mut steps = 0usize;
        let mut option_time = Duration::ZERO;
        // Safety bound: each step removes at least one frontier element or
        // advances a level, so this terminates; the bound catches bugs.
        let step_cap = 10_000;

        loop {
            // Expand while the frontier is small and not fully complete.
            while frontier.len() < cfg.threshold
                && frontier.iter().any(|p| p.assign.len() < cfg.n_keywords)
            {
                frontier = self.expand_one_level(&frontier, &allowed);
                if frontier.is_empty() {
                    return None; // target eliminated: cannot happen with a
                                 // truthful user, but guard anyway
                }
            }
            let complete = frontier.iter().all(|p| p.assign.len() == cfg.n_keywords);
            if complete && frontier.len() <= 1 {
                break;
            }
            if steps >= step_cap {
                break;
            }

            // Derive atom options (keyword, table) present in the frontier.
            let t0 = Instant::now();
            let mut atoms: Vec<(usize, usize)> = Vec::new();
            for p in &frontier {
                for (k, &t) in p.assign.iter().enumerate() {
                    if !atoms.contains(&(k, t)) {
                        atoms.push((k, t));
                    }
                }
            }
            // Also template-identity options when assignments cannot split.
            let weights: Vec<f64> = frontier.iter().map(|p| self.weight(p)).collect();
            let h = Self::entropy(&weights);
            let total: f64 = weights.iter().sum();
            let mut best: Option<(f64, OptionKind)> = None;
            for &(k, t) in &atoms {
                let (mut acc, mut rej) = (Vec::new(), Vec::new());
                for (p, w) in frontier.iter().zip(&weights) {
                    if p.assign.get(k) == Some(&t) {
                        acc.push(*w);
                    } else {
                        rej.push(*w);
                    }
                }
                if acc.is_empty() || rej.is_empty() {
                    continue;
                }
                let pa: f64 = acc.iter().sum::<f64>() / total;
                let ig = h - (pa * Self::entropy(&acc) + (1.0 - pa) * Self::entropy(&rej));
                if best.as_ref().is_none_or(|(b, _)| ig > *b + 1e-15) {
                    best = Some((ig, OptionKind::Atom(k, t)));
                }
            }
            let mut templates_in_frontier: Vec<usize> =
                frontier.iter().map(|p| p.template).collect();
            templates_in_frontier.sort_unstable();
            templates_in_frontier.dedup();
            if templates_in_frontier.len() > 1 {
                for &tpl in &templates_in_frontier {
                    let (mut acc, mut rej) = (Vec::new(), Vec::new());
                    for (p, w) in frontier.iter().zip(&weights) {
                        if p.template == tpl {
                            acc.push(*w);
                        } else {
                            rej.push(*w);
                        }
                    }
                    let pa: f64 = acc.iter().sum::<f64>() / total;
                    let ig = h - (pa * Self::entropy(&acc) + (1.0 - pa) * Self::entropy(&rej));
                    if best.as_ref().is_none_or(|(b, _)| ig > *b + 1e-15) {
                        best = Some((ig, OptionKind::Template(tpl)));
                    }
                }
            }
            option_time += t0.elapsed();

            let Some((_, option)) = best else {
                break; // nothing discriminates further
            };
            steps += 1;

            // The truthful user's verdict.
            let accept = match option {
                OptionKind::Atom(k, t) => target.assign.get(k) == Some(&t),
                OptionKind::Template(tpl) => target.template == tpl,
            };
            // Filter frontier and record constraints.
            match option {
                OptionKind::Atom(k, t) => {
                    if accept {
                        for (tt, slot) in allowed[k].iter_mut().enumerate() {
                            if tt != t {
                                *slot = false;
                            }
                        }
                    } else {
                        allowed[k][t] = false;
                    }
                    frontier.retain(|p| match p.assign.get(k) {
                        Some(&pt) => {
                            if accept {
                                pt == t
                            } else {
                                pt != t
                            }
                        }
                        None => self.can_complete(p, &allowed),
                    });
                }
                OptionKind::Template(tpl) => {
                    frontier.retain(|p| {
                        if accept {
                            p.template == tpl
                        } else {
                            p.template != tpl
                        }
                    });
                }
            }
        }

        Some(SimReport {
            space_size: self.space_size(),
            steps,
            option_time,
        })
    }

    /// Whether `p` can still be extended to a complete interpretation under
    /// the current constraints.
    fn can_complete(&self, p: &SimPartial, allowed: &[Vec<bool>]) -> bool {
        for row in &allowed[p.assign.len()..self.cfg.n_keywords] {
            let any = self.templates[p.template].iter().any(|&t| row[t]);
            if !any {
                return false;
            }
        }
        true
    }

    /// Expand every partial by one keyword level (those already complete
    /// pass through unchanged).
    fn expand_one_level(&self, frontier: &[SimPartial], allowed: &[Vec<bool>]) -> Vec<SimPartial> {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for p in frontier {
            let k = p.assign.len();
            if k == self.cfg.n_keywords {
                next.push(p.clone());
                continue;
            }
            for &t in &self.templates[p.template] {
                if allowed[k][t] {
                    let mut q = p.clone();
                    q.assign.push(t);
                    if self.can_complete(&q, allowed) {
                        next.push(q);
                    }
                }
            }
        }
        next
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptionKind {
    Atom(usize, usize),
    Template(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_size_grows_with_tables() {
        let small = SimSpace::generate(SimConfig::paper(5, 3, 20, 1)).space_size();
        let large = SimSpace::generate(SimConfig::paper(40, 3, 20, 1)).space_size();
        assert!(large > small * 10, "small={small} large={large}");
    }

    #[test]
    fn space_size_grows_with_keywords() {
        let k2 = SimSpace::generate(SimConfig::paper(10, 2, 20, 2)).space_size();
        let k6 = SimSpace::generate(SimConfig::paper(10, 6, 20, 2)).space_size();
        assert!(k6 > k2, "k2={k2} k6={k6}");
    }

    #[test]
    fn construction_terminates_with_few_steps() {
        let space = SimSpace::generate(SimConfig::paper(20, 3, 20, 3));
        let report = space.run_construction(17).expect("valid space");
        assert!(report.space_size > 0);
        assert!(report.steps > 0);
        // Steps should be far below the space size.
        assert!((report.steps as u128) < report.space_size);
        assert!(report.steps < 200, "steps {}", report.steps);
    }

    #[test]
    fn higher_threshold_not_catastrophically_worse() {
        // The paper finds improvements flattening past threshold ≈ 20.
        let mut t10 = 0usize;
        let mut t30 = 0usize;
        for seed in 0..8 {
            let s10 = SimSpace::generate(SimConfig::paper(15, 3, 10, seed));
            let s30 = SimSpace::generate(SimConfig::paper(15, 3, 30, seed));
            t10 += s10.run_construction(seed + 100).map_or(0, |r| r.steps);
            t30 += s30.run_construction(seed + 100).map_or(0, |r| r.steps);
        }
        assert!(t10 > 0 && t30 > 0);
        // Loose sanity bound: same order of magnitude.
        assert!(t30 <= t10 * 3 + 10, "t10={t10} t30={t30}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = SimSpace::generate(SimConfig::paper(12, 3, 20, 5))
            .run_construction(7)
            .unwrap();
        let b = SimSpace::generate(SimConfig::paper(12, 3, 20, 5))
            .run_construction(7)
            .unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.space_size, b.space_size);
    }

    #[test]
    fn steps_grow_mildly_with_keywords() {
        // Table 3.3: steps grow roughly linearly in keyword count while the
        // space grows exponentially.
        let run = |k: usize| -> usize {
            let mut total = 0;
            for seed in 0..5 {
                let s = SimSpace::generate(SimConfig::paper(10, k, 20, seed));
                total += s.run_construction(seed + 50).map_or(0, |r| r.steps);
            }
            total
        };
        let s2 = run(2);
        let s8 = run(8);
        assert!(s8 > 0);
        // Mild growth: going 2 -> 8 keywords must not blow up 16x.
        assert!(s8 < s2 * 16 + 40, "s2={s2} s8={s8}");
    }
}
