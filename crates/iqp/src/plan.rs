//! Abstract query construction plans (Defs. 3.5.8–3.5.10).
//!
//! A plan is a binary decision tree over a finite set of candidate queries:
//! internal nodes present an option, edges are accept/reject, leaves are
//! (small sets of) queries. The expected interaction cost (Eq. 3.1) is the
//! probability-weighted depth. This module works on an *abstract* problem —
//! query probabilities plus an option×query subsumption matrix — so the
//! brute-force optimal planner (Alg. 3.1) and the greedy planner can be
//! compared head-to-head (Table 3.4) without the cost of real interpretation
//! generation.

use std::collections::HashMap;

/// An abstract planning problem.
#[derive(Debug, Clone)]
pub struct PlanProblem {
    /// Probability per candidate query (normalized by the constructor).
    pub probs: Vec<f64>,
    /// Per option: the set of queries subsuming it, as a bitmask over query
    /// indexes (query count ≤ 64 suffices for the paper's Table 3.4 scale).
    pub options: Vec<u64>,
}

impl PlanProblem {
    /// Build a problem; probabilities are normalized to sum to 1.
    pub fn new(mut probs: Vec<f64>, options: Vec<u64>) -> Self {
        assert!(probs.len() <= 64, "abstract planner supports ≤ 64 queries");
        let sum: f64 = probs.iter().sum();
        if sum > 0.0 {
            for p in &mut probs {
                *p /= sum;
            }
        }
        PlanProblem { probs, options }
    }

    fn full_mask(&self) -> u64 {
        if self.probs.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.probs.len()) - 1
        }
    }

    fn mass(&self, mask: u64) -> f64 {
        let mut s = 0.0;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            s += self.probs[i];
            m &= m - 1;
        }
        s
    }

    /// The Table 3.4 generator: `m` queries, `n` options, each option
    /// subsuming a random half of the queries, random probabilities.
    pub fn random(m: usize, n: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let probs: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..1.0)).collect();
        let options: Vec<u64> = (0..n)
            .map(|_| {
                let mut mask = 0u64;
                let mut idx: Vec<usize> = (0..m).collect();
                for i in (1..idx.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                for &q in idx.iter().take(m / 2) {
                    mask |= 1 << q;
                }
                mask
            })
            .collect();
        PlanProblem::new(probs, options)
    }

    /// Expected number of further evaluations if the user must scan the
    /// queries of `mask` as a ranked list (probability-descending): the
    /// fallback when no option can split the set. The best-ranked query
    /// costs 0 further evaluations, the next 1, and so on.
    fn scan_cost(&self, mask: u64) -> f64 {
        let mut items: Vec<f64> = Vec::new();
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            items.push(self.probs[i]);
            m &= m - 1;
        }
        items.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = items.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        items
            .iter()
            .enumerate()
            .map(|(rank, p)| (p / total) * rank as f64)
            .sum()
    }
}

/// A plan tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Terminal: the queries that remain (usually one).
    Leaf { queries: u64 },
    /// Present option `option`; descend left on accept, right on reject.
    Decide {
        option: usize,
        accept: Box<PlanNode>,
        reject: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        match self {
            PlanNode::Leaf { .. } => 0,
            PlanNode::Decide { accept, reject, .. } => 1 + accept.depth().max(reject.depth()),
        }
    }

    /// Number of decision nodes.
    pub fn decisions(&self) -> usize {
        match self {
            PlanNode::Leaf { .. } => 0,
            PlanNode::Decide { accept, reject, .. } => 1 + accept.decisions() + reject.decisions(),
        }
    }
}

/// Expected interaction cost of `plan` under `problem` (Eq. 3.1), including
/// the ranked-scan fallback at multi-query leaves.
pub fn plan_cost(problem: &PlanProblem, plan: &PlanNode) -> f64 {
    fn rec(problem: &PlanProblem, node: &PlanNode, mask: u64) -> f64 {
        match node {
            PlanNode::Leaf { queries } => problem.scan_cost(*queries & mask),
            PlanNode::Decide {
                option,
                accept,
                reject,
            } => {
                let total = problem.mass(mask);
                if total <= 0.0 {
                    return 0.0;
                }
                let acc_mask = mask & problem.options[*option];
                let rej_mask = mask & !problem.options[*option];
                let p_acc = problem.mass(acc_mask) / total;
                1.0 + p_acc * rec(problem, accept, acc_mask)
                    + (1.0 - p_acc) * rec(problem, reject, rej_mask)
            }
        }
    }
    rec(problem, plan, problem.full_mask())
}

/// Alg. 3.1: the optimal plan by exhaustive recursion with memoization over
/// (remaining-query mask, remaining-option mask). Exponential; use only at
/// Table 3.4 scale (≤ ~24 queries, ≤ ~12 options).
pub fn brute_force_plan(problem: &PlanProblem) -> (PlanNode, f64) {
    assert!(
        problem.options.len() <= 32,
        "brute force supports ≤ 32 options"
    );
    let mut memo: HashMap<(u64, u32), (PlanNode, f64)> = HashMap::new();
    let all_opts: u32 = if problem.options.len() == 32 {
        u32::MAX
    } else {
        (1u32 << problem.options.len()) - 1
    };
    fn rec(
        problem: &PlanProblem,
        mask: u64,
        opts: u32,
        memo: &mut HashMap<(u64, u32), (PlanNode, f64)>,
    ) -> (PlanNode, f64) {
        if mask.count_ones() <= 1 {
            return (PlanNode::Leaf { queries: mask }, 0.0);
        }
        if let Some(hit) = memo.get(&(mask, opts)) {
            return hit.clone();
        }
        let total = problem.mass(mask);
        let mut best: Option<(PlanNode, f64)> = None;
        let mut o = opts;
        while o != 0 {
            let i = o.trailing_zeros() as usize;
            o &= o - 1;
            let acc = mask & problem.options[i];
            let rej = mask & !problem.options[i];
            if acc == 0 || rej == 0 {
                continue; // non-discriminating here
            }
            let rest = opts & !(1u32 << i);
            let (ap, ac) = rec(problem, acc, rest, memo);
            let (rp, rc) = rec(problem, rej, rest, memo);
            let p_acc = problem.mass(acc) / total;
            let cost = 1.0 + p_acc * ac + (1.0 - p_acc) * rc;
            if best.as_ref().is_none_or(|(_, b)| cost < *b - 1e-15) {
                best = Some((
                    PlanNode::Decide {
                        option: i,
                        accept: Box::new(ap),
                        reject: Box::new(rp),
                    },
                    cost,
                ));
            }
        }
        let result = match best {
            Some(b) => b,
            // No option splits this set: ranked-list fallback.
            None => (PlanNode::Leaf { queries: mask }, problem.scan_cost(mask)),
        };
        memo.insert((mask, opts), result.clone());
        result
    }
    rec(problem, problem.full_mask(), all_opts, &mut memo)
}

/// The greedy planner: at every node pick the option with maximal
/// information gain over the remaining set (the full-plan analogue of
/// Alg. 3.2, threshold = entire space).
pub fn greedy_plan(problem: &PlanProblem) -> (PlanNode, f64) {
    fn entropy(problem: &PlanProblem, mask: u64) -> f64 {
        let total = problem.mass(mask);
        if total <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let p = problem.probs[i] / total;
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        h
    }
    fn rec(problem: &PlanProblem, mask: u64, opts: u32) -> PlanNode {
        if mask.count_ones() <= 1 {
            return PlanNode::Leaf { queries: mask };
        }
        let total = problem.mass(mask);
        let h = entropy(problem, mask);
        let mut best: Option<(f64, usize, u64, u64)> = None;
        let mut o = opts;
        while o != 0 {
            let i = o.trailing_zeros() as usize;
            o &= o - 1;
            let acc = mask & problem.options[i];
            let rej = mask & !problem.options[i];
            if acc == 0 || rej == 0 {
                continue;
            }
            let p_acc = problem.mass(acc) / total;
            let cond = p_acc * entropy(problem, acc) + (1.0 - p_acc) * entropy(problem, rej);
            let ig = h - cond;
            if best.is_none_or(|(b, ..)| ig > b + 1e-15) {
                best = Some((ig, i, acc, rej));
            }
        }
        match best {
            Some((_, i, acc, rej)) => PlanNode::Decide {
                option: i,
                accept: Box::new(rec(problem, acc, opts & !(1u32 << i))),
                reject: Box::new(rec(problem, rej, opts & !(1u32 << i))),
            },
            None => PlanNode::Leaf { queries: mask },
        }
    }
    let all_opts: u32 = if problem.options.len() >= 32 {
        u32::MAX
    } else {
        (1u32 << problem.options.len()) - 1
    };
    let plan = rec(problem, problem.full_mask(), all_opts);
    let cost = plan_cost(problem, &plan);
    (plan, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    fn random_problem(m: usize, n: usize, seed: u64) -> PlanProblem {
        PlanProblem::random(m, n, seed)
    }

    #[test]
    fn perfect_binary_split_costs_log() {
        // 8 uniform queries, options = perfect bisections: cost must be 3.
        let probs = vec![1.0; 8];
        let options = vec![
            0b11110000u64, // split by high bit
            0b11001100,
            0b10101010,
        ];
        let p = PlanProblem::new(probs, options);
        let (plan, cost) = brute_force_plan(&p);
        assert!((cost - 3.0).abs() < 1e-9, "cost {cost}");
        assert_eq!(plan.depth(), 3);
        let (_, gcost) = greedy_plan(&p);
        assert!((gcost - 3.0).abs() < 1e-9, "greedy {gcost}");
    }

    #[test]
    fn skewed_distribution_beats_balanced_left() {
        // One query holds 90% of the mass; an option isolating it first is
        // optimal, and the optimal cost is below uniform log-depth.
        let probs = vec![0.9, 0.04, 0.03, 0.03];
        let options = vec![0b0001u64, 0b0011, 0b0101];
        let p = PlanProblem::new(probs, options);
        let (plan, cost) = brute_force_plan(&p);
        // First question should isolate the heavy query.
        if let PlanNode::Decide { option, .. } = &plan {
            assert_eq!(*option, 0);
        } else {
            panic!("expected decision root");
        }
        assert!(cost < 2.0, "cost {cost}");
    }

    #[test]
    fn greedy_never_beats_brute_force() {
        for seed in 0..12 {
            let p = random_problem(10, 6, seed);
            let (_, bf) = brute_force_plan(&p);
            let (_, gr) = greedy_plan(&p);
            assert!(
                gr + 1e-9 >= bf,
                "greedy {gr} beat brute force {bf} at seed {seed}"
            );
            // Table 3.4 claim: greedy is only slightly worse.
            assert!(gr <= bf * 1.5 + 1.0, "greedy {gr} vs brute {bf}");
        }
    }

    #[test]
    fn plan_cost_agrees_with_recursion() {
        let p = random_problem(12, 6, 99);
        let (plan, cost) = brute_force_plan(&p);
        assert!((plan_cost(&p, &plan) - cost).abs() < 1e-9);
    }

    #[test]
    fn unsplittable_set_costs_scan() {
        // No options at all: user scans the ranked list.
        let p = PlanProblem::new(vec![0.5, 0.3, 0.2], vec![]);
        let (plan, cost) = brute_force_plan(&p);
        assert_eq!(plan, PlanNode::Leaf { queries: 0b111 });
        // E[rank-1] = 0.5*0 + 0.3*1 + 0.2*2 = 0.7
        assert!((cost - 0.7).abs() < 1e-9);
    }

    #[test]
    fn single_query_costs_zero() {
        let p = PlanProblem::new(vec![1.0], vec![0b1]);
        let (_, cost) = brute_force_plan(&p);
        assert_eq!(cost, 0.0);
        let (_, gcost) = greedy_plan(&p);
        assert_eq!(gcost, 0.0);
    }

    #[test]
    fn decisions_counted() {
        let p = random_problem(8, 5, 5);
        let (plan, _) = greedy_plan(&p);
        assert!(plan.decisions() >= 1);
    }
}
