//! Task-time model substituting the §3.8.4 user study (Fig. 3.7).
//!
//! The study measured wall-clock task time under two interfaces. The
//! interaction-cost data (rank of the intent; number of options evaluated)
//! comes from the real algorithms; this module only converts costs into
//! seconds with a two-rate linear model:
//!
//! * scanning one entry of the ranked query list is fast (the user reads a
//!   rendered query and moves on);
//! * evaluating one construction option is slower (the user must judge a
//!   semantic statement), plus a fixed per-task overhead.
//!
//! With the default rates the model reproduces the paper's crossover: the
//! ranking interface wins while the intent ranks under ≈40, construction
//! wins beyond ≈80, and at rank ≈220 ranking takes ≈4x longer — the same
//! shape as Fig. 3.7.

/// Seconds-per-action model.
#[derive(Debug, Clone, Copy)]
pub struct TimeModel {
    /// Fixed overhead per task (typing the query, orienting).
    pub base_s: f64,
    /// Seconds to scan one entry of the ranked list.
    pub per_rank_item_s: f64,
    /// Seconds to evaluate one construction option.
    pub per_option_s: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            base_s: 10.0,
            per_rank_item_s: 1.2,
            per_option_s: 9.0,
        }
    }
}

/// Simulated timings for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    pub ranking_s: f64,
    pub construction_s: f64,
}

impl TimeModel {
    /// Time to find the intent via the ranking interface when it sits at
    /// 1-based `rank`. `None` (intent not in the list) costs the paper's
    /// 10-minute timeout.
    pub fn ranking_time(&self, rank: Option<usize>) -> f64 {
        match rank {
            Some(r) => self.base_s + r as f64 * self.per_rank_item_s,
            None => 600.0,
        }
    }

    /// Time to construct the intent by evaluating `steps` options and then
    /// picking it from the final window of `remaining` entries.
    pub fn construction_time(&self, steps: usize, remaining: usize) -> f64 {
        self.base_s + steps as f64 * self.per_option_s + remaining as f64 * self.per_rank_item_s
    }

    /// Both timings for a task.
    pub fn task(&self, rank: Option<usize>, steps: usize, remaining: usize) -> TaskTiming {
        TaskTiming {
            ranking_s: self.ranking_time(rank),
            construction_s: self.construction_time(steps, remaining),
        }
    }
}

/// Median of a sample (average of the middle pair for even sizes).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Quartiles `(q1, median, q3)` for boxplot-style summaries (Fig. 3.6).
pub fn quartiles(values: &mut [f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |frac: f64| -> f64 {
        let pos = frac * (values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            values[lo]
        } else {
            values[lo] + (pos - lo as f64) * (values[hi] - values[lo])
        }
    };
    (q(0.25), q(0.5), q(0.75))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_matches_paper_shape() {
        let m = TimeModel::default();
        // Low ranks: ranking wins.
        let low = m.task(Some(5), 4, 4);
        assert!(low.ranking_s < low.construction_s);
        // High ranks: construction wins clearly.
        let high = m.task(Some(220), 7, 4);
        assert!(high.construction_s < high.ranking_s);
        assert!(high.ranking_s / high.construction_s > 2.0);
    }

    #[test]
    fn missing_rank_is_timeout() {
        let m = TimeModel::default();
        assert_eq!(m.ranking_time(None), 600.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn quartiles_ordered() {
        let mut v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        let (q1, q2, q3) = quartiles(&mut v);
        assert!(q1 <= q2 && q2 <= q3);
        assert_eq!(q2, 5.0);
    }

    #[test]
    fn construction_time_includes_final_window() {
        let m = TimeModel::default();
        let a = m.construction_time(3, 0);
        let b = m.construction_time(3, 5);
        assert!(b > a);
    }
}
