//! # keybridge-iqp
//!
//! IQP: probabilistic incremental query construction (Chapter 3).
//!
//! A user starts from a keyword query, the system generates the space of
//! candidate structured queries (via [`keybridge_core`]), and then asks a
//! sequence of *query construction options* — "is `hanks` an actor's name?" —
//! chosen to maximize information gain, until the intended structured query
//! remains. The number of options the user evaluates is the *interaction
//! cost* (Def. 3.5.9), the paper's headline metric.
//!
//! Modules:
//!
//! * [`options`] — construction options and subsumption (Defs. 3.5.7–3.5.8);
//! * [`session`] — the interactive greedy session (Alg. 3.2) driven by
//!   entropy / information gain (Eqs. 3.11–3.13), plus a simulated user;
//! * [`plan`] — abstract query construction plans: expected cost (Eq. 3.1),
//!   the brute-force optimal planner (Alg. 3.1) and the greedy planner, for
//!   the head-to-head of Table 3.4;
//! * [`simulate`] — the §3.8.5 scalability simulation: random complete-graph
//!   schemas, random templates, keyword occurrence probability 60%, lazy
//!   query-hierarchy expansion with a configurable threshold;
//! * [`user`] — the task-time model substituting the §3.8.4 user study.

pub mod nary;
pub mod options;
pub mod plan;
pub mod session;
pub mod simulate;
pub mod user;

pub use nary::{to_binary, to_nary, NaryNode};
pub use options::ConstructionOption;
pub use plan::{brute_force_plan, greedy_plan, plan_cost, PlanNode, PlanProblem};
pub use session::{ConstructionOutcome, ConstructionSession, SessionConfig, SimulatedUser};
pub use simulate::{SimConfig, SimReport, SimSpace};
pub use user::{median, quartiles, TaskTiming, TimeModel};
