//! The N-ary view of a query construction plan (Figs. 3.3–3.4).
//!
//! The interface of Fig. 3.1 presents *several* options per round; the user
//! picks the first acceptable one. The paper notes the N-ary tree is
//! uniquely obtained from the binary plan by post-order collapsing every
//! node's reject chain into sibling options — and vice versa. This module
//! implements both directions and tests the round trip.

use crate::plan::PlanNode;

/// An N-ary plan node: a list of options shown together; choosing option
/// `i` descends into `children[i]`; rejecting all of them descends into
/// `fallthrough` (absent when the option list is exhaustive).
#[derive(Debug, Clone, PartialEq)]
pub enum NaryNode {
    /// Terminal: the candidate-query mask that remains.
    Leaf { queries: u64 },
    /// One interaction round.
    Round {
        options: Vec<usize>,
        children: Vec<NaryNode>,
        fallthrough: Box<NaryNode>,
    },
}

impl NaryNode {
    /// Number of interaction rounds on the deepest path.
    pub fn depth(&self) -> usize {
        match self {
            NaryNode::Leaf { .. } => 0,
            NaryNode::Round {
                children,
                fallthrough,
                ..
            } => {
                1 + children
                    .iter()
                    .map(NaryNode::depth)
                    .chain(std::iter::once(fallthrough.depth()))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Total number of options across all rounds.
    pub fn option_count(&self) -> usize {
        match self {
            NaryNode::Leaf { .. } => 0,
            NaryNode::Round {
                options,
                children,
                fallthrough,
            } => {
                options.len()
                    + children.iter().map(NaryNode::option_count).sum::<usize>()
                    + fallthrough.option_count()
            }
        }
    }
}

/// Binary → N-ary (the post-order transformation of §3.5.4): the root's
/// reject spine becomes one round of sibling options.
pub fn to_nary(node: &PlanNode) -> NaryNode {
    match node {
        PlanNode::Leaf { queries } => NaryNode::Leaf { queries: *queries },
        PlanNode::Decide { .. } => {
            let mut options = Vec::new();
            let mut children = Vec::new();
            let mut cur = node;
            // Walk the reject chain; each accept branch becomes a sibling.
            loop {
                match cur {
                    PlanNode::Decide {
                        option,
                        accept,
                        reject,
                    } => {
                        options.push(*option);
                        children.push(to_nary(accept));
                        cur = reject;
                    }
                    PlanNode::Leaf { queries } => {
                        return NaryNode::Round {
                            options,
                            children,
                            fallthrough: Box::new(NaryNode::Leaf { queries: *queries }),
                        };
                    }
                }
            }
        }
    }
}

/// N-ary → binary: each round unrolls back into a reject chain.
pub fn to_binary(node: &NaryNode) -> PlanNode {
    match node {
        NaryNode::Leaf { queries } => PlanNode::Leaf { queries: *queries },
        NaryNode::Round {
            options,
            children,
            fallthrough,
        } => {
            let mut result = to_binary(fallthrough);
            for (option, child) in options.iter().zip(children).rev() {
                result = PlanNode::Decide {
                    option: *option,
                    accept: Box::new(to_binary(child)),
                    reject: Box::new(result),
                };
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{brute_force_plan, greedy_plan, plan_cost, PlanProblem};

    #[test]
    fn round_trip_is_identity() {
        for seed in 0..20 {
            let p = PlanProblem::random(10, 6, seed);
            let (plan, _) = greedy_plan(&p);
            let nary = to_nary(&plan);
            let back = to_binary(&nary);
            assert_eq!(back, plan, "round trip changed the plan at seed {seed}");
        }
    }

    #[test]
    fn option_count_preserved() {
        let p = PlanProblem::random(12, 6, 7);
        let (plan, _) = brute_force_plan(&p);
        let nary = to_nary(&plan);
        assert_eq!(nary.option_count(), plan.decisions());
    }

    #[test]
    fn nary_depth_never_exceeds_binary_depth() {
        // Collapsing reject chains can only shorten paths (in rounds).
        for seed in 0..10 {
            let p = PlanProblem::random(10, 5, seed);
            let (plan, _) = greedy_plan(&p);
            let nary = to_nary(&plan);
            assert!(nary.depth() <= plan.depth());
        }
    }

    #[test]
    fn cost_preserved_through_round_trip() {
        let p = PlanProblem::random(14, 7, 3);
        let (plan, cost) = greedy_plan(&p);
        let back = to_binary(&to_nary(&plan));
        assert!((plan_cost(&p, &back) - cost).abs() < 1e-12);
    }

    #[test]
    fn leaf_transforms_to_leaf() {
        let leaf = PlanNode::Leaf { queries: 0b101 };
        assert_eq!(to_nary(&leaf), NaryNode::Leaf { queries: 0b101 });
        assert_eq!(to_binary(&NaryNode::Leaf { queries: 0b101 }), leaf);
    }

    #[test]
    fn reject_chain_becomes_one_round() {
        // A pure ranked list (accept leaf / reject next) collapses into a
        // single round with all options as siblings — exactly the "ranking
        // is a special case of QCP" argument of §3.5.5.
        let plan = PlanNode::Decide {
            option: 0,
            accept: Box::new(PlanNode::Leaf { queries: 0b001 }),
            reject: Box::new(PlanNode::Decide {
                option: 1,
                accept: Box::new(PlanNode::Leaf { queries: 0b010 }),
                reject: Box::new(PlanNode::Leaf { queries: 0b100 }),
            }),
        };
        let nary = to_nary(&plan);
        match &nary {
            NaryNode::Round { options, .. } => assert_eq!(options, &vec![0, 1]),
            _ => panic!("expected one round"),
        }
        assert_eq!(nary.depth(), 1);
    }
}
