//! Query construction options (the items of Fig. 3.1's construction panel)
//! and their subsumption semantics (Def. 3.5.7).
//!
//! The option type and its semantics moved into `keybridge_core::construct`
//! so the concurrent `SearchService` can drive construction sessions as a
//! first-class request mode; this module re-exports it unchanged. The
//! behavioral tests stay here, next to the rest of the Chapter 3 harness.

pub use keybridge_core::ConstructionOption;

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::{
        Interpreter, InterpreterConfig, KeywordQuery, QueryInterpretation, TemplateCatalog,
    };
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::InvertedIndex;

    fn candidates() -> (ImdbDataset, TemplateCatalog, Vec<QueryInterpretation>) {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        // Use a keyword that is genuinely ambiguous: a common surname.
        let q = KeywordQuery::from_terms(vec!["hanks".into()]);
        let interp = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
        let mut cands = interp.enumerate_interpretations(&q);
        if cands.is_empty() {
            // Fall back to any term that exists.
            let q = KeywordQuery::from_terms(vec!["tom".into()]);
            cands = interp.enumerate_interpretations(&q);
        }
        (data, catalog, cands)
    }

    #[test]
    fn derive_produces_discriminating_options() {
        let (_, catalog, cands) = candidates();
        assert!(cands.len() > 1, "need an ambiguous query");
        let opts = ConstructionOption::derive(&cands, &catalog);
        assert!(!opts.is_empty());
        for o in &opts {
            let n = cands.iter().filter(|c| o.subsumed_by(c, &catalog)).count();
            assert!(n > 0 && n < cands.len(), "non-discriminating option {o:?}");
        }
    }

    #[test]
    fn subsumption_semantics() {
        let (_, catalog, cands) = candidates();
        let c = &cands[0];
        // Template option: subsumed only by candidates with that template.
        let opt = ConstructionOption::Template(c.template);
        assert!(opt.subsumed_by(c, &catalog));
        // Atom options from the candidate itself are subsumed by it.
        for a in c.atoms(&catalog) {
            assert!(ConstructionOption::Atom(a).subsumed_by(c, &catalog));
        }
        // UsesTable for each node table.
        for t in &catalog.get(c.template).tree.nodes {
            assert!(ConstructionOption::UsesTable(*t).subsumed_by(c, &catalog));
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct_kinds() {
        let (data, catalog, cands) = candidates();
        let opts = ConstructionOption::derive(&cands, &catalog);
        for o in &opts {
            let d = o.describe(&data.db, &catalog);
            assert!(!d.is_empty());
        }
        // At least atoms and tables should both appear for ambiguous input.
        assert!(opts
            .iter()
            .any(|o| matches!(o, ConstructionOption::Atom(_))));
        assert!(opts
            .iter()
            .any(|o| matches!(o, ConstructionOption::UsesTable(_))));
    }
}
