//! Query construction options (the items of Fig. 3.1's construction panel)
//! and their subsumption semantics (Def. 3.5.7).
//!
//! An option is a partial interpretation the user can accept or reject.
//! Accepting keeps exactly the candidate interpretations that *subsume* the
//! option; rejecting keeps the complement.

use keybridge_core::{
    BindingAtom, BindingAtomKind, QueryInterpretation, TemplateCatalog, TemplateId,
};
use keybridge_relstore::{Database, TableId};

/// A query construction option.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstructionOption {
    /// "Keyword `k` is a value of / names attribute A" — the workhorse
    /// option ("Is London a person?").
    Atom(BindingAtom),
    /// "The result involves table X" (e.g. "Are you looking for a movie?").
    UsesTable(TableId),
    /// "The query has exactly this structure" — the most specific option;
    /// corresponds to showing a full structured query in the query window.
    Template(TemplateId),
}

impl ConstructionOption {
    /// Whether `interp` subsumes this option.
    pub fn subsumed_by(&self, interp: &QueryInterpretation, catalog: &TemplateCatalog) -> bool {
        match self {
            ConstructionOption::Atom(atom) => interp.contains_atom(catalog, atom),
            ConstructionOption::UsesTable(t) => catalog.get(interp.template).tree.nodes.contains(t),
            ConstructionOption::Template(t) => interp.template == *t,
        }
    }

    /// Human-readable rendering (the text shown in the construction panel).
    pub fn describe(&self, db: &Database, catalog: &TemplateCatalog) -> String {
        match self {
            ConstructionOption::Atom(a) => {
                let table = db.schema().table(a.attr.table);
                match a.kind {
                    BindingAtomKind::Value => format!(
                        "\"{}\" is a value of {}.{}",
                        a.keyword,
                        table.name,
                        table.attr(a.attr.attr).name
                    ),
                    BindingAtomKind::TableName => {
                        format!("\"{}\" names the table {}", a.keyword, table.name)
                    }
                    BindingAtomKind::AttrName => format!(
                        "\"{}\" names the attribute {}.{}",
                        a.keyword,
                        table.name,
                        table.attr(a.attr.attr).name
                    ),
                }
            }
            ConstructionOption::UsesTable(t) => {
                format!("the result involves {}", db.schema().table(*t).name)
            }
            ConstructionOption::Template(t) => {
                let sig = catalog.get(*t).signature(db);
                format!("the query joins exactly: {}", sig.join(" ⋈ "))
            }
        }
    }

    /// All options derivable from a candidate set: every distinct binding
    /// atom, every table used by some candidate, and every candidate
    /// template. Options subsumed by *all* candidates carry no information
    /// and are omitted.
    pub fn derive(
        candidates: &[QueryInterpretation],
        catalog: &TemplateCatalog,
    ) -> Vec<ConstructionOption> {
        use std::collections::BTreeSet;
        let mut atoms: BTreeSet<BindingAtom> = BTreeSet::new();
        let mut tables: BTreeSet<TableId> = BTreeSet::new();
        let mut templates: BTreeSet<TemplateId> = BTreeSet::new();
        for c in candidates {
            for a in c.atoms(catalog) {
                atoms.insert(a);
            }
            for t in &catalog.get(c.template).tree.nodes {
                tables.insert(*t);
            }
            templates.insert(c.template);
        }
        let mut out: Vec<ConstructionOption> = atoms
            .into_iter()
            .map(ConstructionOption::Atom)
            .chain(tables.into_iter().map(ConstructionOption::UsesTable))
            .chain(templates.into_iter().map(ConstructionOption::Template))
            .collect();
        out.retain(|o| {
            let n = candidates
                .iter()
                .filter(|c| o.subsumed_by(c, catalog))
                .count();
            n > 0 && n < candidates.len()
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::{Interpreter, InterpreterConfig, KeywordQuery, TemplateCatalog};
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::InvertedIndex;

    fn candidates() -> (ImdbDataset, TemplateCatalog, Vec<QueryInterpretation>) {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        // Use a keyword that is genuinely ambiguous: a common surname.
        let q = KeywordQuery::from_terms(vec!["hanks".into()]);
        let interp = Interpreter::new(&data.db, &index, &catalog, InterpreterConfig::default());
        let mut cands = interp.enumerate_interpretations(&q);
        if cands.is_empty() {
            // Fall back to any term that exists.
            let q = KeywordQuery::from_terms(vec!["tom".into()]);
            cands = interp.enumerate_interpretations(&q);
        }
        (data, catalog, cands)
    }

    #[test]
    fn derive_produces_discriminating_options() {
        let (_, catalog, cands) = candidates();
        assert!(cands.len() > 1, "need an ambiguous query");
        let opts = ConstructionOption::derive(&cands, &catalog);
        assert!(!opts.is_empty());
        for o in &opts {
            let n = cands.iter().filter(|c| o.subsumed_by(c, &catalog)).count();
            assert!(n > 0 && n < cands.len(), "non-discriminating option {o:?}");
        }
    }

    #[test]
    fn subsumption_semantics() {
        let (_, catalog, cands) = candidates();
        let c = &cands[0];
        // Template option: subsumed only by candidates with that template.
        let opt = ConstructionOption::Template(c.template);
        assert!(opt.subsumed_by(c, &catalog));
        // Atom options from the candidate itself are subsumed by it.
        for a in c.atoms(&catalog) {
            assert!(ConstructionOption::Atom(a).subsumed_by(c, &catalog));
        }
        // UsesTable for each node table.
        for t in &catalog.get(c.template).tree.nodes {
            assert!(ConstructionOption::UsesTable(*t).subsumed_by(c, &catalog));
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct_kinds() {
        let (data, catalog, cands) = candidates();
        let opts = ConstructionOption::derive(&cands, &catalog);
        for o in &opts {
            let d = o.describe(&data.db, &catalog);
            assert!(!d.is_empty());
        }
        // At least atoms and tables should both appear for ambiguous input.
        assert!(opts
            .iter()
            .any(|o| matches!(o, ConstructionOption::Atom(_))));
        assert!(opts
            .iter()
            .any(|o| matches!(o, ConstructionOption::UsesTable(_))));
    }
}
