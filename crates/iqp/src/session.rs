//! The interactive construction session (Alg. 3.2) and the simulated user.
//!
//! A session holds the current candidate set (complete interpretations with
//! probabilities), proposes the construction option with maximal information
//! gain (Eqs. 3.11–3.13), and shrinks the set on accept/reject. The paper's
//! greedy algorithm additionally expands the query hierarchy lazily; at the
//! medium scale of Chapters 3–4 the candidate set fits in memory, so the
//! session works on the materialized top level — the FreeQ crate provides
//! the lazily-expanded variant for very large schemas.

use crate::options::ConstructionOption;
use keybridge_core::{
    execute_interpretation_cached, ExecCache, ExecutedResult, IntentDescription, Interpreter,
    KeywordQuery, QueryInterpretation, ScoredInterpretation, TemplateCatalog,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{Database, ExecOptions};

/// Session tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Stop when at most this many candidates remain ("the process of query
    /// construction stops when less than five complete query interpretations
    /// are left in the query window", §3.8.2).
    pub stop_at: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { stop_at: 5 }
    }
}

/// Shannon entropy of a normalized distribution (Eq. 3.12 shape).
fn entropy(probs: impl Iterator<Item = f64>) -> f64 {
    let mut h = 0.0;
    for p in probs {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of a weight vector after normalization; zero-sum yields 0.
fn entropy_of_weights(weights: &[f64]) -> f64 {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    entropy(weights.iter().map(|w| w / sum))
}

/// An in-progress construction session over a materialized candidate set.
///
/// Atom sets, node tables, and template ids are cached per candidate so the
/// per-step information-gain scan is `O(#options · #candidates)` set lookups
/// rather than repeated atom extraction.
pub struct ConstructionSession<'a> {
    catalog: &'a TemplateCatalog,
    candidates: Vec<(QueryInterpretation, f64)>,
    /// Sorted atom list per candidate (parallel to `candidates`).
    atom_cache: Vec<Vec<keybridge_core::BindingAtom>>,
    asked: Vec<ConstructionOption>,
    steps: usize,
    config: SessionConfig,
}

impl<'a> ConstructionSession<'a> {
    /// Start a session from ranked interpretations (probabilities are reused
    /// as plan weights).
    pub fn new(
        catalog: &'a TemplateCatalog,
        ranked: &[ScoredInterpretation],
        config: SessionConfig,
    ) -> Self {
        let candidates: Vec<(QueryInterpretation, f64)> = ranked
            .iter()
            .map(|s| (s.interpretation.clone(), s.probability.max(1e-12)))
            .collect();
        let atom_cache = candidates.iter().map(|(c, _)| c.atoms(catalog)).collect();
        ConstructionSession {
            catalog,
            candidates,
            atom_cache,
            asked: Vec::new(),
            steps: 0,
            config,
        }
    }

    /// Start a session directly from a keyword query: the candidate window
    /// is the interpreter's best-first `top_k_complete` — construction
    /// never needs the exhaustive space, only the window the user will
    /// actually winnow (probabilities are normalized within it). The
    /// session borrows the interpreter's own catalog.
    pub fn for_query(
        interpreter: &Interpreter<'a>,
        query: &KeywordQuery,
        window: usize,
        config: SessionConfig,
    ) -> Self {
        let ranked = interpreter.top_k_complete(query, window);
        Self::new(interpreter.catalog(), &ranked, config)
    }

    /// Remaining candidates, best first.
    pub fn remaining(&self) -> &[(QueryInterpretation, f64)] {
        &self.candidates
    }

    /// Options evaluated so far (the interaction cost).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether the session should stop (few enough candidates, or no further
    /// discriminating option exists).
    pub fn finished(&self) -> bool {
        self.candidates.len() <= self.config.stop_at || self.next_option().is_none()
    }

    /// Subsumption against the cached atoms of candidate `i`.
    fn subsumes_cached(&self, i: usize, o: &ConstructionOption) -> bool {
        match o {
            ConstructionOption::Atom(a) => self.atom_cache[i].binary_search(a).is_ok(),
            ConstructionOption::UsesTable(t) => self
                .catalog
                .get(self.candidates[i].0.template)
                .tree
                .nodes
                .contains(t),
            ConstructionOption::Template(t) => self.candidates[i].0.template == *t,
        }
    }

    /// The next option to present: the one maximizing information gain
    /// `IG(I|O) = H(I) − [P(O)·H(I|accept) + P(¬O)·H(I|reject)]`.
    ///
    /// (Eq. 3.13 computes `H(I|O)` over the subsumed side only; we use the
    /// standard expectation over both sides, which is what "maximize the
    /// information revealed" requires and what makes the baseline degrade to
    /// binary splitting under uniform probabilities.)
    pub fn next_option(&self) -> Option<ConstructionOption> {
        // Derive candidate options from the cached atoms.
        use std::collections::BTreeSet;
        let mut opts: BTreeSet<ConstructionOption> = BTreeSet::new();
        for (i, (c, _)) in self.candidates.iter().enumerate() {
            for a in &self.atom_cache[i] {
                opts.insert(ConstructionOption::Atom(a.clone()));
            }
            for t in &self.catalog.get(c.template).tree.nodes {
                opts.insert(ConstructionOption::UsesTable(*t));
            }
            opts.insert(ConstructionOption::Template(c.template));
        }
        let h = entropy_of_weights(&self.candidates.iter().map(|(_, p)| *p).collect::<Vec<_>>());
        let total: f64 = self.candidates.iter().map(|(_, p)| *p).sum();
        let mut best: Option<(f64, ConstructionOption)> = None;
        let mut acc: Vec<f64> = Vec::with_capacity(self.candidates.len());
        let mut rej: Vec<f64> = Vec::with_capacity(self.candidates.len());
        for o in opts {
            if self.asked.contains(&o) {
                continue;
            }
            acc.clear();
            rej.clear();
            for (i, (_, p)) in self.candidates.iter().enumerate() {
                if self.subsumes_cached(i, &o) {
                    acc.push(*p);
                } else {
                    rej.push(*p);
                }
            }
            if acc.is_empty() || rej.is_empty() {
                continue; // non-discriminating
            }
            let p_acc: f64 = acc.iter().sum::<f64>() / total;
            let cond = p_acc * entropy_of_weights(&acc) + (1.0 - p_acc) * entropy_of_weights(&rej);
            let ig = h - cond;
            let better = match &best {
                None => true,
                Some((b, bo)) => ig > *b + 1e-12 || (ig > *b - 1e-12 && o < *bo),
            };
            if better {
                best = Some((ig, o));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Materialize the answers of the current query window: every remaining
    /// candidate is executed through the batched hash-join engine (at most
    /// `limit` JTTs each), sharing one [`ExecCache`] so predicates common to
    /// several window candidates are intersected once. Returns
    /// `(candidate index, result)` pairs for the non-empty candidates, in
    /// window (probability) order — the "results, not query forms" the user
    /// is ultimately after.
    pub fn window_answers(
        &self,
        db: &Database,
        index: &InvertedIndex,
        limit: usize,
    ) -> Vec<(usize, std::sync::Arc<ExecutedResult>)> {
        let mut cache = ExecCache::new();
        let opts = ExecOptions {
            limit,
            ..Default::default()
        };
        self.candidates
            .iter()
            .enumerate()
            .filter_map(|(i, (c, _))| {
                execute_interpretation_cached(db, index, self.catalog, c, opts, &mut cache)
                    .ok()
                    .filter(|r| !r.is_empty())
                    .map(|r| (i, r))
            })
            .collect()
    }

    /// Apply the user's verdict on `option`, shrinking the candidate set.
    pub fn apply(&mut self, option: ConstructionOption, accepted: bool) {
        self.steps += 1;
        let keep: Vec<bool> = (0..self.candidates.len())
            .map(|i| self.subsumes_cached(i, &option) == accepted)
            .collect();
        let mut it = keep.iter();
        self.candidates.retain(|_| *it.next().expect("parallel"));
        let mut it = keep.iter();
        self.atom_cache.retain(|_| *it.next().expect("parallel"));
        self.asked.push(option);
    }
}

/// Outcome of a simulated construction run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionOutcome {
    /// Options the user evaluated (the interaction cost of construction).
    pub steps: usize,
    /// Candidates left when the session stopped.
    pub remaining: usize,
    /// Whether the intended interpretation survived to the final window.
    pub target_retained: bool,
}

/// A simulated user holding an intended interpretation, judging options the
/// way §3.8.2 automates it: accept options the intent subsumes, reject the
/// rest.
pub struct SimulatedUser<'a> {
    pub db: &'a Database,
    pub catalog: &'a TemplateCatalog,
    pub intent: IntentDescription,
}

impl<'a> SimulatedUser<'a> {
    /// Find the candidate realizing the intent, if generation produced it.
    pub fn find_target<'b>(
        &self,
        ranked: &'b [ScoredInterpretation],
    ) -> Option<&'b QueryInterpretation> {
        ranked
            .iter()
            .map(|s| &s.interpretation)
            .find(|i| self.intent.matches(i, self.db, self.catalog))
    }

    /// 1-based rank of the intended interpretation in a ranked list — the
    /// interaction cost of the pure ranking interface (§3.8.3).
    pub fn rank_of_target(&self, ranked: &[ScoredInterpretation]) -> Option<usize> {
        ranked
            .iter()
            .position(|s| {
                self.intent
                    .matches(&s.interpretation, self.db, self.catalog)
            })
            .map(|p| p + 1)
    }

    /// Drive a session to completion, answering every proposed option
    /// against the target interpretation.
    pub fn run(
        &self,
        ranked: &[ScoredInterpretation],
        config: SessionConfig,
    ) -> Option<ConstructionOutcome> {
        let target = self.find_target(ranked)?.clone();
        let mut session = ConstructionSession::new(self.catalog, ranked, config);
        while session.remaining().len() > config.stop_at {
            let Some(option) = session.next_option() else {
                break;
            };
            let accept = option.subsumed_by(&target, self.catalog);
            session.apply(option, accept);
        }
        let target_retained = session.remaining().iter().any(|(c, _)| *c == target);
        Some(ConstructionOutcome {
            steps: session.steps(),
            remaining: session.remaining().len(),
            target_retained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::{Interpreter, InterpreterConfig, KeywordQuery};
    use keybridge_datagen::{ImdbConfig, ImdbDataset, Workload, WorkloadConfig};
    use keybridge_index::InvertedIndex;

    struct Fixture {
        data: ImdbDataset,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            data,
            index,
            catalog,
        }
    }

    fn intent_of(q: &keybridge_datagen::WorkloadQuery) -> IntentDescription {
        IntentDescription {
            bindings: q
                .intent
                .bindings
                .iter()
                .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                .collect(),
            tables: q.intent.tables.clone(),
        }
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_of_weights(&[]), 0.0);
        assert_eq!(entropy_of_weights(&[1.0]), 0.0);
        assert!((entropy_of_weights(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!(entropy_of_weights(&[0.9, 0.1]) < 1.0);
    }

    #[test]
    fn session_shrinks_and_retains_target() {
        let f = fixture();
        let w = Workload::imdb(
            &f.data,
            WorkloadConfig {
                seed: 3,
                n_queries: 25,
                mc_fraction: 0.6,
            },
        );
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let mut ran = 0;
        for q in &w.queries {
            let query = KeywordQuery::from_terms(q.keywords.clone());
            let ranked = interp.ranked_interpretations(&query);
            if ranked.is_empty() {
                continue;
            }
            let user = SimulatedUser {
                db: &f.data.db,
                catalog: &f.catalog,
                intent: intent_of(q),
            };
            let Some(outcome) = user.run(&ranked, SessionConfig::default()) else {
                continue; // generation missed the intent; skip like the paper
            };
            ran += 1;
            assert!(outcome.target_retained, "target lost for {:?}", q.keywords);
            assert!(outcome.remaining <= ranked.len());
            if ranked.len() > 5 {
                assert!(outcome.steps >= 1);
            }
        }
        assert!(ran >= 10, "too few runnable queries: {ran}");
    }

    #[test]
    fn construction_cost_bounded_by_log_for_uniform() {
        // With near-uniform probabilities, IG splitting halves the space, so
        // steps should be O(log n) + stop window slack, far below n.
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                prob: keybridge_core::ProbabilityConfig::baseline(),
                ..Default::default()
            },
        );
        let q = KeywordQuery::from_terms(vec!["hanks".into()]);
        let ranked = interp.ranked_interpretations(&q);
        if ranked.len() < 8 {
            return; // dataset too small to say anything
        }
        let mut session = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        let target = ranked.last().unwrap().interpretation.clone();
        while !session.finished() {
            let o = session.next_option().unwrap();
            let a = o.subsumed_by(&target, &f.catalog);
            session.apply(o, a);
        }
        assert!(
            session.steps() <= 2 * (ranked.len() as f64).log2().ceil() as usize + 4,
            "steps {} too high for {} candidates",
            session.steps(),
            ranked.len()
        );
        assert!(session.remaining().iter().any(|(c, _)| *c == target));
    }

    #[test]
    fn rank_of_target_is_one_based() {
        let f = fixture();
        let w = Workload::imdb(
            &f.data,
            WorkloadConfig {
                seed: 4,
                n_queries: 10,
                mc_fraction: 0.0,
            },
        );
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        for q in &w.queries {
            let query = KeywordQuery::from_terms(q.keywords.clone());
            let ranked = interp.ranked_interpretations(&query);
            let user = SimulatedUser {
                db: &f.data.db,
                catalog: &f.catalog,
                intent: intent_of(q),
            };
            if let Some(r) = user.rank_of_target(&ranked) {
                assert!(r >= 1 && r <= ranked.len());
            }
        }
    }

    #[test]
    fn for_query_builds_topk_window() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let session = ConstructionSession::for_query(&interp, &q, 20, SessionConfig::default());
        let manual = interp.top_k_complete(&q, 20);
        assert_eq!(session.remaining().len(), manual.len());
        for ((c, p), s) in session.remaining().iter().zip(&manual) {
            assert_eq!(*c, s.interpretation);
            assert!((p - s.probability.max(1e-12)).abs() < 1e-12);
        }
    }

    #[test]
    fn window_answers_execute_remaining_candidates() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let session = ConstructionSession::for_query(&interp, &q, 10, SessionConfig::default());
        let answers = session.window_answers(&f.data.db, &f.index, 5);
        assert!(!answers.is_empty(), "window produced no answers");
        for (i, r) in &answers {
            assert!(*i < session.remaining().len());
            assert!(!r.is_empty());
            assert!(r.len() <= 5);
        }
        // Window order is preserved.
        assert!(answers.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn deterministic_option_sequence() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let ranked = interp.ranked_interpretations(&q);
        if ranked.len() < 3 {
            return;
        }
        let s1 = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        let s2 = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        assert_eq!(s1.next_option(), s2.next_option());
    }
}
