//! The interactive construction session (Alg. 3.2) and the simulated user.
//!
//! The session itself — candidate window, information-gain option selection
//! (Eqs. 3.11–3.13), verdict application, and the pipeline-backed window
//! execution — lives in `keybridge_core::construct` (re-exported here), so
//! the concurrent `SearchService` can host sessions server-side with pinned
//! snapshot epochs. This module keeps the Chapter 3 evaluation harness on
//! top of it: the simulated user that answers options against a known
//! intent, standing in for the §3.8.2 study participants.

pub use keybridge_core::{ConstructionSession, SessionConfig};

use keybridge_core::{
    IntentDescription, QueryInterpretation, ScoredInterpretation, TemplateCatalog,
};
use keybridge_relstore::Database;

/// Outcome of a simulated construction run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstructionOutcome {
    /// Options the user evaluated (the interaction cost of construction).
    pub steps: usize,
    /// Candidates left when the session stopped.
    pub remaining: usize,
    /// Whether the intended interpretation survived to the final window.
    pub target_retained: bool,
}

/// A simulated user holding an intended interpretation, judging options the
/// way §3.8.2 automates it: accept options the intent subsumes, reject the
/// rest.
pub struct SimulatedUser<'a> {
    pub db: &'a Database,
    pub catalog: &'a TemplateCatalog,
    pub intent: IntentDescription,
}

impl<'a> SimulatedUser<'a> {
    /// Find the candidate realizing the intent, if generation produced it.
    pub fn find_target<'b>(
        &self,
        ranked: &'b [ScoredInterpretation],
    ) -> Option<&'b QueryInterpretation> {
        ranked
            .iter()
            .map(|s| &s.interpretation)
            .find(|i| self.intent.matches(i, self.db, self.catalog))
    }

    /// 1-based rank of the intended interpretation in a ranked list — the
    /// interaction cost of the pure ranking interface (§3.8.3).
    pub fn rank_of_target(&self, ranked: &[ScoredInterpretation]) -> Option<usize> {
        ranked
            .iter()
            .position(|s| {
                self.intent
                    .matches(&s.interpretation, self.db, self.catalog)
            })
            .map(|p| p + 1)
    }

    /// Drive a session to completion, answering every proposed option
    /// against the target interpretation.
    pub fn run(
        &self,
        ranked: &[ScoredInterpretation],
        config: SessionConfig,
    ) -> Option<ConstructionOutcome> {
        let target = self.find_target(ranked)?.clone();
        let mut session = ConstructionSession::new(self.catalog, ranked, config);
        while session.remaining().len() > config.stop_at {
            let Some(option) = session.next_option(self.catalog) else {
                break;
            };
            let accept = option.subsumed_by(&target, self.catalog);
            session.apply(self.catalog, option, accept);
        }
        let target_retained = session.remaining().iter().any(|(c, _)| *c == target);
        Some(ConstructionOutcome {
            steps: session.steps(),
            remaining: session.remaining().len(),
            target_retained,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_core::{Interpreter, InterpreterConfig, KeywordQuery};
    use keybridge_datagen::{ImdbConfig, ImdbDataset, Workload, WorkloadConfig};
    use keybridge_index::InvertedIndex;

    struct Fixture {
        data: ImdbDataset,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            data,
            index,
            catalog,
        }
    }

    fn intent_of(q: &keybridge_datagen::WorkloadQuery) -> IntentDescription {
        IntentDescription {
            bindings: q
                .intent
                .bindings
                .iter()
                .map(|b| (b.keywords.clone(), b.table.clone(), b.attr.clone()))
                .collect(),
            tables: q.intent.tables.clone(),
        }
    }

    #[test]
    fn session_shrinks_and_retains_target() {
        let f = fixture();
        let w = Workload::imdb(
            &f.data,
            WorkloadConfig {
                seed: 3,
                n_queries: 25,
                mc_fraction: 0.6,
            },
        );
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let mut ran = 0;
        for q in &w.queries {
            let query = KeywordQuery::from_terms(q.keywords.clone());
            let ranked = interp.ranked_interpretations(&query);
            if ranked.is_empty() {
                continue;
            }
            let user = SimulatedUser {
                db: &f.data.db,
                catalog: &f.catalog,
                intent: intent_of(q),
            };
            let Some(outcome) = user.run(&ranked, SessionConfig::default()) else {
                continue; // generation missed the intent; skip like the paper
            };
            ran += 1;
            assert!(outcome.target_retained, "target lost for {:?}", q.keywords);
            assert!(outcome.remaining <= ranked.len());
            if ranked.len() > 5 {
                assert!(outcome.steps >= 1);
            }
        }
        assert!(ran >= 10, "too few runnable queries: {ran}");
    }

    #[test]
    fn construction_cost_bounded_by_log_for_uniform() {
        // With near-uniform probabilities, IG splitting halves the space, so
        // steps should be O(log n) + stop window slack, far below n.
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                prob: keybridge_core::ProbabilityConfig::baseline(),
                ..Default::default()
            },
        );
        let q = KeywordQuery::from_terms(vec!["hanks".into()]);
        let ranked = interp.ranked_interpretations(&q);
        if ranked.len() < 8 {
            return; // dataset too small to say anything
        }
        let mut session = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        let target = ranked.last().unwrap().interpretation.clone();
        while !session.finished(&f.catalog) {
            let o = session.next_option(&f.catalog).unwrap();
            let a = o.subsumed_by(&target, &f.catalog);
            session.apply(&f.catalog, o, a);
        }
        assert!(
            session.steps() <= 2 * (ranked.len() as f64).log2().ceil() as usize + 4,
            "steps {} too high for {} candidates",
            session.steps(),
            ranked.len()
        );
        assert!(session.remaining().iter().any(|(c, _)| *c == target));
    }

    #[test]
    fn rank_of_target_is_one_based() {
        let f = fixture();
        let w = Workload::imdb(
            &f.data,
            WorkloadConfig {
                seed: 4,
                n_queries: 10,
                mc_fraction: 0.0,
            },
        );
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        for q in &w.queries {
            let query = KeywordQuery::from_terms(q.keywords.clone());
            let ranked = interp.ranked_interpretations(&query);
            let user = SimulatedUser {
                db: &f.data.db,
                catalog: &f.catalog,
                intent: intent_of(q),
            };
            if let Some(r) = user.rank_of_target(&ranked) {
                assert!(r >= 1 && r <= ranked.len());
            }
        }
    }

    #[test]
    fn for_query_builds_topk_window() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let session = ConstructionSession::for_query(&interp, &q, 20, SessionConfig::default());
        let manual = interp.top_k_complete(&q, 20);
        assert_eq!(session.remaining().len(), manual.len());
        for ((c, p), s) in session.remaining().iter().zip(&manual) {
            assert_eq!(*c, s.interpretation);
            assert!((p - s.probability.max(1e-12)).abs() < 1e-12);
        }
    }

    #[test]
    fn window_answers_execute_remaining_candidates() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let session = ConstructionSession::for_query(&interp, &q, 10, SessionConfig::default());
        let answers = session.window_answers(&f.data.db, &f.index, &f.catalog, 5);
        assert!(!answers.is_empty(), "window produced no answers");
        for (i, r) in &answers {
            assert!(*i < session.remaining().len());
            assert!(!r.is_empty());
            assert!(r.len() <= 5);
        }
        // Window order is preserved.
        assert!(answers.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn window_answers_with_cache_replays_identically() {
        // Repeated refreshes through one cache must return byte-identical
        // results while re-intersecting no predicates (the cached executor
        // seam the satellite fix routes through).
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let session = ConstructionSession::for_query(&interp, &q, 10, SessionConfig::default());
        let cold = session.window_answers(&f.data.db, &f.index, &f.catalog, 5);
        let mut cache = keybridge_core::ExecCache::new();
        let first =
            session.window_answers_with_cache(&f.data.db, &f.index, &f.catalog, 5, &mut cache);
        let predicates_after_first = cache.predicate_count();
        let hits_after_first = cache.predicate_hits;
        let second =
            session.window_answers_with_cache(&f.data.db, &f.index, &f.catalog, 5, &mut cache);
        assert_eq!(
            cache.predicate_count(),
            predicates_after_first,
            "refresh re-materialized predicates"
        );
        assert!(
            cache.predicate_hits > hits_after_first || cache.result_hits > 0,
            "refresh never hit the cache"
        );
        for (run, name) in [(&first, "first"), (&second, "second")] {
            assert_eq!(cold.len(), run.len(), "{name}");
            for ((ci, cr), (ri, rr)) in cold.iter().zip(run.iter()) {
                assert_eq!(ci, ri, "{name}");
                assert_eq!(cr.jtts, rr.jtts, "{name}");
                assert_eq!(cr.keys, rr.keys, "{name}");
            }
        }
    }

    #[test]
    fn deterministic_option_sequence() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let ranked = interp.ranked_interpretations(&q);
        if ranked.len() < 3 {
            return;
        }
        let s1 = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        let s2 = ConstructionSession::new(&f.catalog, &ranked, SessionConfig::default());
        assert_eq!(s1.next_option(&f.catalog), s2.next_option(&f.catalog));
    }
}
