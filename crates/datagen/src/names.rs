//! Name pools and Zipf sampling.
//!
//! Realistic keyword-search evaluation needs *skewed*, *ambiguous* text:
//! common first names shared by many people, surnames that double as title
//! words, and heavy-tailed term frequencies. This module provides embedded
//! pools of common names/words, a syllable generator for the long tail, and
//! a Zipf sampler so generated frequencies follow the power law real corpora
//! exhibit.

use rand::rngs::StdRng;
use rand::Rng;

/// Common first names. Deliberately includes the paper's running examples.
const FIRST_NAMES: &[&str] = &[
    "tom", "elena", "jack", "colin", "meg", "diego", "brad", "steven", "blake", "chad", "melissa",
    "bruce", "andy", "mariah", "james", "mary", "john", "linda", "robert", "susan", "michael",
    "karen", "david", "nancy", "william", "lisa", "richard", "betty", "joseph", "helen", "thomas",
    "sandra", "charles", "donna", "peter", "carol", "paul", "ruth", "mark", "sharon", "george",
    "laura", "kenneth", "sarah", "edward", "kim", "brian", "anna", "ronald", "emma", "anthony",
    "julia", "kevin", "grace", "jason", "rose", "jeff", "alice", "gary", "diana", "nicholas",
    "sophia", "eric", "clara", "stephen", "irene", "larry", "monica", "justin", "teresa", "scott",
    "gloria", "brandon", "victoria", "frank", "joan", "gregory", "evelyn", "samuel", "judith",
    "patrick", "olga",
];

/// Common surnames. Several are also ordinary words or places ("london",
/// "stone", "rivers", "guest"), which creates exactly the keyword ambiguity
/// the paper's examples revolve around.
const LAST_NAMES: &[&str] = &[
    "hanks",
    "cruise",
    "london",
    "guest",
    "stone",
    "rivers",
    "gilbert",
    "boxleitner",
    "luna",
    "soderbergh",
    "pitt",
    "carey",
    "ryan",
    "garcia",
    "smith",
    "johnson",
    "brown",
    "taylor",
    "miller",
    "wilson",
    "moore",
    "anderson",
    "thomas",
    "jackson",
    "white",
    "harris",
    "martin",
    "thompson",
    "wood",
    "walker",
    "hall",
    "allen",
    "young",
    "king",
    "wright",
    "hill",
    "green",
    "baker",
    "adams",
    "nelson",
    "carter",
    "mitchell",
    "parker",
    "collins",
    "murphy",
    "bell",
    "bailey",
    "cooper",
    "richardson",
    "cox",
    "ward",
    "fox",
    "gray",
    "james",
    "watson",
    "brooks",
    "kelly",
    "sanders",
    "price",
    "bennett",
    "barnes",
    "ross",
    "powell",
    "long",
    "hughes",
    "flores",
    "butler",
    "foster",
    "bryant",
    "russell",
    "griffin",
    "diaz",
    "hayes",
    "west",
    "field",
    "snow",
    "frost",
    "lake",
    "marsh",
];

/// Ordinary words used for titles, lyrics, and category names. Includes the
/// running-example words ("terminal", "consideration", "volcano").
const WORDS: &[&str] = &[
    "terminal",
    "consideration",
    "volcano",
    "age",
    "city",
    "guide",
    "night",
    "day",
    "summer",
    "winter",
    "river",
    "mountain",
    "ocean",
    "star",
    "moon",
    "sun",
    "shadow",
    "light",
    "dark",
    "fire",
    "ice",
    "storm",
    "wind",
    "rain",
    "snow",
    "dream",
    "memory",
    "heart",
    "soul",
    "mind",
    "road",
    "journey",
    "return",
    "escape",
    "secret",
    "silent",
    "broken",
    "golden",
    "silver",
    "crimson",
    "emerald",
    "velvet",
    "paper",
    "glass",
    "stone",
    "iron",
    "steel",
    "wild",
    "lost",
    "found",
    "hidden",
    "forgotten",
    "eternal",
    "final",
    "first",
    "last",
    "blue",
    "red",
    "black",
    "white",
    "green",
    "letter",
    "song",
    "dance",
    "story",
    "legend",
    "myth",
    "echo",
    "whisper",
    "scream",
    "laugh",
    "tear",
    "smile",
    "kiss",
    "touch",
    "fall",
    "rise",
    "run",
    "walk",
    "fly",
    "burn",
    "freeze",
    "garden",
    "forest",
    "desert",
    "island",
    "bridge",
    "tower",
    "castle",
    "house",
    "home",
    "window",
    "door",
    "mirror",
    "clock",
    "train",
    "ship",
    "plane",
    "engine",
    "machine",
    "emotion",
    "passion",
    "fever",
    "fortune",
    "destiny",
    "danger",
    "courage",
    "honor",
];

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "ch", "cl", "dr", "fr", "gr", "kr", "pl", "pr", "sh", "sl", "st", "th", "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "ou"];

/// A cumulative-distribution Zipf sampler over ranks `0..n`.
///
/// Rank `i` has weight `1 / (i + 1)^s`. Sampling is O(log n) via binary
/// search on the precomputed CDF — `n` is small (name pools), so the CDF is
/// cheap to hold.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is uniform;
    /// `s ≈ 1` matches natural-language term frequencies).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over an empty domain (never true by
    /// construction, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Pools of person names and words with Zipf-skewed sampling plus a
/// syllable-based long tail.
#[derive(Debug, Clone)]
pub struct NamePool {
    first: ZipfSampler,
    last: ZipfSampler,
    word: ZipfSampler,
    /// Probability of generating a tail (synthetic) name instead of a pool
    /// name; keeps vocabularies open-ended like real data.
    tail_prob: f64,
}

impl Default for NamePool {
    fn default() -> Self {
        NamePool {
            first: ZipfSampler::new(FIRST_NAMES.len(), 0.8),
            last: ZipfSampler::new(LAST_NAMES.len(), 0.8),
            word: ZipfSampler::new(WORDS.len(), 0.9),
            tail_prob: 0.25,
        }
    }
}

impl NamePool {
    /// Pool with the default skew.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool that never generates tail names (fully closed vocabulary).
    pub fn closed() -> Self {
        NamePool {
            tail_prob: 0.0,
            ..Self::default()
        }
    }

    /// A synthetic pronounceable token, for the vocabulary long tail.
    pub fn tail_token(&self, rng: &mut StdRng) -> String {
        let syllables = rng.gen_range(2..=3);
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
            s.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        }
        s
    }

    /// A first name (lowercase token).
    pub fn first_name(&self, rng: &mut StdRng) -> String {
        if rng.gen_bool(self.tail_prob) {
            self.tail_token(rng)
        } else {
            FIRST_NAMES[self.first.sample(rng)].to_owned()
        }
    }

    /// A surname (lowercase token).
    pub fn last_name(&self, rng: &mut StdRng) -> String {
        if rng.gen_bool(self.tail_prob) {
            self.tail_token(rng)
        } else {
            LAST_NAMES[self.last.sample(rng)].to_owned()
        }
    }

    /// A full person name, `"first last"`.
    pub fn person_name(&self, rng: &mut StdRng) -> String {
        format!("{} {}", self.first_name(rng), self.last_name(rng))
    }

    /// A content word.
    pub fn word(&self, rng: &mut StdRng) -> String {
        if rng.gen_bool(self.tail_prob) {
            self.tail_token(rng)
        } else {
            WORDS[self.word.sample(rng)].to_owned()
        }
    }

    /// A title of `min..=max` words. With probability `person_word_prob`
    /// one word is a surname — the title/name ambiguity the paper's queries
    /// exploit ("london", "terminal" as movie vs. person).
    pub fn title(
        &self,
        rng: &mut StdRng,
        min_words: usize,
        max_words: usize,
        person_word_prob: f64,
    ) -> String {
        let n = rng.gen_range(min_words..=max_words.max(min_words));
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.word(rng));
        }
        if rng.gen_bool(person_word_prob) {
            let pos = rng.gen_range(0..words.len());
            words[pos] = LAST_NAMES[self.last.sample(rng)].to_owned();
        }
        words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_is_skewed() {
        let z = ZipfSampler::new(100, 1.0);
        let mut r = rng(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 5 * counts[50].max(1));
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut r = rng(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*max as f64) / (*min as f64) < 1.3, "{counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = NamePool::new();
        let a: Vec<String> = {
            let mut r = rng(42);
            (0..10).map(|_| p.person_name(&mut r)).collect()
        };
        let b: Vec<String> = {
            let mut r = rng(42);
            (0..10).map(|_| p.person_name(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn person_names_have_two_tokens() {
        let p = NamePool::new();
        let mut r = rng(3);
        for _ in 0..50 {
            let n = p.person_name(&mut r);
            assert_eq!(n.split(' ').count(), 2, "{n}");
            assert_eq!(n, n.to_lowercase());
        }
    }

    #[test]
    fn titles_respect_word_bounds() {
        let p = NamePool::closed();
        let mut r = rng(4);
        for _ in 0..100 {
            let t = p.title(&mut r, 1, 3, 0.3);
            let wc = t.split(' ').count();
            assert!((1..=3).contains(&wc), "{t}");
        }
    }

    #[test]
    fn closed_pool_stays_in_vocabulary() {
        let p = NamePool::closed();
        let mut r = rng(5);
        for _ in 0..200 {
            let f = p.first_name(&mut r);
            assert!(FIRST_NAMES.contains(&f.as_str()), "{f}");
        }
    }

    #[test]
    fn tail_tokens_pronounceable_and_nonempty() {
        let p = NamePool::new();
        let mut r = rng(6);
        for _ in 0..50 {
            let t = p.tail_token(&mut r);
            assert!(t.len() >= 2);
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
