//! # keybridge-datagen
//!
//! Seeded, deterministic generators for every dataset the paper evaluates on:
//!
//! * [`imdb`] — an IMDB-like movie database (7 tables, §3.8.1 / §4.6.1);
//! * [`lyrics`] — a Lyrics-like music database (5 tables, §3.8.1 / §4.6.1);
//! * [`freebase`] — a Freebase-like flat schema with hundreds to thousands of
//!   tables across domains sharing a global instance universe (§5.7.1);
//! * [`yago`] — a YAGO-like category hierarchy with instances overlapping the
//!   Freebase-like database, plus a hidden gold category→table mapping
//!   (§6.4–6.6);
//! * [`querylog`] — keyword-query workloads with ground-truth intents and
//!   Zipf-distributed template usage, standing in for the MSN/AOL logs.
//!
//! All generators take an explicit `u64` seed; identical seeds produce
//! identical bytes, which makes every experiment in the repository
//! reproducible.
//!
//! ## Scale factors
//!
//! Every fixture config carries a `scale: f64` knob (default `1.0`, which
//! reproduces the historical fixtures bit for bit). Entity/relation *counts*
//! grow as [`scale_rows`]`(base, scale)` = `max(1, round(base × scale))`,
//! while per-row fan-out ratios (cast size, songs per album, Zipf skew) stay
//! fixed, so foreign-key selectivity remains realistic as the corpus grows.
//! Primary keys are dense `1..=n` sequences and every id computation runs in
//! `i64`/`u64`; [`scale_rows`] rejects counts past `2^31`, far below any
//! overflow or pk-collision boundary.
//!
//! Expected total row counts (`E[rows](scale)`, defaults shown):
//!
//! | fixture | formula | scale 1 | scale 10 | scale 50 |
//! |---|---|---|---|---|
//! | IMDB | `18 + (companies+actors+directors)·s + movies·s·(avg_cast+2)` | ~12,068 | ~120,518 | ~602,518 |
//! | IMDB (bench quick) | `18 + 550·s + 500·s·5` | ~3,068 | ~30,518 | ~152,518 |
//! | Lyrics | `(artists+albums+songs)·s + links` | ~17,400 | ~174,000 | ~870,000 |
//! | Freebase | `topics·s + domains·types·min(rows·s, …)` | ~9,000 | ~90,000 | ~450,000 |
//! | YAGO | `leaf_categories·s` categories over the Freebase topics | 800 | 8,000 | 40,000 |
//!
//! (`acts` and the junction tables are stochastic; the table shows means.
//! Expected resident footprint is ~100–150 bytes/row with the interned
//! store — see `crates/bench/README.md` for measuring it.)

pub mod freebase;
pub mod imdb;
pub mod ingest;
pub mod lyrics;
pub mod names;
pub mod querylog;
pub mod yago;

pub use freebase::{FreebaseConfig, FreebaseDataset};
pub use imdb::{ImdbConfig, ImdbDataset};
pub use ingest::{
    holdout_plan, sharded_holdout_plan, IngestConfig, IngestPlan, MixedOp, MixedWorkload,
    ShardedIngestPlan,
};
pub use lyrics::{LyricsConfig, LyricsDataset};
pub use names::{NamePool, ZipfSampler};
pub use querylog::{
    IntentBinding, IntentSpec, TemplateUsage, Workload, WorkloadConfig, WorkloadQuery,
};
pub use yago::{CategoryKind, YagoCategory, YagoConfig, YagoOntology};

/// Effective row count of a fixture table under a scale factor:
/// `max(1, round(base × scale))` (zero stays zero). Panics on non-finite or
/// non-positive scales and on results past `2^31` — the explicit pk-space
/// budget keeping dense `1..=n` integer keys and the `u32` row-id mint far
/// from overflow at any supported scale.
pub fn scale_rows(base: usize, scale: f64) -> usize {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be a positive finite number, got {scale}"
    );
    let scaled = (base as f64 * scale).round();
    assert!(
        scaled < (1u64 << 31) as f64,
        "scaled row count {scaled} exceeds the 2^31 pk-space budget"
    );
    if base == 0 {
        0
    } else {
        (scaled as usize).max(1)
    }
}

#[cfg(test)]
mod scale_tests {
    use super::scale_rows;

    #[test]
    fn identity_at_scale_one() {
        for n in [0usize, 1, 7, 1500, 60_000] {
            assert_eq!(scale_rows(n, 1.0), n);
        }
    }

    #[test]
    fn rounds_and_clamps() {
        assert_eq!(scale_rows(3, 0.4), 1); // rounds to 1.2 → 1
        assert_eq!(scale_rows(3, 0.1), 1); // min 1 for non-empty bases
        assert_eq!(scale_rows(0, 10.0), 0); // zero stays zero
        assert_eq!(scale_rows(400, 50.0), 20_000);
        assert_eq!(scale_rows(1500, 2.5), 3750);
    }

    #[test]
    #[should_panic(expected = "pk-space budget")]
    fn rejects_overflowing_scale() {
        scale_rows(1 << 30, 4.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_nan_scale() {
        scale_rows(10, f64::NAN);
    }
}
