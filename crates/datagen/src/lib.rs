//! # keybridge-datagen
//!
//! Seeded, deterministic generators for every dataset the paper evaluates on:
//!
//! * [`imdb`] — an IMDB-like movie database (7 tables, §3.8.1 / §4.6.1);
//! * [`lyrics`] — a Lyrics-like music database (5 tables, §3.8.1 / §4.6.1);
//! * [`freebase`] — a Freebase-like flat schema with hundreds to thousands of
//!   tables across domains sharing a global instance universe (§5.7.1);
//! * [`yago`] — a YAGO-like category hierarchy with instances overlapping the
//!   Freebase-like database, plus a hidden gold category→table mapping
//!   (§6.4–6.6);
//! * [`querylog`] — keyword-query workloads with ground-truth intents and
//!   Zipf-distributed template usage, standing in for the MSN/AOL logs.
//!
//! All generators take an explicit `u64` seed; identical seeds produce
//! identical bytes, which makes every experiment in the repository
//! reproducible.

pub mod freebase;
pub mod imdb;
pub mod ingest;
pub mod lyrics;
pub mod names;
pub mod querylog;
pub mod yago;

pub use freebase::{FreebaseConfig, FreebaseDataset};
pub use imdb::{ImdbConfig, ImdbDataset};
pub use ingest::{
    holdout_plan, sharded_holdout_plan, IngestConfig, IngestPlan, MixedOp, MixedWorkload,
    ShardedIngestPlan,
};
pub use lyrics::{LyricsConfig, LyricsDataset};
pub use names::{NamePool, ZipfSampler};
pub use querylog::{
    IntentBinding, IntentSpec, TemplateUsage, Workload, WorkloadConfig, WorkloadQuery,
};
pub use yago::{CategoryKind, YagoCategory, YagoConfig, YagoOntology};
