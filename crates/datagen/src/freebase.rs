//! Freebase-like large flat schema generator.
//!
//! Mirrors the structure FreeQ targets (§5.7.1): a very large, *flat* schema —
//! many domains, each with many type tables — over a shared universe of
//! topics (entities). Every type table references the global `topic` table,
//! and the same topic can appear in tables of several domains, which is the
//! shared-instance property both FreeQ and the YAGO+F matching build on.

use crate::names::NamePool;
use keybridge_relstore::{Database, RelResult, SchemaBuilder, TableId, TableKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Real-ish domain names; the long tail is generated.
const DOMAINS: &[&str] = &[
    "film",
    "music",
    "book",
    "tv",
    "sports",
    "location",
    "people",
    "business",
    "education",
    "government",
    "medicine",
    "biology",
    "chemistry",
    "astronomy",
    "aviation",
    "automotive",
    "architecture",
    "military",
    "religion",
    "theater",
    "opera",
    "comics",
    "games",
    "food",
    "wine",
    "fashion",
    "law",
    "finance",
    "boats",
    "trains",
    "computer",
    "internet",
    "language",
    "library",
    "museums",
    "physics",
    "geology",
    "meteorology",
    "royalty",
    "visual_art",
];

/// Type-name fragments combined with the domain name.
const TYPE_WORDS: &[&str] = &[
    "actor",
    "director",
    "producer",
    "writer",
    "editor",
    "award",
    "festival",
    "genre",
    "character",
    "series",
    "season",
    "episode",
    "studio",
    "company",
    "label",
    "track",
    "release",
    "artist",
    "group",
    "instrument",
    "venue",
    "event",
    "team",
    "player",
    "coach",
    "league",
    "position",
    "city",
    "region",
    "country",
    "landmark",
    "person",
    "title",
    "organization",
    "school",
    "program",
    "agency",
    "drug",
    "disease",
    "species",
    "element",
    "star",
    "aircraft",
    "model",
    "style",
    "building",
    "unit",
    "rank",
    "deity",
    "play",
    "issue",
    "publisher",
    "dish",
    "grape",
    "designer",
    "court",
    "case",
    "bank",
    "currency",
    "ship",
    "line",
    "station",
    "processor",
    "protocol",
    "site",
    "dialect",
    "collection",
    "exhibit",
    "particle",
    "mineral",
    "storm",
    "dynasty",
    "movement",
];

/// Sizing knobs: `domains × types_per_domain` type tables plus one `topic`
/// table.
///
/// `scale` multiplies the *instance* counts — `topics` and `rows_per_table`
/// — via [`crate::scale_rows`], keeping the schema breadth (domain and type
/// counts) and the Zipf membership skew fixed so type-table selectivity
/// against the topic universe stays realistic. `scale: 1.0` reproduces the
/// historical fixture bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct FreebaseConfig {
    pub seed: u64,
    pub domains: usize,
    pub types_per_domain: usize,
    /// Size of the shared entity universe.
    pub topics: usize,
    /// Rows per type table (each row links one topic into the type).
    pub rows_per_table: usize,
    pub scale: f64,
}

impl Default for FreebaseConfig {
    fn default() -> Self {
        FreebaseConfig {
            seed: 3,
            domains: 20,
            types_per_domain: 10,
            topics: 4000,
            rows_per_table: 25,
            scale: 1.0,
        }
    }
}

impl FreebaseConfig {
    /// A small instance for unit tests.
    pub fn tiny(seed: u64) -> Self {
        FreebaseConfig {
            seed,
            domains: 5,
            types_per_domain: 4,
            topics: 300,
            rows_per_table: 12,
            scale: 1.0,
        }
    }

    /// Paper scale: 100+ domains, 7000+ tables (§5.7.1). Generation stays
    /// in the hundreds of milliseconds; memory in the tens of MB.
    pub fn full(seed: u64) -> Self {
        FreebaseConfig {
            seed,
            domains: 100,
            types_per_domain: 70,
            topics: 60_000,
            rows_per_table: 30,
            scale: 1.0,
        }
    }
}

/// One generated domain: its name and its type tables.
#[derive(Debug, Clone)]
pub struct DomainInfo {
    pub name: String,
    pub tables: Vec<TableId>,
}

/// The generated database, the global `topic` table, and the domain layout.
#[derive(Debug, Clone)]
pub struct FreebaseDataset {
    pub db: Database,
    pub topic: TableId,
    pub domains: Vec<DomainInfo>,
}

impl FreebaseDataset {
    /// Generate a dataset.
    pub fn generate(cfg: FreebaseConfig) -> RelResult<Self> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_topics = crate::scale_rows(cfg.topics, cfg.scale);
        let n_rows_per_table = crate::scale_rows(cfg.rows_per_table, cfg.scale);
        let pool = NamePool::new();

        // Domain and table names first (schema building needs them all).
        let mut domain_names = Vec::with_capacity(cfg.domains);
        for i in 0..cfg.domains {
            match DOMAINS.get(i) {
                Some(d) => domain_names.push((*d).to_owned()),
                None => domain_names.push(format!("{}_{}", pool.tail_token(&mut rng), i)),
            }
        }
        let mut table_names: Vec<Vec<String>> = Vec::with_capacity(cfg.domains);
        for dname in &domain_names {
            let mut names = Vec::with_capacity(cfg.types_per_domain);
            for j in 0..cfg.types_per_domain {
                let tw = match TYPE_WORDS.get(j) {
                    Some(w) => (*w).to_owned(),
                    None => format!("{}{}", pool.tail_token(&mut rng), j),
                };
                names.push(format!("{dname}_{tw}"));
            }
            table_names.push(names);
        }

        let mut b = SchemaBuilder::new();
        b.table("topic", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        for names in &table_names {
            for n in names {
                b.table(n, TableKind::Entity)
                    .pk("id")
                    .text_attr("name")
                    .int_attr("topic_id");
            }
        }
        for names in &table_names {
            for n in names {
                b.foreign_key(n, "topic_id", "topic")?;
            }
        }
        let mut db = Database::new(b.finish()?);
        let topic = db.schema().table_id("topic").expect("declared above");

        // Topic universe: mixture of person names and titles.
        let mut topic_names = Vec::with_capacity(n_topics);
        for i in 0..n_topics {
            let name = if rng.gen_bool(0.5) {
                pool.person_name(&mut rng)
            } else {
                pool.title(&mut rng, 1, 3, 0.15)
            };
            db.insert(
                topic,
                vec![Value::Int(i as i64 + 1), Value::text(name.clone())],
            )?;
            topic_names.push(name);
        }

        // Type tables: each row links one topic. Topics are drawn with a
        // Zipf skew, so popular topics span many domains (Fig. 6.2 shape).
        let zipf = crate::names::ZipfSampler::new(n_topics, 0.7);
        let mut domains = Vec::with_capacity(cfg.domains);
        let mut next_row_id: i64 = 1;
        for (d, names) in table_names.iter().enumerate() {
            let mut tables = Vec::with_capacity(names.len());
            for n in names {
                let tid = db.schema().table_id(n).expect("declared above");
                tables.push(tid);
                let mut seen = std::collections::HashSet::new();
                for _ in 0..n_rows_per_table {
                    let t = zipf.sample(&mut rng);
                    if !seen.insert(t) {
                        continue; // a topic appears at most once per type
                    }
                    db.insert(
                        tid,
                        vec![
                            Value::Int(next_row_id),
                            Value::text(topic_names[t].clone()),
                            Value::Int(t as i64 + 1),
                        ],
                    )?;
                    next_row_id += 1;
                }
            }
            domains.push(DomainInfo {
                name: domain_names[d].clone(),
                tables,
            });
        }

        db.validate()?;
        Ok(FreebaseDataset { db, topic, domains })
    }

    /// Topic ids referenced by one type table (its instance set).
    pub fn topic_ids_of(&self, table: TableId) -> Vec<i64> {
        let col = self
            .db
            .schema()
            .table(table)
            .attr_id("topic_id")
            .expect("every type table has topic_id");
        self.db
            .table(table)
            .rows()
            .filter_map(|(_, r)| r[col.0 as usize].as_int())
            .collect()
    }

    /// Total number of type tables (excludes `topic`).
    pub fn type_table_count(&self) -> usize {
        self.domains.iter().map(|d| d.tables.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_flat_schema() {
        let d = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        assert_eq!(d.type_table_count(), 20);
        assert_eq!(d.db.schema().table_count(), 21);
        assert_eq!(d.db.schema().fk_count(), 20);
        assert_eq!(d.domains.len(), 5);
        d.db.validate().unwrap();
    }

    #[test]
    fn instances_shared_across_tables() {
        let d = FreebaseDataset::generate(FreebaseConfig::tiny(2)).unwrap();
        let mut appears: std::collections::HashMap<i64, usize> = Default::default();
        for dom in &d.domains {
            for &t in &dom.tables {
                for topic in d.topic_ids_of(t) {
                    *appears.entry(topic).or_default() += 1;
                }
            }
        }
        // The Zipf skew guarantees popular topics land in several tables.
        assert!(appears.values().any(|&c| c >= 3));
    }

    #[test]
    fn no_duplicate_topic_within_table() {
        let d = FreebaseDataset::generate(FreebaseConfig::tiny(3)).unwrap();
        for dom in &d.domains {
            for &t in &dom.tables {
                let ids = d.topic_ids_of(t);
                let set: std::collections::HashSet<_> = ids.iter().collect();
                assert_eq!(set.len(), ids.len());
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = FreebaseDataset::generate(FreebaseConfig::tiny(4)).unwrap();
        let b = FreebaseDataset::generate(FreebaseConfig::tiny(4)).unwrap();
        assert_eq!(a.db.total_rows(), b.db.total_rows());
        let ta = a.topic_ids_of(a.domains[0].tables[0]);
        let tb = b.topic_ids_of(b.domains[0].tables[0]);
        assert_eq!(ta, tb);
    }

    #[test]
    fn paper_scale_config_shape() {
        let cfg = FreebaseConfig::full(1);
        assert!(cfg.domains >= 100);
        assert!(cfg.domains * cfg.types_per_domain >= 7000);
    }
}
