//! Lyrics-like music database generator.
//!
//! Mirrors the 5-table Lyrics crawl of §3.8.1: `artist`, `album`, `song` plus
//! the junction tables `artist_album` and `album_song`. The dominant query
//! shape on this dataset is the long chain
//! `artist ⋈ artist_album ⋈ album ⋈ album_song ⋈ song`, which is exactly the
//! property (one template dominating the log) behind the (ATF, TLog) gains in
//! Fig. 3.5b and the SQAK Steiner-minimization failure discussed in §3.8.3.

use crate::names::NamePool;
use keybridge_relstore::{Database, RelResult, SchemaBuilder, TableId, TableKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing knobs.
///
/// `scale` multiplies every row count via [`crate::scale_rows`] while the
/// junction fan-out (collaboration rate, one `album_song` row per song)
/// stays fixed; `scale: 1.0` reproduces the historical fixture bit for bit.
/// Expected rows: `(artists + albums + songs)·s + 1.1·albums·s + songs·s`.
#[derive(Debug, Clone, Copy)]
pub struct LyricsConfig {
    pub seed: u64,
    pub artists: usize,
    pub albums: usize,
    pub songs: usize,
    pub scale: f64,
}

impl Default for LyricsConfig {
    fn default() -> Self {
        LyricsConfig {
            seed: 2,
            artists: 600,
            albums: 1200,
            songs: 6000,
            scale: 1.0,
        }
    }
}

impl LyricsConfig {
    /// A small instance for unit tests.
    pub fn tiny(seed: u64) -> Self {
        LyricsConfig {
            seed,
            artists: 30,
            albums: 60,
            songs: 200,
            scale: 1.0,
        }
    }
}

/// The generated database plus table handles.
#[derive(Debug, Clone)]
pub struct LyricsDataset {
    pub db: Database,
    pub artist: TableId,
    pub album: TableId,
    pub song: TableId,
    pub artist_album: TableId,
    pub album_song: TableId,
}

impl LyricsDataset {
    /// Generate a dataset.
    pub fn generate(cfg: LyricsConfig) -> RelResult<Self> {
        let mut b = SchemaBuilder::new();
        b.table("artist", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("album", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("song", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .text_attr("lyrics");
        b.table("artist_album", TableKind::Relation)
            .pk("id")
            .int_attr("artist_id")
            .int_attr("album_id");
        b.table("album_song", TableKind::Relation)
            .pk("id")
            .int_attr("album_id")
            .int_attr("song_id");
        b.foreign_key("artist_album", "artist_id", "artist")?;
        b.foreign_key("artist_album", "album_id", "album")?;
        b.foreign_key("album_song", "album_id", "album")?;
        b.foreign_key("album_song", "song_id", "song")?;
        let mut db = Database::new(b.finish()?);

        let artist = db.schema().table_id("artist").expect("declared above");
        let album = db.schema().table_id("album").expect("declared above");
        let song = db.schema().table_id("song").expect("declared above");
        let artist_album = db
            .schema()
            .table_id("artist_album")
            .expect("declared above");
        let album_song = db.schema().table_id("album_song").expect("declared above");

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pool = NamePool::new();
        let n_artists = crate::scale_rows(cfg.artists, cfg.scale);
        let n_albums = crate::scale_rows(cfg.albums, cfg.scale);
        let n_songs = crate::scale_rows(cfg.songs, cfg.scale);

        for i in 0..n_artists {
            // Half the artists are person names, half band-style word pairs.
            let name = if rng.gen_bool(0.5) {
                pool.person_name(&mut rng)
            } else {
                pool.title(&mut rng, 1, 2, 0.15)
            };
            db.insert(artist, vec![Value::Int(i as i64 + 1), Value::text(name)])?;
        }
        for i in 0..n_albums {
            let title = pool.title(&mut rng, 1, 3, 0.1);
            let year = rng.gen_range(1960..=2012);
            db.insert(
                album,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::text(title),
                    Value::Int(year),
                ],
            )?;
        }
        let mut aa_id: i64 = 1;
        for i in 0..n_albums {
            let artist_id = rng.gen_range(1..=n_artists) as i64;
            db.insert(
                artist_album,
                vec![
                    Value::Int(aa_id),
                    Value::Int(artist_id),
                    Value::Int(i as i64 + 1),
                ],
            )?;
            aa_id += 1;
            // 10% of albums are collaborations with a second artist.
            if rng.gen_bool(0.1) {
                let other = rng.gen_range(1..=n_artists) as i64;
                db.insert(
                    artist_album,
                    vec![
                        Value::Int(aa_id),
                        Value::Int(other),
                        Value::Int(i as i64 + 1),
                    ],
                )?;
                aa_id += 1;
            }
        }
        for i in 0..n_songs {
            let sid = i as i64 + 1;
            let title = pool.title(&mut rng, 1, 3, 0.1);
            let lyrics: Vec<String> = (0..rng.gen_range(4..=9))
                .map(|_| pool.word(&mut rng))
                .collect();
            db.insert(
                song,
                vec![
                    Value::Int(sid),
                    Value::text(title),
                    Value::text(lyrics.join(" ")),
                ],
            )?;
            let album_id = rng.gen_range(1..=n_albums) as i64;
            // One album_song row per song: its id coincides with `sid`.
            db.insert(
                album_song,
                vec![Value::Int(sid), Value::Int(album_id), Value::Int(sid)],
            )?;
        }

        db.validate()?;
        Ok(LyricsDataset {
            db,
            artist,
            album,
            song,
            artist_album,
            album_song,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_database() {
        let d = LyricsDataset::generate(LyricsConfig::tiny(3)).unwrap();
        assert_eq!(d.db.schema().table_count(), 5);
        assert_eq!(d.db.schema().fk_count(), 4);
        assert_eq!(d.db.table(d.artist).len(), 30);
        assert_eq!(d.db.table(d.song).len(), 200);
        assert_eq!(d.db.table(d.album_song).len(), 200);
        assert!(d.db.table(d.artist_album).len() >= 60);
        d.db.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = LyricsDataset::generate(LyricsConfig::tiny(11)).unwrap();
        let b = LyricsDataset::generate(LyricsConfig::tiny(11)).unwrap();
        let ta: Vec<String> =
            a.db.table(a.song)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        let tb: Vec<String> =
            b.db.table(b.song)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn every_song_reachable_from_some_artist() {
        // The chain artist -> album -> song must be navigable: every song's
        // album has at least one artist.
        let d = LyricsDataset::generate(LyricsConfig::tiny(5)).unwrap();
        let albums_with_artists: std::collections::HashSet<i64> =
            d.db.table(d.artist_album)
                .rows()
                .filter_map(|(_, r)| r[2].as_int())
                .collect();
        for (_, r) in d.db.table(d.album_song).rows() {
            let album_id = r[1].as_int().unwrap();
            assert!(albums_with_artists.contains(&album_id));
        }
    }
}
