//! Seeded mixed read/write workloads for the live-ingestion path.
//!
//! The update-equivalence suites and the `smoke --serve` ingest driver all
//! need the same thing: a database split into a **preload** (the cold-start
//! state a service boots from) and a stream of **insert batches** that grow
//! it back to the full fixture, interleaved with keyword queries. The split
//! is *schema-generic* — it works on any [`Database`], IMDB or Freebase
//! alike — and every batch is referentially safe by construction:
//!
//! 1. each row is held out with probability `holdout` (seeded), then the
//!    held-out set is **closed under children**: if a parent row is held
//!    out, every row referencing it is held out too, transitively, so the
//!    preload database is internally consistent;
//! 2. held-out rows are emitted in a **randomized topological order** of
//!    the row-level foreign-key dependency graph (parents before children),
//!    so every batch prefix — and therefore every published snapshot epoch —
//!    passes `Database::insert_batch`'s integrity validation.
//!
//! Replaying the preload plus batches `0..n` through *any* insert path
//! reproduces the same row ids, which is what lets the differential suite
//! compare a live-updated service byte-for-byte against a cold rebuild.

use keybridge_relstore::{assign_shards, Database, RowBatch, RowId, ShardAssignment, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Sizing knobs of the holdout split.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    pub seed: u64,
    /// Per-row probability of being held out for live insertion (before the
    /// child-closure pass, which only grows the set).
    pub holdout: f64,
    /// Number of insert batches the held-out rows are scheduled into.
    pub batches: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            seed: 17,
            holdout: 0.25,
            batches: 4,
        }
    }
}

/// A database split into a consistent preload plus FK-safe insert batches.
#[derive(Debug, Clone)]
pub struct IngestPlan {
    /// The cold-start database (full fixture minus the held-out rows).
    pub initial: Database,
    /// Insert batches in application order; every prefix is referentially
    /// consistent on top of `initial`.
    pub batches: Vec<RowBatch>,
}

impl IngestPlan {
    /// Total rows scheduled for live insertion.
    pub fn total_rows(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// Split `db` into a preload plus insert batches. See the module docs for
/// the closure + ordering guarantees. Deterministic per seed.
pub fn holdout_plan(db: &Database, cfg: IngestConfig) -> IngestPlan {
    let schema = db.schema();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Pass 1: independent per-row holdout draws, in (table, row) order so
    // the draw sequence is deterministic.
    let mut held: HashSet<(TableId, RowId)> = HashSet::new();
    let mut worklist: Vec<(TableId, RowId)> = Vec::new();
    for (tid, _) in schema.tables() {
        for (rid, _) in db.table(tid).rows() {
            if rng.gen_bool(cfg.holdout) && held.insert((tid, rid)) {
                worklist.push((tid, rid));
            }
        }
    }

    // Pass 2: close under children — a preloaded row must never reference a
    // held-out parent. `fk_referrers` gives the children of a parent row
    // directly off the database's own fk hash index.
    while let Some((tid, rid)) = worklist.pop() {
        let pk = db.pk_value(tid, rid);
        for (fk_id, fk) in schema.fks() {
            if fk.to.table != tid {
                continue;
            }
            for &child in db.fk_referrers(fk_id, pk) {
                if held.insert((fk.from.table, child)) {
                    worklist.push((fk.from.table, child));
                }
            }
        }
    }

    // Preload: everything not held out, in original order, so preload row
    // ids are a deterministic function of the split alone.
    let mut initial = Database::new(schema.clone());
    for (tid, _) in schema.tables() {
        for (rid, row) in db.table(tid).rows() {
            if !held.contains(&(tid, rid)) {
                initial
                    .insert(tid, row.to_vec())
                    .expect("rows of a valid database re-insert");
            }
        }
    }

    // Schedule: randomized Kahn topological order over the held-out rows'
    // dependency graph (held-out parents only; preloaded parents are
    // already present). Random ready-pick gives a different interleaving
    // per seed while keeping every prefix consistent.
    let held_rows: Vec<(TableId, RowId)> = {
        let mut v: Vec<(TableId, RowId)> = held.iter().copied().collect();
        v.sort();
        v
    };
    let index_of: HashMap<(TableId, RowId), usize> = held_rows
        .iter()
        .enumerate()
        .map(|(i, &key)| (key, i))
        .collect();
    let mut indegree = vec![0usize; held_rows.len()];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); held_rows.len()];
    for (i, &(tid, rid)) in held_rows.iter().enumerate() {
        let row = db.table(tid).row(rid);
        for (_, fk) in schema.fks() {
            if fk.from.table != tid {
                continue;
            }
            let Some(key) = row[fk.from.attr.0 as usize].as_int() else {
                continue;
            };
            let Some(parent) = db.table(fk.to.table).by_pk(key) else {
                continue;
            };
            if let Some(&p) = index_of.get(&(fk.to.table, parent)) {
                indegree[i] += 1;
                children[p].push(i);
            }
        }
    }
    let mut ready: Vec<usize> = (0..held_rows.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(held_rows.len());
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let i = ready.swap_remove(pick);
        order.push(i);
        for &c in &children[i] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    assert_eq!(
        order.len(),
        held_rows.len(),
        "row-level foreign-key dependencies must be acyclic"
    );

    // Chunk into near-equal batches (empty plan => zero batches).
    let n_batches = cfg.batches.max(1);
    let per = order.len().div_ceil(n_batches).max(1);
    let batches: Vec<RowBatch> = order
        .chunks(per)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&i| {
                    let (tid, rid) = held_rows[i];
                    (tid, db.table(tid).row(rid).to_vec())
                })
                .collect()
        })
        .collect();

    IngestPlan { initial, batches }
}

/// A holdout split plus the shard directory of the **full** fixture: the
/// placement every row — preloaded *and* held out — gets when the complete
/// database is partitioned into `shards` FK-closed shards. Booting a
/// sharded service from `plan.initial` with this assignment and replaying
/// `plan.batches` lands every row exactly where a cold partitioning of the
/// full fixture would put it, so the differential suites can compare the
/// live-updated sharded service against a cold full-corpus rebuild.
#[derive(Debug, Clone)]
pub struct ShardedIngestPlan {
    pub plan: IngestPlan,
    pub assignment: ShardAssignment,
}

/// [`holdout_plan`] plus a shard directory computed over the full `db`
/// *before* the holdout split. Deterministic per seed and shard count.
pub fn sharded_holdout_plan(db: &Database, cfg: IngestConfig, shards: usize) -> ShardedIngestPlan {
    ShardedIngestPlan {
        assignment: assign_shards(db, shards),
        plan: holdout_plan(db, cfg),
    }
}

/// One operation of a mixed read/write workload.
#[derive(Debug, Clone)]
pub enum MixedOp {
    /// A keyword query (bag of lowercase terms).
    Query(Vec<String>),
    /// An insert batch to feed `SearchService::ingest`.
    Insert(RowBatch),
}

/// A seeded mixed read/write workload: the cold-start database plus an
/// operation stream of keyword queries with insert batches spread through
/// it. Batches keep their schedule order (prefix consistency!); only their
/// positions among the queries are randomized.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    pub initial: Database,
    pub ops: Vec<MixedOp>,
}

impl MixedWorkload {
    /// Interleave `queries` with the plan's batches. Deterministic per seed.
    pub fn interleave(plan: IngestPlan, queries: &[Vec<String>], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Draw one slot (a query index at which the batch fires) per batch,
        // then walk the query stream emitting batches at their slots —
        // sorting keeps batch order stable regardless of the draws.
        let mut slots: Vec<usize> = plan
            .batches
            .iter()
            .map(|_| rng.gen_range(0..=queries.len()))
            .collect();
        slots.sort_unstable();
        let mut ops = Vec::with_capacity(queries.len() + plan.batches.len());
        let mut batches = plan.batches.into_iter();
        let mut slot_iter = slots.into_iter().peekable();
        for (qi, q) in queries.iter().enumerate() {
            while slot_iter.peek() == Some(&qi) {
                slot_iter.next();
                ops.push(MixedOp::Insert(batches.next().expect("one batch per slot")));
            }
            ops.push(MixedOp::Query(q.clone()));
        }
        for batch in batches {
            ops.push(MixedOp::Insert(batch));
        }
        MixedWorkload {
            initial: plan.initial,
            ops,
        }
    }

    /// Operations of each kind: `(queries, inserts)`.
    pub fn counts(&self) -> (usize, usize) {
        let q = self
            .ops
            .iter()
            .filter(|op| matches!(op, MixedOp::Query(_)))
            .count();
        (q, self.ops.len() - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{ImdbConfig, ImdbDataset};
    use crate::querylog::{Workload, WorkloadConfig};

    fn full_db() -> Database {
        ImdbDataset::generate(ImdbConfig::tiny(11)).unwrap().db
    }

    #[test]
    fn preload_is_consistent_and_batches_restore_everything() {
        let db = full_db();
        let plan = holdout_plan(&db, IngestConfig::default());
        plan.initial.validate().unwrap();
        assert!(plan.total_rows() > 0, "nothing held out");
        assert_eq!(
            plan.initial.total_rows() + plan.total_rows(),
            db.total_rows()
        );

        // Every batch prefix passes full integrity validation.
        let mut grown = plan.initial.clone();
        for batch in &plan.batches {
            grown.insert_batch(batch).unwrap();
            grown.validate().unwrap();
        }
        // The grown database holds exactly the original rows (as multisets
        // per table — row ids may differ from the original).
        for (tid, _) in db.schema().tables() {
            let mut a: Vec<Vec<String>> = db
                .table(tid)
                .rows()
                .map(|(_, r)| r.iter().map(|v| v.to_string()).collect())
                .collect();
            let mut b: Vec<Vec<String>> = grown
                .table(tid)
                .rows()
                .map(|(_, r)| r.iter().map(|v| v.to_string()).collect())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "table {tid:?} content diverged");
        }
    }

    #[test]
    fn plan_is_deterministic_per_seed_and_varies_across_seeds() {
        let db = full_db();
        let render = |plan: &IngestPlan| -> Vec<Vec<String>> {
            plan.batches
                .iter()
                .map(|b| {
                    b.iter()
                        .map(|(t, row)| format!("{}:{:?}", t.0, row))
                        .collect()
                })
                .collect()
        };
        let cfg = IngestConfig {
            seed: 3,
            ..Default::default()
        };
        let a = holdout_plan(&db, cfg);
        let b = holdout_plan(&db, cfg);
        assert_eq!(render(&a), render(&b));
        let c = holdout_plan(
            &db,
            IngestConfig {
                seed: 4,
                ..Default::default()
            },
        );
        assert_ne!(render(&a), render(&c), "different seeds, same schedule");
    }

    #[test]
    fn mixed_workload_interleaves_and_keeps_batch_order() {
        let data = ImdbDataset::generate(ImdbConfig::tiny(11)).unwrap();
        let queries: Vec<Vec<String>> = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 5,
                n_queries: 12,
                mc_fraction: 0.5,
            },
        )
        .queries
        .iter()
        .map(|q| q.keywords.clone())
        .collect();
        let plan = holdout_plan(&data.db, IngestConfig::default());
        let expected: Vec<usize> = plan.batches.iter().map(Vec::len).collect();
        let w = MixedWorkload::interleave(plan, &queries, 9);
        let (q, ins) = w.counts();
        assert_eq!(q, 12);
        assert_eq!(ins, expected.len());
        // Batch order within the stream matches the schedule order.
        let seen: Vec<usize> = w
            .ops
            .iter()
            .filter_map(|op| match op {
                MixedOp::Insert(b) => Some(b.len()),
                MixedOp::Query(_) => None,
            })
            .collect();
        assert_eq!(seen, expected);
        // And the full stream still applies cleanly in emitted order.
        let mut db = w.initial.clone();
        for op in &w.ops {
            if let MixedOp::Insert(b) = op {
                db.insert_batch(b).unwrap();
            }
        }
        db.validate().unwrap();
    }
}
