//! IMDB-like movie database generator.
//!
//! Mirrors the 7-table crawl used in §3.8.1: entity tables `actor`,
//! `director`, `movie`, `company`, `genre` and relationship tables `acts`
//! (with a `role` text attribute) and `directs`. Names and titles come from
//! skewed pools that deliberately overlap (surnames appear in titles and
//! roles), reproducing the interpretation ambiguity the paper's keyword
//! queries exercise.

use crate::names::NamePool;
use keybridge_relstore::{Database, RelResult, SchemaBuilder, TableId, TableKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing knobs for the generator. Row counts are per table; `avg_cast` is
/// the mean number of actors per movie.
///
/// `scale` multiplies every row *count* via [`crate::scale_rows`] while
/// leaving the per-movie fan-out (`avg_cast`, one `directs` row) untouched,
/// so foreign-key selectivity stays realistic as the corpus grows. Expected
/// rows: `18 + (companies + actors + directors)·s + movies·s·(avg_cast + 2)`.
/// `scale: 1.0` reproduces the historical fixture bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct ImdbConfig {
    pub seed: u64,
    pub actors: usize,
    pub directors: usize,
    pub movies: usize,
    pub companies: usize,
    pub avg_cast: usize,
    pub scale: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            seed: 1,
            actors: 1500,
            directors: 400,
            movies: 2000,
            companies: 150,
            avg_cast: 3,
            scale: 1.0,
        }
    }
}

impl ImdbConfig {
    /// A small instance for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ImdbConfig {
            seed,
            actors: 60,
            directors: 20,
            movies: 80,
            companies: 10,
            avg_cast: 2,
            scale: 1.0,
        }
    }
}

const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "horror",
    "romance",
    "action",
    "adventure",
    "fantasy",
    "science fiction",
    "documentary",
    "animation",
    "crime",
    "mystery",
    "western",
    "war",
    "musical",
    "biography",
    "history",
];

/// The generated database plus convenient table handles.
#[derive(Debug, Clone)]
pub struct ImdbDataset {
    pub db: Database,
    pub actor: TableId,
    pub director: TableId,
    pub movie: TableId,
    pub company: TableId,
    pub genre: TableId,
    pub acts: TableId,
    pub directs: TableId,
}

impl ImdbDataset {
    /// Generate a dataset.
    pub fn generate(cfg: ImdbConfig) -> RelResult<Self> {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("director", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("company", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("genre", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year")
            .int_attr("company_id")
            .int_attr("genre_id");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id")
            .text_attr("role");
        b.table("directs", TableKind::Relation)
            .pk("id")
            .int_attr("director_id")
            .int_attr("movie_id");
        b.foreign_key("movie", "company_id", "company")?;
        b.foreign_key("movie", "genre_id", "genre")?;
        b.foreign_key("acts", "actor_id", "actor")?;
        b.foreign_key("acts", "movie_id", "movie")?;
        b.foreign_key("directs", "director_id", "director")?;
        b.foreign_key("directs", "movie_id", "movie")?;
        let schema = b.finish()?;
        let mut db = Database::new(schema);

        let actor = db.schema().table_id("actor").expect("declared above");
        let director = db.schema().table_id("director").expect("declared above");
        let company = db.schema().table_id("company").expect("declared above");
        let genre = db.schema().table_id("genre").expect("declared above");
        let movie = db.schema().table_id("movie").expect("declared above");
        let acts = db.schema().table_id("acts").expect("declared above");
        let directs = db.schema().table_id("directs").expect("declared above");

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pool = NamePool::new();
        let n_companies = crate::scale_rows(cfg.companies, cfg.scale);
        let n_actors = crate::scale_rows(cfg.actors, cfg.scale);
        let n_directors = crate::scale_rows(cfg.directors, cfg.scale);
        let n_movies = crate::scale_rows(cfg.movies, cfg.scale);

        for (i, g) in GENRES.iter().enumerate() {
            db.insert(genre, vec![Value::Int(i as i64 + 1), Value::text(*g)])?;
        }
        for i in 0..n_companies {
            let name = format!("{} pictures", pool.word(&mut rng));
            db.insert(company, vec![Value::Int(i as i64 + 1), Value::text(name)])?;
        }
        for i in 0..n_actors {
            db.insert(
                actor,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::text(pool.person_name(&mut rng)),
                ],
            )?;
        }
        for i in 0..n_directors {
            db.insert(
                director,
                vec![
                    Value::Int(i as i64 + 1),
                    Value::text(pool.person_name(&mut rng)),
                ],
            )?;
        }
        let mut acts_id: i64 = 1;
        for i in 0..n_movies {
            let mid = i as i64 + 1;
            // ~20% of titles embed a surname: the title/person ambiguity.
            let title = pool.title(&mut rng, 1, 3, 0.2);
            let year = rng.gen_range(1950..=2012);
            let cid = rng.gen_range(1..=n_companies.max(1)) as i64;
            let gid = rng.gen_range(1..=GENRES.len()) as i64;
            db.insert(
                movie,
                vec![
                    Value::Int(mid),
                    Value::text(title),
                    Value::Int(year),
                    Value::Int(cid),
                    Value::Int(gid),
                ],
            )?;
            let cast = rng.gen_range(1..=cfg.avg_cast * 2 - 1);
            for _ in 0..cast {
                let aid = rng.gen_range(1..=n_actors) as i64;
                let role = pool.person_name(&mut rng);
                db.insert(
                    acts,
                    vec![
                        Value::Int(acts_id),
                        Value::Int(aid),
                        Value::Int(mid),
                        Value::text(role),
                    ],
                )?;
                acts_id += 1;
            }
            let did = rng.gen_range(1..=n_directors) as i64;
            // One directs row per movie: its id coincides with `mid`.
            db.insert(
                directs,
                vec![Value::Int(mid), Value::Int(did), Value::Int(mid)],
            )?;
        }

        db.validate()?;
        Ok(ImdbDataset {
            db,
            actor,
            director,
            movie,
            company,
            genre,
            acts,
            directs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_database() {
        let d = ImdbDataset::generate(ImdbConfig::tiny(7)).unwrap();
        assert_eq!(d.db.schema().table_count(), 7);
        assert_eq!(d.db.schema().fk_count(), 6);
        assert_eq!(d.db.table(d.actor).len(), 60);
        assert_eq!(d.db.table(d.movie).len(), 80);
        assert_eq!(d.db.table(d.directs).len(), 80);
        assert!(d.db.table(d.acts).len() >= 80);
        d.db.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = ImdbDataset::generate(ImdbConfig::tiny(9)).unwrap();
        let b = ImdbDataset::generate(ImdbConfig::tiny(9)).unwrap();
        let row_a: Vec<String> =
            a.db.table(a.actor)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        let row_b: Vec<String> =
            b.db.table(b.actor)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        assert_eq!(row_a, row_b);
    }

    #[test]
    fn scale_ten_golden_counts() {
        // The CI-gated golden counts for the `--scale` tier: exact entity
        // table sizes at scale 10, derived from the documented formulas.
        let cfg = ImdbConfig {
            scale: 10.0,
            ..ImdbConfig::tiny(7)
        };
        let d = ImdbDataset::generate(cfg).unwrap();
        assert_eq!(d.db.table(d.actor).len(), 600);
        assert_eq!(d.db.table(d.director).len(), 200);
        assert_eq!(d.db.table(d.movie).len(), 800);
        assert_eq!(d.db.table(d.company).len(), 100);
        assert_eq!(d.db.table(d.genre).len(), 18);
        assert_eq!(d.db.table(d.directs).len(), 800);
        assert!(d.db.table(d.acts).len() >= 800);
        d.db.validate().unwrap();
    }

    #[test]
    fn scale_one_reproduces_unscaled_fixture() {
        // `scale: 1.0` must be bit-identical to the historical generator:
        // same rng consumption, same rows, same snapshot bytes.
        let a = ImdbDataset::generate(ImdbConfig::tiny(9)).unwrap();
        let b = ImdbDataset::generate(ImdbConfig {
            scale: 1.0,
            ..ImdbConfig::tiny(9)
        })
        .unwrap();
        assert_eq!(
            a.db.snapshot_bytes().unwrap(),
            b.db.snapshot_bytes().unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let b = ImdbDataset::generate(ImdbConfig::tiny(2)).unwrap();
        let names_a: Vec<String> =
            a.db.table(a.actor)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        let names_b: Vec<String> =
            b.db.table(b.actor)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn ambiguity_exists() {
        // Some surname token should appear in both actor names and titles.
        let d = ImdbDataset::generate(ImdbConfig::default()).unwrap();
        let titles: String =
            d.db.table(d.movie)
                .rows()
                .map(|(_, r)| r[1].to_string())
                .collect::<Vec<_>>()
                .join(" ");
        let mut found = false;
        for (_, r) in d.db.table(d.actor).rows().take(200) {
            let name = r[1].to_string();
            if let Some(last) = name.split(' ').nth(1) {
                if titles.split(' ').any(|w| w == last) {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "expected surname/title vocabulary overlap");
    }
}
