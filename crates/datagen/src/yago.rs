//! YAGO-like ontology generator.
//!
//! Mirrors the structure Chapter 6 analyzes: an upper taxonomy of WordNet-like
//! concepts and a broad fringe of Wikipedia-like leaf categories carrying
//! instances. Leaf categories are classified into the four standard kinds the
//! thesis's analysis distinguishes (conceptual / administrative / relational /
//! thematic); only *conceptual* categories describe entity classes and are
//! therefore matchable against database tables.
//!
//! Instances come from the shared topic universe of a
//! [`crate::FreebaseDataset`], and every conceptual category is generated
//! *from* one Freebase table (with configurable coverage and noise). That
//! hidden assignment is kept as the **gold mapping**, which the YAGO+F
//! matching quality experiment (Fig. 6.4) scores against.

use crate::freebase::FreebaseDataset;
use crate::names::NamePool;
use keybridge_relstore::TableId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four kinds of Wikipedia-style categories distinguished in Chapter 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryKind {
    /// WordNet-like internal taxonomy node ("entity", "artifact"…).
    WordNet,
    /// Describes a class of entities ("American actors") — matchable.
    Conceptual,
    /// Wiki bookkeeping ("Articles needing cleanup") — never matchable.
    Administrative,
    /// Relates entities to a value ("1994 births") — not a class.
    Relational,
    /// Groups a topic area ("Jazz") — heterogeneous membership.
    Thematic,
}

impl CategoryKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            CategoryKind::WordNet => "wordnet",
            CategoryKind::Conceptual => "conceptual",
            CategoryKind::Administrative => "administrative",
            CategoryKind::Relational => "relational",
            CategoryKind::Thematic => "thematic",
        }
    }
}

/// One category of the ontology.
#[derive(Debug, Clone)]
pub struct YagoCategory {
    pub name: String,
    pub kind: CategoryKind,
    /// Parent category index; `None` only for the root.
    pub parent: Option<usize>,
    /// Depth below the root (root = 0).
    pub depth: u32,
    /// Topic ids (shared with the Freebase-like dataset).
    pub instances: Vec<i64>,
}

/// Sizing knobs for the ontology generator.
///
/// `scale` multiplies the leaf-category count via [`crate::scale_rows`] —
/// instance populations ride on the paired [`FreebaseDataset`]'s own scale,
/// since categories draw from its topic universe. `scale: 1.0` reproduces
/// the historical fixture bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct YagoConfig {
    pub seed: u64,
    /// Depth of the WordNet-like upper taxonomy.
    pub wordnet_depth: u32,
    /// Branching factor of the upper taxonomy.
    pub branching: usize,
    /// Number of leaf (Wikipedia-like) categories.
    pub leaf_categories: usize,
    /// Fraction of leaf categories that are conceptual.
    pub conceptual_fraction: f64,
    /// Fraction of a gold table's instances a conceptual category covers.
    pub coverage: f64,
    /// Fraction of a conceptual category's instances that are noise
    /// (drawn from other tables).
    pub noise: f64,
    pub scale: f64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            seed: 4,
            wordnet_depth: 4,
            branching: 4,
            leaf_categories: 800,
            conceptual_fraction: 0.45,
            coverage: 0.65,
            noise: 0.08,
            scale: 1.0,
        }
    }
}

impl YagoConfig {
    /// A small instance for unit tests.
    pub fn tiny(seed: u64) -> Self {
        YagoConfig {
            seed,
            wordnet_depth: 3,
            branching: 3,
            leaf_categories: 40,
            ..Self::default()
        }
    }
}

/// The generated ontology plus the hidden gold mapping.
#[derive(Debug, Clone)]
pub struct YagoOntology {
    pub categories: Vec<YagoCategory>,
    pub root: usize,
    /// Generator ground truth: conceptual category index → the table whose
    /// instances seeded it. Used only to *score* matching, never to match.
    pub gold: Vec<(usize, TableId)>,
}

impl YagoOntology {
    /// Generate an ontology whose instances live in `fb`'s topic universe.
    pub fn generate(cfg: YagoConfig, fb: &FreebaseDataset) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pool = NamePool::new();
        let n_leaves = crate::scale_rows(cfg.leaf_categories, cfg.scale);

        let mut categories = vec![YagoCategory {
            name: "entity".to_owned(),
            kind: CategoryKind::WordNet,
            parent: None,
            depth: 0,
            instances: Vec::new(),
        }];
        let root = 0;

        // Upper taxonomy: a balanced-ish tree of WordNet nodes.
        let mut frontier = vec![root];
        for depth in 1..=cfg.wordnet_depth {
            let mut next = Vec::new();
            for &p in &frontier {
                for _ in 0..cfg.branching {
                    let idx = categories.len();
                    categories.push(YagoCategory {
                        name: format!("wordnet_{}", pool.word(&mut rng)),
                        kind: CategoryKind::WordNet,
                        parent: Some(p),
                        depth,
                        instances: Vec::new(),
                    });
                    next.push(idx);
                }
            }
            frontier = next;
        }
        let wordnet_leaves = frontier;

        // All type tables of the database, as gold candidates.
        let tables: Vec<TableId> = fb
            .domains
            .iter()
            .flat_map(|d| d.tables.iter().copied())
            .collect();
        let all_topics = fb.db.table(fb.topic).len() as i64;

        let mut gold = Vec::new();
        for li in 0..n_leaves {
            let parent = wordnet_leaves[rng.gen_range(0..wordnet_leaves.len())];
            let depth = cfg.wordnet_depth + 1;
            let idx = categories.len();
            let roll: f64 = rng.gen();
            let (kind, name, instances) = if roll < cfg.conceptual_fraction && !tables.is_empty() {
                // Conceptual: seeded from one table's instance set. The
                // table becomes this category's gold mapping.
                let table = tables[rng.gen_range(0..tables.len())];
                gold.push((idx, table));
                let base = fb.topic_ids_of(table);
                let mut inst: Vec<i64> = base
                    .into_iter()
                    .filter(|_| rng.gen_bool(cfg.coverage))
                    .collect();
                let n_noise = ((inst.len() as f64) * cfg.noise).ceil() as usize;
                for _ in 0..n_noise {
                    inst.push(rng.gen_range(1..=all_topics.max(1)));
                }
                let table_name = &fb.db.schema().table(table).name;
                (
                    CategoryKind::Conceptual,
                    format!("wikicategory_{}_{}", pool.word(&mut rng), table_name),
                    inst,
                )
            } else if roll < cfg.conceptual_fraction + 0.20 {
                // Administrative: random junk membership.
                let n = rng.gen_range(0..25);
                let inst = (0..n)
                    .map(|_| rng.gen_range(1..=all_topics.max(1)))
                    .collect();
                (
                    CategoryKind::Administrative,
                    format!("wikicategory_articles_{}_{li}", pool.word(&mut rng)),
                    inst,
                )
            } else if roll < cfg.conceptual_fraction + 0.45 {
                // Relational: year-style grouping over random topics.
                let year = rng.gen_range(1900..=2012);
                let n = rng.gen_range(5..40);
                let inst = (0..n)
                    .map(|_| rng.gen_range(1..=all_topics.max(1)))
                    .collect();
                (
                    CategoryKind::Relational,
                    format!("wikicategory_{year}_{}", pool.word(&mut rng)),
                    inst,
                )
            } else {
                // Thematic: a broad mixed bag.
                let n = rng.gen_range(10..80);
                let inst = (0..n)
                    .map(|_| rng.gen_range(1..=all_topics.max(1)))
                    .collect();
                (
                    CategoryKind::Thematic,
                    format!("wikicategory_{}", pool.word(&mut rng)),
                    inst,
                )
            };
            let mut inst = instances;
            inst.sort_unstable();
            inst.dedup();
            categories.push(YagoCategory {
                name,
                kind,
                parent: Some(parent),
                depth,
                instances: inst,
            });
        }

        YagoOntology {
            categories,
            root,
            gold,
        }
    }

    /// Number of categories of a given kind.
    pub fn count_kind(&self, kind: CategoryKind) -> usize {
        self.categories.iter().filter(|c| c.kind == kind).count()
    }

    /// Total number of distinct instances across all categories.
    pub fn distinct_instances(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for c in &self.categories {
            set.extend(c.instances.iter().copied());
        }
        set.len()
    }

    /// Iterate over leaf (non-WordNet) categories with their indexes.
    pub fn leaves(&self) -> impl Iterator<Item = (usize, &YagoCategory)> {
        self.categories
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind != CategoryKind::WordNet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freebase::FreebaseConfig;

    fn setup() -> (FreebaseDataset, YagoOntology) {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(2), &fb);
        (fb, y)
    }

    #[test]
    fn tree_structure_valid() {
        let (_, y) = setup();
        assert!(y.categories[y.root].parent.is_none());
        for (i, c) in y.categories.iter().enumerate() {
            if i != y.root {
                let p = c.parent.expect("non-root has parent");
                assert!(p < i, "parents precede children");
                assert_eq!(y.categories[p].depth + 1, c.depth);
            }
        }
    }

    #[test]
    fn kinds_distributed() {
        let (_, y) = setup();
        assert!(y.count_kind(CategoryKind::WordNet) > 0);
        assert!(y.count_kind(CategoryKind::Conceptual) > 0);
        let leaves = y.leaves().count();
        assert_eq!(leaves, 40);
    }

    #[test]
    fn gold_mapping_only_conceptual() {
        let (_, y) = setup();
        for &(idx, _) in &y.gold {
            assert_eq!(y.categories[idx].kind, CategoryKind::Conceptual);
        }
        assert_eq!(y.gold.len(), y.count_kind(CategoryKind::Conceptual));
    }

    #[test]
    fn conceptual_categories_overlap_their_gold_table() {
        let (fb, y) = setup();
        for &(idx, table) in &y.gold {
            let cat: std::collections::HashSet<i64> =
                y.categories[idx].instances.iter().copied().collect();
            let tab = fb.topic_ids_of(table);
            if tab.is_empty() {
                continue;
            }
            let overlap = tab.iter().filter(|t| cat.contains(t)).count();
            // Coverage 0.65 in expectation; demand at least some overlap.
            assert!(
                overlap * 3 >= tab.len(),
                "category {idx} barely overlaps its gold table"
            );
        }
    }

    #[test]
    fn instances_sorted_dedup() {
        let (_, y) = setup();
        for c in &y.categories {
            let mut sorted = c.instances.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, c.instances);
        }
    }

    #[test]
    fn deterministic() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let a = YagoOntology::generate(YagoConfig::tiny(7), &fb);
        let b = YagoOntology::generate(YagoConfig::tiny(7), &fb);
        assert_eq!(a.categories.len(), b.categories.len());
        assert_eq!(a.gold.len(), b.gold.len());
        assert_eq!(
            a.categories.last().unwrap().instances,
            b.categories.last().unwrap().instances
        );
    }
}
