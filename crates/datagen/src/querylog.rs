//! Keyword-query workload generator with ground-truth intents.
//!
//! The paper extracts keyword queries from MSN/AOL web-search logs and
//! manually reconstructs the intended structured query for each (§3.8.1,
//! §4.6.1). We invert the process: sample an *intended* structured query from
//! the generated database (choosing its shape from a weighted pattern list,
//! so template usage is skewed the way real logs are), then render it to
//! keywords by drawing tokens from the bound attribute values.
//!
//! The intent is recorded schema-level (table/attribute *names*), so
//! downstream crates can check whether a candidate query interpretation
//! matches the intent without a dependency cycle.

use crate::imdb::ImdbDataset;
use crate::lyrics::LyricsDataset;
use keybridge_index::Tokenizer;
use keybridge_relstore::{Database, RowId, TableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One keyword bag bound to one attribute in the intended interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentBinding {
    /// The keywords the user will type for this predicate (lowercase terms).
    pub keywords: Vec<String>,
    /// Table name holding the bound attribute.
    pub table: String,
    /// Attribute name the keywords select on.
    pub attr: String,
}

/// The intended structured query behind a keyword query, described at the
/// schema level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentSpec {
    /// All keyword bindings.
    pub bindings: Vec<IntentBinding>,
    /// The full multiset of tables in the intended join tree (including free
    /// connector tables), sorted; this identifies the intended template.
    pub tables: Vec<String>,
}

impl IntentSpec {
    /// All keywords of the query, in binding order.
    pub fn keywords(&self) -> Vec<String> {
        self.bindings
            .iter()
            .flat_map(|b| b.keywords.iter().cloned())
            .collect()
    }
}

/// One generated keyword query.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub id: usize,
    /// The keyword query as typed (bag of lowercase terms).
    pub keywords: Vec<String>,
    /// Ground truth.
    pub intent: IntentSpec,
    /// Whether the query references more than one entity concept
    /// (the sc/mc split of §4.6.1).
    pub multi_concept: bool,
}

/// Aggregated template usage: how often each table multiset was intended.
/// Stands in for the structural patterns mined from a query log (§3.5.2),
/// and feeds the `(ATF, TLog)` prior of Fig. 3.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateUsage {
    /// Sorted table-name multiset identifying the template.
    pub tables: Vec<String>,
    pub count: usize,
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    pub queries: Vec<WorkloadQuery>,
    pub template_usage: Vec<TemplateUsage>,
}

/// Workload sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    pub seed: u64,
    pub n_queries: usize,
    /// Fraction of multi-concept queries (the rest are single-concept).
    pub mc_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 5,
            n_queries: 100,
            mc_fraction: 0.5,
        }
    }
}

/// Internal: one intent pattern = a weighted recipe for sampling an intent.
struct Pattern {
    weight: u32,
    multi_concept: bool,
    /// Tables of the join tree, sorted later.
    tables: Vec<&'static str>,
    /// `(table, attr, max_tokens)` of the attributes to bind keywords to.
    binds: Vec<(&'static str, &'static str, usize)>,
    /// Sampler: picks connected rows and returns per-bind source strings.
    kind: PatternKind,
}

enum PatternKind {
    /// Bind from a single random row of `binds[0].table`.
    SingleRow,
    /// IMDB: actor ⋈ acts ⋈ movie (binds: actor.name, movie.title).
    ActorMovie,
    /// IMDB: director ⋈ directs ⋈ movie.
    DirectorMovie,
    /// IMDB: movie ⋈ company.
    MovieCompany,
    /// IMDB: two actors of one movie.
    TwoActors,
    /// IMDB: actor ⋈ acts (role keywords + actor name).
    ActorRole,
    /// Lyrics: artist ⋈ artist_album ⋈ album ⋈ album_song ⋈ song.
    ArtistSong,
    /// Lyrics: artist ⋈ artist_album ⋈ album.
    ArtistAlbum,
}

fn cell_text(db: &Database, table: TableId, row: RowId, attr: &str) -> String {
    let aid = db.schema().table(table).attr_id(attr).expect("known attr");
    db.table(table).row(row)[aid.0 as usize]
        .as_text()
        .unwrap_or("")
        .to_owned()
}

fn cell_int(db: &Database, table: TableId, row: RowId, attr: &str) -> i64 {
    let aid = db.schema().table(table).attr_id(attr).expect("known attr");
    db.table(table).row(row)[aid.0 as usize]
        .as_int()
        .expect("int attr")
}

fn random_row(db: &Database, table: TableId, rng: &mut StdRng) -> RowId {
    RowId(rng.gen_range(0..db.table(table).len() as u32))
}

/// Draw up to `max` distinct tokens from `text`; prefers the *last* tokens
/// (surnames carry more signal than first names, mirroring real queries).
fn draw_tokens(tok: &Tokenizer, text: &str, max: usize, rng: &mut StdRng) -> Vec<String> {
    let mut tokens = tok.tokenize_unique(text);
    if tokens.is_empty() {
        return tokens;
    }
    let n = rng.gen_range(1..=max.min(tokens.len()));
    // Keep the last n tokens with probability 0.6, otherwise the first n.
    if rng.gen_bool(0.6) {
        tokens.drain(..tokens.len() - n);
    } else {
        tokens.truncate(n);
    }
    tokens
}

impl Workload {
    /// Generate a workload against an IMDB-like dataset.
    pub fn imdb(data: &ImdbDataset, cfg: WorkloadConfig) -> Self {
        let patterns = vec![
            Pattern {
                weight: 30,
                multi_concept: false,
                tables: vec!["movie"],
                binds: vec![("movie", "title", 2)],
                kind: PatternKind::SingleRow,
            },
            Pattern {
                weight: 25,
                multi_concept: false,
                tables: vec!["actor"],
                binds: vec![("actor", "name", 2)],
                kind: PatternKind::SingleRow,
            },
            Pattern {
                weight: 20,
                multi_concept: true,
                tables: vec!["actor", "acts", "movie"],
                binds: vec![("actor", "name", 2), ("movie", "title", 2)],
                kind: PatternKind::ActorMovie,
            },
            Pattern {
                weight: 10,
                multi_concept: true,
                tables: vec!["director", "directs", "movie"],
                binds: vec![("director", "name", 2), ("movie", "title", 2)],
                kind: PatternKind::DirectorMovie,
            },
            Pattern {
                weight: 6,
                multi_concept: true,
                tables: vec!["movie", "company"],
                binds: vec![("movie", "title", 2), ("company", "name", 1)],
                kind: PatternKind::MovieCompany,
            },
            Pattern {
                weight: 5,
                multi_concept: true,
                tables: vec!["actor", "acts", "movie", "acts", "actor"],
                binds: vec![("actor", "name", 1), ("actor", "name", 1)],
                kind: PatternKind::TwoActors,
            },
            Pattern {
                weight: 4,
                multi_concept: true,
                tables: vec!["actor", "acts"],
                binds: vec![("actor", "name", 1), ("acts", "role", 1)],
                kind: PatternKind::ActorRole,
            },
        ];
        Self::generate(&data.db, &patterns, cfg, |db, p, rng| {
            sample_imdb(data, db, p, rng)
        })
    }

    /// Generate a workload against a Lyrics-like dataset.
    pub fn lyrics(data: &LyricsDataset, cfg: WorkloadConfig) -> Self {
        let patterns = vec![
            Pattern {
                weight: 22,
                multi_concept: false,
                tables: vec!["song"],
                binds: vec![("song", "title", 2)],
                kind: PatternKind::SingleRow,
            },
            Pattern {
                weight: 12,
                multi_concept: false,
                tables: vec!["artist"],
                binds: vec![("artist", "name", 2)],
                kind: PatternKind::SingleRow,
            },
            // The dominant chain template of §3.8.2 (log frequency ≈ 0.85
            // among multi-concept usage).
            Pattern {
                weight: 55,
                multi_concept: true,
                tables: vec!["artist", "artist_album", "album", "album_song", "song"],
                binds: vec![("artist", "name", 2), ("song", "title", 2)],
                kind: PatternKind::ArtistSong,
            },
            Pattern {
                weight: 8,
                multi_concept: true,
                tables: vec!["artist", "artist_album", "album"],
                binds: vec![("artist", "name", 2), ("album", "title", 2)],
                kind: PatternKind::ArtistAlbum,
            },
            Pattern {
                weight: 3,
                multi_concept: false,
                tables: vec!["album"],
                binds: vec![("album", "title", 2)],
                kind: PatternKind::SingleRow,
            },
        ];
        Self::generate(&data.db, &patterns, cfg, |db, p, rng| {
            sample_lyrics(data, db, p, rng)
        })
    }

    fn generate(
        db: &Database,
        patterns: &[Pattern],
        cfg: WorkloadConfig,
        sample: impl Fn(&Database, &Pattern, &mut StdRng) -> Option<Vec<String>>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tok = Tokenizer::new();
        let total_sc: u32 = patterns
            .iter()
            .filter(|p| !p.multi_concept)
            .map(|p| p.weight)
            .sum();
        let total_mc: u32 = patterns
            .iter()
            .filter(|p| p.multi_concept)
            .map(|p| p.weight)
            .sum();

        let mut queries = Vec::with_capacity(cfg.n_queries);
        let mut usage: HashMap<Vec<String>, usize> = HashMap::new();
        let mut id = 0;
        let mut attempts = 0;
        while queries.len() < cfg.n_queries && attempts < cfg.n_queries * 50 {
            attempts += 1;
            let want_mc = rng.gen_bool(cfg.mc_fraction);
            let total = if want_mc { total_mc } else { total_sc };
            if total == 0 {
                break;
            }
            let mut pick = rng.gen_range(0..total);
            let pat = patterns
                .iter()
                .filter(|p| p.multi_concept == want_mc)
                .find(|p| {
                    if pick < p.weight {
                        true
                    } else {
                        pick -= p.weight;
                        false
                    }
                })
                .expect("weights cover range");

            let Some(sources) = sample(db, pat, &mut rng) else {
                continue;
            };
            debug_assert_eq!(sources.len(), pat.binds.len());
            let mut bindings = Vec::with_capacity(pat.binds.len());
            let mut ok = true;
            for (src, (table, attr, max)) in sources.iter().zip(&pat.binds) {
                let kws = draw_tokens(&tok, src, *max, &mut rng);
                if kws.is_empty() {
                    ok = false;
                    break;
                }
                bindings.push(IntentBinding {
                    keywords: kws,
                    table: (*table).to_owned(),
                    attr: (*attr).to_owned(),
                });
            }
            if !ok {
                continue;
            }
            let mut tables: Vec<String> = pat.tables.iter().map(|s| (*s).to_owned()).collect();
            tables.sort();
            *usage.entry(tables.clone()).or_default() += 1;
            let intent = IntentSpec { bindings, tables };
            queries.push(WorkloadQuery {
                id,
                keywords: intent.keywords(),
                intent,
                multi_concept: want_mc,
            });
            id += 1;
        }

        let mut template_usage: Vec<TemplateUsage> = usage
            .into_iter()
            .map(|(tables, count)| TemplateUsage { tables, count })
            .collect();
        template_usage.sort_by(|a, b| b.count.cmp(&a.count).then(a.tables.cmp(&b.tables)));
        Workload {
            queries,
            template_usage,
        }
    }

    /// Queries flagged single-concept.
    pub fn single_concept(&self) -> impl Iterator<Item = &WorkloadQuery> {
        self.queries.iter().filter(|q| !q.multi_concept)
    }

    /// Queries flagged multi-concept.
    pub fn multi_concept(&self) -> impl Iterator<Item = &WorkloadQuery> {
        self.queries.iter().filter(|q| q.multi_concept)
    }
}

/// Sample connected rows for an IMDB pattern; returns one source string per
/// bind, or `None` if the dice landed on an unusable row.
fn sample_imdb(
    data: &ImdbDataset,
    db: &Database,
    pat: &Pattern,
    rng: &mut StdRng,
) -> Option<Vec<String>> {
    match pat.kind {
        PatternKind::SingleRow => {
            let (table, attr, _) = pat.binds[0];
            let tid = db.schema().table_id(table)?;
            let row = random_row(db, tid, rng);
            Some(vec![cell_text(db, tid, row, attr)])
        }
        PatternKind::ActorMovie => {
            let acts_row = random_row(db, data.acts, rng);
            let actor_pk = cell_int(db, data.acts, acts_row, "actor_id");
            let movie_pk = cell_int(db, data.acts, acts_row, "movie_id");
            let actor = db.table(data.actor).by_pk(actor_pk)?;
            let movie = db.table(data.movie).by_pk(movie_pk)?;
            Some(vec![
                cell_text(db, data.actor, actor, "name"),
                cell_text(db, data.movie, movie, "title"),
            ])
        }
        PatternKind::DirectorMovie => {
            let d_row = random_row(db, data.directs, rng);
            let dir_pk = cell_int(db, data.directs, d_row, "director_id");
            let movie_pk = cell_int(db, data.directs, d_row, "movie_id");
            let dir = db.table(data.director).by_pk(dir_pk)?;
            let movie = db.table(data.movie).by_pk(movie_pk)?;
            Some(vec![
                cell_text(db, data.director, dir, "name"),
                cell_text(db, data.movie, movie, "title"),
            ])
        }
        PatternKind::MovieCompany => {
            let movie = random_row(db, data.movie, rng);
            let company_pk = cell_int(db, data.movie, movie, "company_id");
            let company = db.table(data.company).by_pk(company_pk)?;
            Some(vec![
                cell_text(db, data.movie, movie, "title"),
                cell_text(db, data.company, company, "name"),
            ])
        }
        PatternKind::TwoActors => {
            // Pick a movie with >= 2 cast rows via two acts rows that agree.
            let a1 = random_row(db, data.acts, rng);
            let movie_pk = cell_int(db, data.acts, a1, "movie_id");
            let fk_movie = db
                .schema()
                .fks()
                .find(|(_, f)| f.from.table == data.acts && f.to.table == data.movie)?
                .0;
            let cast: Vec<RowId> = db.fk_referrers(fk_movie, movie_pk).to_vec();
            if cast.len() < 2 {
                return None;
            }
            let a2 = cast[rng.gen_range(0..cast.len())];
            if a2 == a1 {
                return None;
            }
            let p1 = cell_int(db, data.acts, a1, "actor_id");
            let p2 = cell_int(db, data.acts, a2, "actor_id");
            if p1 == p2 {
                return None;
            }
            let actor1 = db.table(data.actor).by_pk(p1)?;
            let actor2 = db.table(data.actor).by_pk(p2)?;
            Some(vec![
                cell_text(db, data.actor, actor1, "name"),
                cell_text(db, data.actor, actor2, "name"),
            ])
        }
        PatternKind::ActorRole => {
            let acts_row = random_row(db, data.acts, rng);
            let actor_pk = cell_int(db, data.acts, acts_row, "actor_id");
            let actor = db.table(data.actor).by_pk(actor_pk)?;
            Some(vec![
                cell_text(db, data.actor, actor, "name"),
                cell_text(db, data.acts, acts_row, "role"),
            ])
        }
        _ => None,
    }
}

/// Sample connected rows for a Lyrics pattern.
fn sample_lyrics(
    data: &LyricsDataset,
    db: &Database,
    pat: &Pattern,
    rng: &mut StdRng,
) -> Option<Vec<String>> {
    match pat.kind {
        PatternKind::SingleRow => {
            let (table, attr, _) = pat.binds[0];
            let tid = db.schema().table_id(table)?;
            let row = random_row(db, tid, rng);
            Some(vec![cell_text(db, tid, row, attr)])
        }
        PatternKind::ArtistSong => {
            // song -> album -> artist along the junction tables.
            let as_row = random_row(db, data.album_song, rng);
            let album_pk = cell_int(db, data.album_song, as_row, "album_id");
            let song_pk = cell_int(db, data.album_song, as_row, "song_id");
            let fk_album = db
                .schema()
                .fks()
                .find(|(_, f)| f.from.table == data.artist_album && f.to.table == data.album)?
                .0;
            let links = db.fk_referrers(fk_album, album_pk);
            if links.is_empty() {
                return None;
            }
            let aa = links[rng.gen_range(0..links.len())];
            let artist_pk = cell_int(db, data.artist_album, aa, "artist_id");
            let artist = db.table(data.artist).by_pk(artist_pk)?;
            let song = db.table(data.song).by_pk(song_pk)?;
            Some(vec![
                cell_text(db, data.artist, artist, "name"),
                cell_text(db, data.song, song, "title"),
            ])
        }
        PatternKind::ArtistAlbum => {
            let aa = random_row(db, data.artist_album, rng);
            let artist_pk = cell_int(db, data.artist_album, aa, "artist_id");
            let album_pk = cell_int(db, data.artist_album, aa, "album_id");
            let artist = db.table(data.artist).by_pk(artist_pk)?;
            let album = db.table(data.album).by_pk(album_pk)?;
            Some(vec![
                cell_text(db, data.artist, artist, "name"),
                cell_text(db, data.album, album, "title"),
            ])
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::ImdbConfig;
    use crate::lyrics::LyricsConfig;

    #[test]
    fn imdb_workload_shape() {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let w = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 9,
                n_queries: 60,
                mc_fraction: 0.5,
            },
        );
        assert_eq!(w.queries.len(), 60);
        assert!(w.single_concept().count() > 5);
        assert!(w.multi_concept().count() > 5);
        for q in &w.queries {
            assert!(!q.keywords.is_empty());
            assert_eq!(q.keywords, q.intent.keywords());
            assert!(!q.intent.tables.is_empty());
            let mut sorted = q.intent.tables.clone();
            sorted.sort();
            assert_eq!(sorted, q.intent.tables, "tables stored sorted");
        }
    }

    #[test]
    fn bindings_reference_real_attributes() {
        let data = ImdbDataset::generate(ImdbConfig::tiny(2)).unwrap();
        let w = Workload::imdb(&data, WorkloadConfig::default());
        for q in &w.queries {
            for b in &q.intent.bindings {
                let r = data.db.schema().resolve(&b.table, &b.attr);
                assert!(r.is_ok(), "{}.{} unknown", b.table, b.attr);
                // The bound table participates in the intended join tree.
                assert!(q.intent.tables.contains(&b.table));
            }
        }
    }

    #[test]
    fn keywords_occur_in_bound_attribute() {
        // Ground truth must be satisfiable: every bound keyword bag occurs
        // together in some value of the bound attribute.
        let data = ImdbDataset::generate(ImdbConfig::tiny(3)).unwrap();
        let idx = keybridge_index::InvertedIndex::build(&data.db);
        let w = Workload::imdb(
            &data,
            WorkloadConfig {
                seed: 1,
                n_queries: 40,
                mc_fraction: 0.5,
            },
        );
        for q in &w.queries {
            for b in &q.intent.bindings {
                let aref = data.db.schema().resolve(&b.table, &b.attr).unwrap();
                let rows = idx.rows_with_all(&b.keywords, aref);
                assert!(
                    !rows.is_empty(),
                    "keywords {:?} missing from {}.{}",
                    b.keywords,
                    b.table,
                    b.attr
                );
            }
        }
    }

    #[test]
    fn lyrics_chain_dominates_usage() {
        let data = LyricsDataset::generate(LyricsConfig::tiny(4)).unwrap();
        let w = Workload::lyrics(
            &data,
            WorkloadConfig {
                seed: 2,
                n_queries: 120,
                mc_fraction: 0.6,
            },
        );
        let chain: Vec<String> = {
            let mut t = vec![
                "artist".to_owned(),
                "artist_album".to_owned(),
                "album".to_owned(),
                "album_song".to_owned(),
                "song".to_owned(),
            ];
            t.sort();
            t
        };
        let top = &w.template_usage[0];
        assert_eq!(top.tables, chain, "chain template should dominate");
    }

    #[test]
    fn deterministic() {
        let data = ImdbDataset::generate(ImdbConfig::tiny(5)).unwrap();
        let a = Workload::imdb(&data, WorkloadConfig::default());
        let b = Workload::imdb(&data, WorkloadConfig::default());
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.keywords, y.keywords);
        }
    }

    #[test]
    fn usage_counts_sum_to_query_count() {
        let data = ImdbDataset::generate(ImdbConfig::tiny(6)).unwrap();
        let w = Workload::imdb(&data, WorkloadConfig::default());
        let total: usize = w.template_usage.iter().map(|u| u.count).sum();
        assert_eq!(total, w.queries.len());
    }
}
