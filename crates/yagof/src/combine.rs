//! The combined YAGO+F hierarchy (§6.6): matched tables attached to the
//! ontology, with the coverage statistics of Table 6.3.

use crate::matching::CategoryMatch;
use keybridge_datagen::{CategoryKind, FreebaseDataset, YagoOntology};
use keybridge_relstore::TableId;
use std::collections::{HashMap, HashSet};

/// The combined structure: for each matched category, the attached table.
#[derive(Debug, Clone)]
pub struct YagoF {
    /// category index -> attached table.
    pub attached: HashMap<usize, TableId>,
}

/// Aggregate statistics of a [`YagoF`] structure (Table 6.3's rows).
#[derive(Debug, Clone, PartialEq)]
pub struct YagoFStats {
    /// Categories carrying a matched table.
    pub matched_categories: usize,
    /// Distinct tables attached somewhere.
    pub attached_tables: usize,
    /// Distinct instances reachable through matched categories.
    pub covered_instances: usize,
    /// Instances of the database covered by attached tables.
    pub covered_table_instances: usize,
    /// Fraction of the database's type tables attached.
    pub table_coverage: f64,
}

/// Attach matches to the ontology.
pub fn combine(matches: &[CategoryMatch]) -> YagoF {
    YagoF {
        attached: matches.iter().map(|m| (m.category, m.table)).collect(),
    }
}

impl YagoF {
    /// Compute coverage statistics against the source structures.
    pub fn stats(&self, yago: &YagoOntology, fb: &FreebaseDataset) -> YagoFStats {
        let mut tables: HashSet<TableId> = HashSet::new();
        let mut instances: HashSet<i64> = HashSet::new();
        for (&cat, &table) in &self.attached {
            tables.insert(table);
            instances.extend(yago.categories[cat].instances.iter().copied());
        }
        let mut table_instances: HashSet<i64> = HashSet::new();
        for &t in &tables {
            table_instances.extend(fb.topic_ids_of(t));
        }
        let total_tables = fb.type_table_count();
        YagoFStats {
            matched_categories: self.attached.len(),
            attached_tables: tables.len(),
            covered_instances: instances.len(),
            covered_table_instances: table_instances.len(),
            table_coverage: if total_tables > 0 {
                tables.len() as f64 / total_tables as f64
            } else {
                0.0
            },
        }
    }

    /// Tables attached beneath an ontology concept (the category itself or
    /// any descendant) — the lookup interactive construction uses to turn a
    /// concept answer into a table set.
    pub fn tables_under(&self, yago: &YagoOntology, concept: usize) -> Vec<TableId> {
        let mut out: Vec<TableId> = self
            .attached
            .iter()
            .filter(|(cat, _)| {
                // Walk ancestors of the category up to the root.
                let mut cur = **cat;
                loop {
                    if cur == concept {
                        return true;
                    }
                    match yago.categories[cur].parent {
                        Some(p) => cur = p,
                        None => return false,
                    }
                }
            })
            .map(|(_, t)| *t)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Categories of a given kind that received a match.
    pub fn matched_of_kind(&self, yago: &YagoOntology, kind: CategoryKind) -> usize {
        self.attached
            .keys()
            .filter(|&&c| yago.categories[c].kind == kind)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{match_categories, MatchConfig};
    use keybridge_datagen::{FreebaseConfig, YagoConfig};

    fn setup() -> (FreebaseDataset, YagoOntology, YagoF) {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(2), &fb);
        let matches = match_categories(&y, &fb, MatchConfig::default());
        let yf = combine(&matches);
        (fb, y, yf)
    }

    #[test]
    fn stats_consistent() {
        let (fb, y, yf) = setup();
        let s = yf.stats(&y, &fb);
        assert_eq!(s.matched_categories, yf.attached.len());
        assert!(s.attached_tables <= s.matched_categories.max(1));
        assert!(s.covered_instances > 0);
        assert!(s.table_coverage > 0.0 && s.table_coverage <= 1.0);
    }

    #[test]
    fn tables_under_root_covers_all_attachments() {
        let (fb, y, yf) = setup();
        let under_root = yf.tables_under(&y, y.root);
        let s = yf.stats(&y, &fb);
        assert_eq!(under_root.len(), s.attached_tables);
    }

    #[test]
    fn tables_under_leaf_is_its_own_match() {
        let (_, y, yf) = setup();
        let (&cat, &table) = yf.attached.iter().next().expect("some match");
        let under = yf.tables_under(&y, cat);
        assert_eq!(under, vec![table]);
    }

    #[test]
    fn matched_kind_counts_bounded() {
        let (_, y, yf) = setup();
        let total: usize = [
            CategoryKind::WordNet,
            CategoryKind::Conceptual,
            CategoryKind::Administrative,
            CategoryKind::Relational,
            CategoryKind::Thematic,
        ]
        .iter()
        .map(|&k| yf.matched_of_kind(&y, k))
        .sum();
        assert_eq!(total, yf.attached.len());
    }
}
