//! Matching-quality evaluation against the generator's gold mapping
//! (Fig. 6.4). The thesis assessed matching quality manually; the synthetic
//! ontology records which table seeded each conceptual category, giving an
//! exact gold standard.

use crate::matching::CategoryMatch;
use keybridge_relstore::TableId;
use std::collections::HashMap;

/// Precision/recall of a matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchQuality {
    /// Matches whose table equals the gold table / all produced matches.
    pub precision: f64,
    /// Gold pairs recovered / all gold pairs.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Number of produced matches.
    pub produced: usize,
    /// Number of produced matches agreeing with gold.
    pub correct: usize,
}

/// Score `matches` against `gold` (category index → table).
pub fn evaluate_matching(matches: &[CategoryMatch], gold: &[(usize, TableId)]) -> MatchQuality {
    let gold_map: HashMap<usize, TableId> = gold.iter().copied().collect();
    let mut correct = 0usize;
    for m in matches {
        if gold_map.get(&m.category) == Some(&m.table) {
            correct += 1;
        }
    }
    let produced = matches.len();
    let precision = if produced > 0 {
        correct as f64 / produced as f64
    } else {
        0.0
    };
    let recall = if gold.is_empty() {
        0.0
    } else {
        correct as f64 / gold.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    MatchQuality {
        precision,
        recall,
        f1,
        produced,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{match_categories, MatchConfig};
    use keybridge_datagen::{FreebaseConfig, FreebaseDataset, YagoConfig, YagoOntology};

    #[test]
    fn exact_matches_score_perfectly() {
        let gold = vec![(1usize, TableId(3)), (2, TableId(4))];
        let matches = vec![
            CategoryMatch {
                category: 1,
                table: TableId(3),
                score: 0.9,
                coverage: 0.9,
                precision: 0.9,
            },
            CategoryMatch {
                category: 2,
                table: TableId(4),
                score: 0.8,
                coverage: 0.8,
                precision: 0.8,
            },
        ];
        let q = evaluate_matching(&matches, &gold);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.correct, 2);
    }

    #[test]
    fn wrong_table_hurts_precision() {
        let gold = vec![(1usize, TableId(3))];
        let matches = vec![CategoryMatch {
            category: 1,
            table: TableId(9),
            score: 0.5,
            coverage: 0.5,
            precision: 0.5,
        }];
        let q = evaluate_matching(&matches, &gold);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let q = evaluate_matching(&[], &[]);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.produced, 0);
    }

    #[test]
    fn end_to_end_quality_reasonable() {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(3)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(4), &fb);
        let matches = match_categories(&y, &fb, MatchConfig::default());
        let q = evaluate_matching(&matches, &y.gold);
        // With default coverage/noise the matcher should do clearly better
        // than chance (1/#tables = 5%).
        assert!(q.precision > 0.5, "precision {q:?}");
        assert!(q.recall > 0.3, "recall {q:?}");
    }

    #[test]
    fn threshold_tradeoff_visible() {
        // Raising the threshold should not decrease precision (fewer, more
        // confident matches) while recall drops — the Fig. 6.4 shape.
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(5)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(6), &fb);
        let low = evaluate_matching(
            &match_categories(
                &y,
                &fb,
                MatchConfig {
                    threshold: 0.05,
                    min_overlap: 2,
                },
            ),
            &y.gold,
        );
        let high = evaluate_matching(
            &match_categories(
                &y,
                &fb,
                MatchConfig {
                    threshold: 0.6,
                    min_overlap: 2,
                },
            ),
            &y.gold,
        );
        assert!(high.recall <= low.recall + 1e-12);
        assert!(
            high.precision + 0.1 >= low.precision,
            "low {low:?} high {high:?}"
        );
    }
}
