//! Instance-overlap matching of ontology categories to database tables
//! (§6.5, Fig. 6.3).
//!
//! For a category `c` and a table `t` with instance sets `I(c)`, `I(t)`:
//!
//! * *coverage* — `|I(c) ∩ I(t)| / |I(t)|`: how much of the table the
//!   category explains;
//! * *precision* — `|I(c) ∩ I(t)| / |I(c)|`: how much of the category lies
//!   in the table;
//! * *score* — their harmonic mean (an F1 over set overlap), robust against
//!   both huge thematic categories (low precision) and tiny administrative
//!   ones (low coverage).
//!
//! A category matches the best-scoring table if the score clears the
//! threshold. The matcher never looks at category kinds or names — the kind
//! analysis of §6.4 explains *why* it works (non-conceptual categories score
//! low), and the quality evaluation confirms it.

use keybridge_datagen::{FreebaseDataset, YagoOntology};
use keybridge_relstore::TableId;
use std::collections::HashMap;

/// Matching knobs.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Minimum harmonic-mean overlap score to accept a match.
    pub threshold: f64,
    /// Minimum absolute overlap (guards against tiny-set coincidences).
    pub min_overlap: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            threshold: 0.3,
            min_overlap: 3,
        }
    }
}

/// One accepted category→table match.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryMatch {
    /// Category index in the ontology.
    pub category: usize,
    pub table: TableId,
    /// Harmonic mean of coverage and precision.
    pub score: f64,
    /// `|I(c) ∩ I(t)| / |I(t)|`.
    pub coverage: f64,
    /// `|I(c) ∩ I(t)| / |I(c)|`.
    pub precision: f64,
}

/// Match every leaf category against the database tables.
pub fn match_categories(
    yago: &YagoOntology,
    fb: &FreebaseDataset,
    cfg: MatchConfig,
) -> Vec<CategoryMatch> {
    // Inverted map: topic -> tables containing it.
    let mut tables_of: HashMap<i64, Vec<TableId>> = HashMap::new();
    let mut table_size: HashMap<TableId, usize> = HashMap::new();
    for d in &fb.domains {
        for &t in &d.tables {
            let topics = fb.topic_ids_of(t);
            table_size.insert(t, topics.len());
            for topic in topics {
                tables_of.entry(topic).or_default().push(t);
            }
        }
    }

    let mut out = Vec::new();
    for (ci, cat) in yago.leaves() {
        if cat.instances.is_empty() {
            continue;
        }
        // Tally overlaps against candidate tables only.
        let mut overlap: HashMap<TableId, usize> = HashMap::new();
        for inst in &cat.instances {
            if let Some(ts) = tables_of.get(inst) {
                for &t in ts {
                    *overlap.entry(t).or_default() += 1;
                }
            }
        }
        let mut best: Option<CategoryMatch> = None;
        for (t, ov) in overlap {
            if ov < cfg.min_overlap {
                continue;
            }
            let size = table_size[&t];
            if size == 0 {
                continue;
            }
            let coverage = ov as f64 / size as f64;
            let precision = ov as f64 / cat.instances.len() as f64;
            let score = 2.0 * coverage * precision / (coverage + precision);
            let better = match &best {
                None => true,
                Some(b) => score > b.score + 1e-12 || (score > b.score - 1e-12 && t < b.table),
            };
            if better {
                best = Some(CategoryMatch {
                    category: ci,
                    table: t,
                    score,
                    coverage,
                    precision,
                });
            }
        }
        if let Some(m) = best {
            if m.score >= cfg.threshold {
                out.push(m);
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.category.cmp(&b.category))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{CategoryKind, FreebaseConfig, YagoConfig};

    fn setup() -> (FreebaseDataset, YagoOntology) {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(2), &fb);
        (fb, y)
    }

    #[test]
    fn matches_are_mostly_conceptual() {
        let (fb, y) = setup();
        let matches = match_categories(&y, &fb, MatchConfig::default());
        assert!(!matches.is_empty());
        let conceptual = matches
            .iter()
            .filter(|m| y.categories[m.category].kind == CategoryKind::Conceptual)
            .count();
        assert!(
            conceptual * 10 >= matches.len() * 8,
            "expected ≥80% conceptual matches: {conceptual}/{}",
            matches.len()
        );
    }

    #[test]
    fn scores_within_unit_interval_and_sorted() {
        let (fb, y) = setup();
        let matches = match_categories(&y, &fb, MatchConfig::default());
        for m in &matches {
            assert!((0.0..=1.0).contains(&m.score));
            assert!((0.0..=1.0).contains(&m.coverage));
            assert!((0.0..=1.0).contains(&m.precision));
        }
        for w in matches.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn high_threshold_yields_fewer_matches() {
        let (fb, y) = setup();
        let low = match_categories(
            &y,
            &fb,
            MatchConfig {
                threshold: 0.1,
                min_overlap: 2,
            },
        );
        let high = match_categories(
            &y,
            &fb,
            MatchConfig {
                threshold: 0.8,
                min_overlap: 2,
            },
        );
        assert!(high.len() <= low.len());
    }

    #[test]
    fn recovers_gold_for_clean_categories() {
        // With generous coverage and little noise, the best-score table of
        // a conceptual category should usually be its gold table.
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(7)).unwrap();
        let y = YagoOntology::generate(
            YagoConfig {
                coverage: 0.9,
                noise: 0.02,
                ..YagoConfig::tiny(8)
            },
            &fb,
        );
        let matches = match_categories(&y, &fb, MatchConfig::default());
        let gold: std::collections::HashMap<usize, TableId> = y.gold.iter().copied().collect();
        let mut correct = 0;
        let mut total = 0;
        for m in &matches {
            if let Some(gt) = gold.get(&m.category) {
                total += 1;
                if *gt == m.table {
                    correct += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct * 10 >= total * 7,
            "only {correct}/{total} gold tables recovered"
        );
    }

    #[test]
    fn min_overlap_guards_small_sets() {
        let (fb, y) = setup();
        let strict = match_categories(
            &y,
            &fb,
            MatchConfig {
                threshold: 0.0,
                min_overlap: 50,
            },
        );
        // tiny() tables hold ≤ 12 topics, so nothing can reach overlap 50.
        assert!(strict.is_empty());
    }
}
