//! # keybridge-yagof
//!
//! YAGO+F: combining a large-scale database with an ontology (Chapter 6).
//!
//! Freebase and YAGO share a large number of instances (both descend from
//! Wikipedia); their *schemas* were never aligned. This crate implements the
//! alignment pipeline the thesis describes:
//!
//! * [`analyze`] — the structural analysis of the ontology: category-kind
//!   distribution (Table 6.1), instance distribution over categories
//!   (Table 6.2), and the distribution of shared instances across database
//!   domains (Fig. 6.2);
//! * [`matching`] — instance-overlap matching of categories to tables
//!   (§6.5): a category and a table match when the overlap of their instance
//!   sets is large relative to both (harmonic-mean score with a threshold);
//! * [`combine`] — the resulting YAGO+F hierarchy: matched tables attached
//!   to categories, with the coverage statistics of Table 6.3;
//! * [`quality`] — precision/recall of the matching against the generator's
//!   hidden gold mapping (Fig. 6.4; the thesis used manual assessment).

pub mod analyze;
pub mod combine;
pub mod matching;
pub mod quality;

pub use analyze::{
    category_kind_distribution, instance_histogram, shared_instance_distribution, KindRow,
};
pub use combine::{combine, YagoF, YagoFStats};
pub use matching::{match_categories, CategoryMatch, MatchConfig};
pub use quality::{evaluate_matching, MatchQuality};
