//! Structural analysis of the ontology and the shared-instance relationship
//! between ontology and database (§6.4).

use keybridge_datagen::{CategoryKind, FreebaseDataset, YagoOntology};
use std::collections::HashMap;

/// One row of the category-kind distribution (Table 6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct KindRow {
    pub kind: CategoryKind,
    /// Number of categories of this kind.
    pub categories: usize,
    /// Total instance memberships across those categories.
    pub instance_links: u64,
    /// Mean instances per category.
    pub avg_instances: f64,
}

/// Distribution of categories by kind (Table 6.1).
pub fn category_kind_distribution(yago: &YagoOntology) -> Vec<KindRow> {
    let kinds = [
        CategoryKind::WordNet,
        CategoryKind::Conceptual,
        CategoryKind::Administrative,
        CategoryKind::Relational,
        CategoryKind::Thematic,
    ];
    kinds
        .iter()
        .map(|&kind| {
            let cats: Vec<_> = yago.categories.iter().filter(|c| c.kind == kind).collect();
            let links: u64 = cats.iter().map(|c| c.instances.len() as u64).sum();
            KindRow {
                kind,
                categories: cats.len(),
                instance_links: links,
                avg_instances: if cats.is_empty() {
                    0.0
                } else {
                    links as f64 / cats.len() as f64
                },
            }
        })
        .collect()
}

/// Histogram of categories by instance count, bucketed by powers of two
/// upper bounds (Table 6.2: "distribution of instances in YAGO"). Returns
/// `(bucket upper bound, #categories, #instance links)` rows; only non-empty
/// leaf categories are counted.
pub fn instance_histogram(yago: &YagoOntology) -> Vec<(usize, usize, u64)> {
    let mut buckets: Vec<(usize, usize, u64)> = Vec::new();
    let bounds = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, usize::MAX];
    for &b in &bounds {
        buckets.push((b, 0, 0));
    }
    for (_, c) in yago.leaves() {
        let n = c.instances.len();
        if n == 0 {
            continue;
        }
        let slot = bounds
            .iter()
            .position(|&b| n <= b)
            .expect("MAX catches all");
        buckets[slot].1 += 1;
        buckets[slot].2 += n as u64;
    }
    buckets.retain(|(_, cats, _)| *cats > 0);
    buckets
}

/// Distribution of shared instances across database domains (Fig. 6.2):
/// for every topic appearing in at least one ontology category, in how many
/// *domains* of the database does it occur? Returns `(domain count, topics)`
/// rows sorted ascending.
pub fn shared_instance_distribution(
    yago: &YagoOntology,
    fb: &FreebaseDataset,
) -> Vec<(usize, usize)> {
    // Topics present in the ontology.
    let mut in_yago: std::collections::HashSet<i64> = Default::default();
    for (_, c) in yago.leaves() {
        in_yago.extend(c.instances.iter().copied());
    }
    // Topic -> set of domains in the database.
    let mut domains_of: HashMap<i64, std::collections::HashSet<usize>> = HashMap::new();
    for (di, d) in fb.domains.iter().enumerate() {
        for &t in &d.tables {
            for topic in fb.topic_ids_of(t) {
                if in_yago.contains(&topic) {
                    domains_of.entry(topic).or_default().insert(di);
                }
            }
        }
    }
    let mut hist: HashMap<usize, usize> = HashMap::new();
    for set in domains_of.values() {
        *hist.entry(set.len()).or_default() += 1;
    }
    let mut rows: Vec<(usize, usize)> = hist.into_iter().collect();
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{FreebaseConfig, YagoConfig};

    fn setup() -> (FreebaseDataset, YagoOntology) {
        let fb = FreebaseDataset::generate(FreebaseConfig::tiny(1)).unwrap();
        let y = YagoOntology::generate(YagoConfig::tiny(2), &fb);
        (fb, y)
    }

    #[test]
    fn kind_distribution_covers_all_categories() {
        let (_, y) = setup();
        let rows = category_kind_distribution(&y);
        let total: usize = rows.iter().map(|r| r.categories).sum();
        assert_eq!(total, y.categories.len());
        let conceptual = rows
            .iter()
            .find(|r| r.kind == CategoryKind::Conceptual)
            .unwrap();
        assert!(conceptual.categories > 0);
        assert!(conceptual.avg_instances > 0.0);
    }

    #[test]
    fn histogram_counts_nonempty_leaves() {
        let (_, y) = setup();
        let hist = instance_histogram(&y);
        let cats: usize = hist.iter().map(|(_, c, _)| *c).sum();
        let nonempty = y.leaves().filter(|(_, c)| !c.instances.is_empty()).count();
        assert_eq!(cats, nonempty);
        // Buckets ordered by bound.
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn shared_instances_span_domains() {
        let (fb, y) = setup();
        let rows = shared_instance_distribution(&y, &fb);
        assert!(!rows.is_empty());
        let total_topics: usize = rows.iter().map(|(_, n)| *n).sum();
        assert!(total_topics > 0);
        // With Zipf-skewed topic popularity, some instance spans 2+ domains.
        assert!(
            rows.iter().any(|(d, _)| *d >= 2),
            "expected multi-domain topics: {rows:?}"
        );
    }
}
