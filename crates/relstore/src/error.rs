//! Error type shared by the relational engine.

use crate::schema::{AttrRef, TableId};
use std::fmt;

/// Result alias used across the crate.
pub type RelResult<T> = Result<T, RelError>;

/// Errors raised by schema construction, data loading, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table name was declared twice.
    DuplicateTable(String),
    /// An attribute name was declared twice within one table.
    DuplicateAttribute { table: String, attr: String },
    /// A named table does not exist.
    UnknownTable(String),
    /// A named attribute does not exist on the given table.
    UnknownAttribute { table: String, attr: String },
    /// A table was declared without a primary key.
    MissingPrimaryKey(String),
    /// A foreign key references a non-integer column.
    NonIntegerKey { table: String, attr: String },
    /// Row arity does not match the table definition.
    ArityMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// A value does not conform to the declared attribute type.
    TypeMismatch { attr: AttrRef },
    /// The primary key of an inserted row is null or duplicated.
    BadPrimaryKey { table: TableId },
    /// A foreign key points at a missing parent row (reported by `validate`).
    BrokenForeignKey { table: TableId, row: u32 },
    /// A join tree handed to the executor is malformed.
    MalformedJoinTree(String),
    /// A row is not covered by a shard assignment (partitioning).
    UnassignedRow { table: String, key: i64 },
    /// The table is at its `u32` row-id capacity; inserting one more row
    /// would wrap ids and corrupt the store.
    TableFull { table: TableId },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::DuplicateTable(name) => write!(f, "duplicate table `{name}`"),
            RelError::DuplicateAttribute { table, attr } => {
                write!(f, "duplicate attribute `{attr}` on table `{table}`")
            }
            RelError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            RelError::UnknownAttribute { table, attr } => {
                write!(f, "unknown attribute `{table}.{attr}`")
            }
            RelError::MissingPrimaryKey(name) => {
                write!(f, "table `{name}` has no primary key")
            }
            RelError::NonIntegerKey { table, attr } => {
                write!(f, "key column `{table}.{attr}` must be INT")
            }
            RelError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch on table #{}: expected {expected}, got {got}",
                table.0
            ),
            RelError::TypeMismatch { attr } => {
                write!(
                    f,
                    "type mismatch for attribute {}.{}",
                    attr.table.0, attr.attr.0
                )
            }
            RelError::BadPrimaryKey { table } => {
                write!(f, "null or duplicate primary key on table #{}", table.0)
            }
            RelError::BrokenForeignKey { table, row } => {
                write!(f, "broken foreign key at table #{} row {row}", table.0)
            }
            RelError::MalformedJoinTree(msg) => write!(f, "malformed join tree: {msg}"),
            RelError::UnassignedRow { table, key } => {
                write!(f, "row `{table}`:{key} not covered by shard assignment")
            }
            RelError::TableFull { table } => {
                write!(f, "table #{} is at row-id capacity", table.0)
            }
        }
    }
}

impl std::error::Error for RelError {}

/// Why [`crate::Database::insert_batch`] rejected a batch. Unlike the
/// engine-internal [`RelError`] shape errors, every variant carries the
/// *table name* and the offending row's position within the batch, so an
/// ingest client can see exactly which row of its submission was bad —
/// and the durability layer can log a precise rejection without ever
/// touching storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// Row arity does not match the table definition.
    Arity {
        table: String,
        batch_row: usize,
        expected: usize,
        got: usize,
    },
    /// A value does not conform to the declared attribute type.
    Type {
        table: String,
        attr: String,
        batch_row: usize,
    },
    /// The row's primary key is null (or otherwise not an integer).
    NullPrimaryKey { table: String, batch_row: usize },
    /// The row's primary key collides with a stored row or an earlier row
    /// of the same batch.
    DuplicatePrimaryKey {
        table: String,
        key: i64,
        batch_row: usize,
    },
    /// A foreign-key value references a parent that exists neither in the
    /// database nor anywhere in the batch.
    DanglingForeignKey {
        table: String,
        attr: String,
        key: i64,
        batch_row: usize,
    },
    /// Applying the batch would push the table past its `u32` row-id
    /// capacity. Reported during validation, so nothing is inserted.
    TableFull { table: String, batch_row: usize },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Arity {
                table,
                batch_row,
                expected,
                got,
            } => write!(
                f,
                "batch row {batch_row}: arity mismatch on table `{table}`: \
                 expected {expected}, got {got}"
            ),
            BatchError::Type {
                table,
                attr,
                batch_row,
            } => write!(
                f,
                "batch row {batch_row}: type mismatch for `{table}.{attr}`"
            ),
            BatchError::NullPrimaryKey { table, batch_row } => write!(
                f,
                "batch row {batch_row}: null primary key on table `{table}`"
            ),
            BatchError::DuplicatePrimaryKey {
                table,
                key,
                batch_row,
            } => write!(
                f,
                "batch row {batch_row}: duplicate primary key {key} on table `{table}`"
            ),
            BatchError::DanglingForeignKey {
                table,
                attr,
                key,
                batch_row,
            } => write!(
                f,
                "batch row {batch_row}: foreign key `{table}.{attr}` = {key} \
                 references no parent row"
            ),
            BatchError::TableFull { table, batch_row } => write!(
                f,
                "batch row {batch_row}: table `{table}` is at row-id capacity"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn display_covers_variants() {
        let attr = AttrRef {
            table: TableId(1),
            attr: AttrId(2),
        };
        let samples: Vec<RelError> = vec![
            RelError::DuplicateTable("t".into()),
            RelError::DuplicateAttribute {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::UnknownTable("t".into()),
            RelError::UnknownAttribute {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::MissingPrimaryKey("t".into()),
            RelError::NonIntegerKey {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::ArityMismatch {
                table: TableId(0),
                expected: 3,
                got: 2,
            },
            RelError::TypeMismatch { attr },
            RelError::BadPrimaryKey { table: TableId(0) },
            RelError::BrokenForeignKey {
                table: TableId(0),
                row: 5,
            },
            RelError::MalformedJoinTree("cycle".into()),
            RelError::TableFull { table: TableId(0) },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn batch_error_display_carries_context() {
        let samples: Vec<(BatchError, &[&str])> = vec![
            (
                BatchError::Arity {
                    table: "acts".into(),
                    batch_row: 3,
                    expected: 4,
                    got: 2,
                },
                &["acts", "row 3", "expected 4", "got 2"],
            ),
            (
                BatchError::Type {
                    table: "movie".into(),
                    attr: "title".into(),
                    batch_row: 0,
                },
                &["movie.title", "row 0"],
            ),
            (
                BatchError::NullPrimaryKey {
                    table: "actor".into(),
                    batch_row: 1,
                },
                &["actor", "null primary key"],
            ),
            (
                BatchError::DuplicatePrimaryKey {
                    table: "actor".into(),
                    key: 7,
                    batch_row: 2,
                },
                &["duplicate primary key 7", "actor"],
            ),
            (
                BatchError::DanglingForeignKey {
                    table: "acts".into(),
                    attr: "actor_id".into(),
                    key: 99,
                    batch_row: 5,
                },
                &["acts.actor_id", "99", "no parent"],
            ),
            (
                BatchError::TableFull {
                    table: "acts".into(),
                    batch_row: 4,
                },
                &["acts", "row 4", "capacity"],
            ),
        ];
        for (e, needles) in samples {
            let text = e.to_string();
            for n in needles {
                assert!(text.contains(n), "`{text}` should contain `{n}`");
            }
        }
    }
}
