//! Error type shared by the relational engine.

use crate::schema::{AttrRef, TableId};
use std::fmt;

/// Result alias used across the crate.
pub type RelResult<T> = Result<T, RelError>;

/// Errors raised by schema construction, data loading, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table name was declared twice.
    DuplicateTable(String),
    /// An attribute name was declared twice within one table.
    DuplicateAttribute { table: String, attr: String },
    /// A named table does not exist.
    UnknownTable(String),
    /// A named attribute does not exist on the given table.
    UnknownAttribute { table: String, attr: String },
    /// A table was declared without a primary key.
    MissingPrimaryKey(String),
    /// A foreign key references a non-integer column.
    NonIntegerKey { table: String, attr: String },
    /// Row arity does not match the table definition.
    ArityMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// A value does not conform to the declared attribute type.
    TypeMismatch { attr: AttrRef },
    /// The primary key of an inserted row is null or duplicated.
    BadPrimaryKey { table: TableId },
    /// A foreign key points at a missing parent row (reported by `validate`).
    BrokenForeignKey { table: TableId, row: u32 },
    /// A join tree handed to the executor is malformed.
    MalformedJoinTree(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::DuplicateTable(name) => write!(f, "duplicate table `{name}`"),
            RelError::DuplicateAttribute { table, attr } => {
                write!(f, "duplicate attribute `{attr}` on table `{table}`")
            }
            RelError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            RelError::UnknownAttribute { table, attr } => {
                write!(f, "unknown attribute `{table}.{attr}`")
            }
            RelError::MissingPrimaryKey(name) => {
                write!(f, "table `{name}` has no primary key")
            }
            RelError::NonIntegerKey { table, attr } => {
                write!(f, "key column `{table}.{attr}` must be INT")
            }
            RelError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch on table #{}: expected {expected}, got {got}",
                table.0
            ),
            RelError::TypeMismatch { attr } => {
                write!(
                    f,
                    "type mismatch for attribute {}.{}",
                    attr.table.0, attr.attr.0
                )
            }
            RelError::BadPrimaryKey { table } => {
                write!(f, "null or duplicate primary key on table #{}", table.0)
            }
            RelError::BrokenForeignKey { table, row } => {
                write!(f, "broken foreign key at table #{} row {row}", table.0)
            }
            RelError::MalformedJoinTree(msg) => write!(f, "malformed join tree: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn display_covers_variants() {
        let attr = AttrRef {
            table: TableId(1),
            attr: AttrId(2),
        };
        let samples: Vec<RelError> = vec![
            RelError::DuplicateTable("t".into()),
            RelError::DuplicateAttribute {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::UnknownTable("t".into()),
            RelError::UnknownAttribute {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::MissingPrimaryKey("t".into()),
            RelError::NonIntegerKey {
                table: "t".into(),
                attr: "a".into(),
            },
            RelError::ArityMismatch {
                table: TableId(0),
                expected: 3,
                got: 2,
            },
            RelError::TypeMismatch { attr },
            RelError::BadPrimaryKey { table: TableId(0) },
            RelError::BrokenForeignKey {
                table: TableId(0),
                row: 5,
            },
            RelError::MalformedJoinTree("cycle".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
