//! Versioned binary snapshots of a [`Database`], plus the framing
//! primitives the rest of the workspace's durability layer builds on
//! (the inverted-index snapshot in `keybridge-index` and the write-ahead
//! log in `keybridge-core` reuse the same cursor/section/CRC toolkit).
//!
//! Layout principles (the EMBANKS "disk-resident state is first-class"
//! direction):
//!
//! * **length-prefixed, checksummed sections** — every section carries its
//!   byte length and a CRC-32 of its payload, so a reader can skip or
//!   validate a section without decoding it, and corruption is detected
//!   *before* any row is materialized;
//! * **deterministic bytes** — tables are written in `TableId` order and
//!   rows in `RowId` order (and the index snapshot sorts its terms), so the
//!   same database always serializes to the same bytes. The recovery suite
//!   leans on this: "no partial apply" is asserted as byte equality of
//!   whole snapshots;
//! * **row ids are preserved** — rows are re-inserted in stored order on
//!   load, so a recovered database assigns exactly the original `RowId`s
//!   and every downstream answer (which renders row ids and keys) is
//!   byte-identical to the pre-crash service's.

use crate::database::{Database, RowBatch};
use crate::error::RelError;
use crate::schema::{SchemaBuilder, TableKind};
use crate::value::{Value, ValueType};
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Errors raised while encoding or decoding snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (message carries the operation and cause).
    Io(String),
    /// The leading magic bytes are not a snapshot of the expected kind.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The byte stream ended inside a value or section.
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    BadChecksum { section: u8 },
    /// Structurally invalid content (bad tags, inconsistent counts, …).
    Corrupt(String),
    /// A length does not fit its fixed-width `u32` prefix. Surfaced at
    /// *encode* time — the alternative, a silent `as u32` truncation, would
    /// produce a "valid-looking" snapshot whose reader materializes garbage.
    TooLarge { what: &'static str, len: usize },
    /// Decoded rows were rejected by the relational engine.
    Rel(RelError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::BadMagic => f.write_str("snapshot magic bytes do not match"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Truncated => f.write_str("snapshot bytes truncated"),
            SnapshotError::BadChecksum { section } => {
                write!(f, "checksum mismatch in snapshot section {section}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::TooLarge { what, len } => {
                write!(f, "{what} of {len} bytes exceeds the u32 length prefix")
            }
            SnapshotError::Rel(e) => write!(f, "snapshot rows rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

impl From<RelError> for SnapshotError {
    fn from(e: RelError) -> Self {
        SnapshotError::Rel(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), table-driven, computed at compile time.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `data` (IEEE polynomial, as used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian write helpers over a growable buffer.
// ---------------------------------------------------------------------------

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked conversion of a length/count to its fixed-width `u32` encoding.
/// Every `put_u32(.., n as u32)` in the codecs goes through this, so an
/// oversized payload surfaces as [`SnapshotError::TooLarge`] instead of a
/// silently truncated prefix.
pub fn len_u32(what: &'static str, len: usize) -> Result<u32, SnapshotError> {
    u32::try_from(len).map_err(|_| SnapshotError::TooLarge { what, len })
}

/// Length-prefixed UTF-8 string. Fails with [`SnapshotError::TooLarge`] if
/// the string cannot carry a `u32` length prefix.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), SnapshotError> {
    put_u32(out, len_u32("string", s.len())?);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// LEB128 varints. Counts, dictionary ids, and integer cells use these in the
// dictionary-encoded snapshot format: small values (the overwhelmingly common
// case) cost one byte instead of four or eight, and a length can never
// outgrow its prefix.
// ---------------------------------------------------------------------------

/// Unsigned LEB128.
pub fn put_varu64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Unsigned LEB128, `u32` domain.
pub fn put_varu32(out: &mut Vec<u8>, v: u32) {
    put_varu64(out, v as u64);
}

/// Zigzag-mapped signed LEB128 (small magnitudes of either sign stay short).
pub fn put_vari64(out: &mut Vec<u8>, v: i64) {
    put_varu64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append one framed section: tag, payload length, payload CRC-32, payload.
pub fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    put_u8(out, tag);
    put_u64(out, payload.len() as u64);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------------
// Bounds-checked little-endian reader.
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over snapshot bytes. Every read returns
/// [`SnapshotError::Truncated`] instead of panicking when the stream ends
/// early — torn files must fail soft.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Unsigned LEB128, up to 10 bytes.
    pub fn varu64(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                if shift == 63 && (b & 0x7E) != 0 {
                    return Err(SnapshotError::Corrupt("varint overflows u64".into()));
                }
                return Ok(v);
            }
        }
        Err(SnapshotError::Corrupt("varint longer than 10 bytes".into()))
    }

    /// Unsigned LEB128 constrained to the `u32` domain.
    pub fn varu32(&mut self) -> Result<u32, SnapshotError> {
        let v = self.varu64()?;
        u32::try_from(v).map_err(|_| SnapshotError::Corrupt("varint overflows u32".into()))
    }

    /// Zigzag-mapped signed LEB128.
    pub fn vari64(&mut self) -> Result<i64, SnapshotError> {
        let u = self.varu64()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// Read one framed section, verifying its tag and CRC. Returns the
    /// payload slice.
    pub fn section(&mut self, expected_tag: u8) -> Result<&'a [u8], SnapshotError> {
        let tag = self.u8()?;
        if tag != expected_tag {
            return Err(SnapshotError::Corrupt(format!(
                "expected section {expected_tag}, found {tag}"
            )));
        }
        let len = self.u64()? as usize;
        let stored_crc = self.u32()?;
        let payload = self.take(len)?;
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::BadChecksum { section: tag });
        }
        Ok(payload)
    }
}

// ---------------------------------------------------------------------------
// Value and row-batch codecs (shared with the WAL in keybridge-core).
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_TEXT: u8 = 2;

pub fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), SnapshotError> {
    match v {
        Value::Null => put_u8(out, VAL_NULL),
        Value::Int(i) => {
            put_u8(out, VAL_INT);
            put_i64(out, *i);
        }
        Value::Text(s) => {
            put_u8(out, VAL_TEXT);
            put_str(out, s)?;
        }
    }
    Ok(())
}

pub fn read_value(c: &mut Cursor<'_>) -> Result<Value, SnapshotError> {
    match c.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_INT => Ok(Value::Int(c.i64()?)),
        VAL_TEXT => Ok(Value::text(c.str()?)),
        tag => Err(SnapshotError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Encode one [`RowBatch`] — the WAL record payload. Self-describing (each
/// row carries its table id and arity), so a decoder needs no schema.
pub fn encode_batch(batch: &RowBatch) -> Result<Vec<u8>, SnapshotError> {
    let mut out = Vec::new();
    put_u32(&mut out, len_u32("batch row count", batch.len())?);
    for (table, row) in batch {
        put_u32(&mut out, table.0);
        put_u32(&mut out, len_u32("batch row arity", row.len())?);
        for v in row {
            put_value(&mut out, v)?;
        }
    }
    Ok(out)
}

/// Decode a [`RowBatch`] encoded by [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<RowBatch, SnapshotError> {
    let mut c = Cursor::new(bytes);
    let n = c.u32()? as usize;
    let mut batch = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let table = crate::schema::TableId(c.u32()?);
        let arity = c.u32()? as usize;
        let mut row = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            row.push(read_value(&mut c)?);
        }
        batch.push((table, row));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt("trailing bytes after batch".into()));
    }
    Ok(batch)
}

// ---------------------------------------------------------------------------
// Database snapshot.
// ---------------------------------------------------------------------------

const DB_MAGIC: &[u8; 8] = b"KBRELDB1";
/// Version 2: dictionary-encoded text cells + varint integers. Each distinct
/// string is stored once in a dictionary section; cells reference it by a
/// varint symbol id, and integer cells/row counts are varints — the on-disk
/// analog of the in-memory string arena.
const DB_VERSION: u32 = 2;
const SEC_SCHEMA: u8 = 1;
const SEC_ROWS: u8 = 2;
const SEC_DICT: u8 = 3;

const KIND_ENTITY: u8 = 0;
const KIND_RELATION: u8 = 1;
const TY_INT: u8 = 0;
const TY_TEXT: u8 = 1;

impl Database {
    /// Serialize the whole database — schema, string dictionary, and rows —
    /// into the compact, versioned snapshot format. Deterministic: the same
    /// *logical content* always yields the same bytes. In particular the
    /// dictionary is ordered by first occurrence in the table-major, RowId-
    /// ordered row walk — not by arena insertion order, which depends on the
    /// interleaving of live inserts across tables and would differ between
    /// an ingesting database and its decoded twin.
    ///
    /// Fails only with [`SnapshotError::TooLarge`], when some component
    /// cannot carry its fixed-width length prefix.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        out.extend_from_slice(DB_MAGIC);
        put_u32(&mut out, DB_VERSION);

        // Schema section: tables (name, kind, pk, attrs) then foreign keys.
        let schema = self.schema();
        let mut sec = Vec::new();
        put_u32(&mut sec, len_u32("table count", schema.table_count())?);
        for (_, t) in schema.tables() {
            put_str(&mut sec, &t.name)?;
            put_u8(
                &mut sec,
                match t.kind {
                    TableKind::Entity => KIND_ENTITY,
                    TableKind::Relation => KIND_RELATION,
                },
            );
            put_u32(&mut sec, t.pk.0);
            put_u32(&mut sec, len_u32("attribute count", t.attrs.len())?);
            for a in &t.attrs {
                put_str(&mut sec, &a.name)?;
                put_u8(
                    &mut sec,
                    match a.ty {
                        ValueType::Int => TY_INT,
                        ValueType::Text => TY_TEXT,
                    },
                );
            }
        }
        put_u32(&mut sec, len_u32("foreign key count", schema.fk_count())?);
        for (_, fk) in schema.fks() {
            put_u32(&mut sec, fk.from.table.0);
            put_u32(&mut sec, fk.from.attr.0);
            put_u32(&mut sec, fk.to.table.0);
        }
        put_section(&mut out, SEC_SCHEMA, &sec);

        // Dictionary section: every distinct text-cell string once, in
        // canonical first-occurrence order of the row walk below.
        let mut ids: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut dict: Vec<&str> = Vec::new();
        for (tid, _) in schema.tables() {
            for (_, row) in self.table(tid).rows() {
                for v in row {
                    if let Some(s) = v.as_text() {
                        if !ids.contains_key(s) {
                            ids.insert(s, len_u32("dictionary symbol count", dict.len())?);
                            dict.push(s);
                        }
                    }
                }
            }
        }
        let mut sec = Vec::new();
        put_varu32(&mut sec, len_u32("dictionary symbol count", dict.len())?);
        for s in &dict {
            put_varu64(&mut sec, s.len() as u64);
            sec.extend_from_slice(s.as_bytes());
        }
        put_section(&mut out, SEC_DICT, &sec);

        // One rows section per table, rows in RowId order — the order they
        // are re-inserted in on load, preserving every RowId. Per-table
        // sections keep the door open for a lazy per-table (mmap) reader.
        // Cells are one tag byte plus a varint payload: zigzag integers,
        // dictionary symbol ids for text.
        for (tid, _) in schema.tables() {
            let mut sec = Vec::new();
            let store = self.table(tid);
            put_varu64(&mut sec, store.len() as u64);
            for (_, row) in store.rows() {
                for v in row {
                    match v {
                        Value::Null => put_u8(&mut sec, VAL_NULL),
                        Value::Int(i) => {
                            put_u8(&mut sec, VAL_INT);
                            put_vari64(&mut sec, *i);
                        }
                        Value::Text(s) => {
                            put_u8(&mut sec, VAL_TEXT);
                            let id = ids.get(&**s).copied().expect("dictionary built above");
                            put_varu32(&mut sec, id);
                        }
                    }
                }
            }
            put_section(&mut out, SEC_ROWS, &sec);
        }
        Ok(out)
    }

    /// Size of the *pre-diet* (version 1) encoding of this database's
    /// content: fixed 8-byte integers and every text cell carrying its own
    /// length-prefixed string copy, no dictionary. Deterministic and cheap
    /// (no allocation); the smoke bench records it next to the real snapshot
    /// size so the storage-diet win is measurable per fixture.
    pub fn naive_snapshot_bytes(&self) -> u64 {
        const FRAME: u64 = 13; // section tag + u64 length + crc32
        let schema = self.schema();
        let mut total = 12u64; // magic + version
        let mut sec = 4u64; // table count
        for (_, t) in schema.tables() {
            sec += 4 + t.name.len() as u64 + 1 + 4 + 4;
            for a in &t.attrs {
                sec += 4 + a.name.len() as u64 + 1;
            }
        }
        sec += 4 + schema.fk_count() as u64 * 12;
        total += FRAME + sec;
        for (tid, _) in schema.tables() {
            let mut sec = 4u64; // row count
            for (_, row) in self.table(tid).rows() {
                for v in row {
                    sec += match v {
                        Value::Null => 1,
                        Value::Int(_) => 9,
                        Value::Text(s) => 5 + s.len() as u64,
                    };
                }
            }
            total += FRAME + sec;
        }
        total
    }

    /// Decode a snapshot produced by [`Self::snapshot_bytes`]. The schema is
    /// rebuilt through [`SchemaBuilder`] and every row re-inserted in stored
    /// order, so table ids, attribute ids, foreign-key ids, and row ids all
    /// match the original database exactly.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Database, SnapshotError> {
        let mut c = Cursor::new(bytes);
        if c.take(8)? != DB_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.u32()?;
        if version != DB_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        // Schema section → an intermediate description, then the builder.
        struct TableDesc {
            name: String,
            kind: TableKind,
            pk: u32,
            attrs: Vec<(String, ValueType)>,
        }
        let schema_bytes = c.section(SEC_SCHEMA)?;
        let mut sc = Cursor::new(schema_bytes);
        let n_tables = sc.u32()? as usize;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = sc.str()?;
            let kind = match sc.u8()? {
                KIND_ENTITY => TableKind::Entity,
                KIND_RELATION => TableKind::Relation,
                k => return Err(SnapshotError::Corrupt(format!("unknown table kind {k}"))),
            };
            let pk = sc.u32()?;
            let n_attrs = sc.u32()? as usize;
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let aname = sc.str()?;
                let ty = match sc.u8()? {
                    TY_INT => ValueType::Int,
                    TY_TEXT => ValueType::Text,
                    t => return Err(SnapshotError::Corrupt(format!("unknown value type {t}"))),
                };
                attrs.push((aname, ty));
            }
            if pk as usize >= attrs.len() || attrs[pk as usize].1 != ValueType::Int {
                return Err(SnapshotError::Corrupt(format!(
                    "table `{name}` has an invalid primary key"
                )));
            }
            tables.push(TableDesc {
                name,
                kind,
                pk,
                attrs,
            });
        }
        let n_fks = sc.u32()? as usize;
        let mut fks = Vec::with_capacity(n_fks);
        for _ in 0..n_fks {
            let from_table = sc.u32()? as usize;
            let from_attr = sc.u32()? as usize;
            let to_table = sc.u32()? as usize;
            if from_table >= tables.len() || to_table >= tables.len() {
                return Err(SnapshotError::Corrupt("foreign key out of range".into()));
            }
            if from_attr >= tables[from_table].attrs.len() {
                return Err(SnapshotError::Corrupt(
                    "foreign key attr out of range".into(),
                ));
            }
            fks.push((from_table, from_attr, to_table));
        }

        let mut b = SchemaBuilder::new();
        for t in &tables {
            let mut tb = b.table(&t.name, t.kind);
            for (i, (aname, ty)) in t.attrs.iter().enumerate() {
                tb = if i == t.pk as usize {
                    tb.pk(aname)
                } else {
                    match ty {
                        ValueType::Int => tb.int_attr(aname),
                        ValueType::Text => tb.text_attr(aname),
                    }
                };
            }
        }
        for &(ft, fa, tt) in &fks {
            let attr = tables[ft].attrs[fa].0.clone();
            b.foreign_key(&tables[ft].name, &attr, &tables[tt].name)?;
        }
        let schema = b.finish()?;
        let mut db = Database::new(schema);

        // Dictionary section: the shared string table the text cells below
        // reference. Each entry becomes one `Arc<str>`, cloned per cell.
        let dict_bytes = c.section(SEC_DICT)?;
        let mut dc = Cursor::new(dict_bytes);
        let n_syms = dc.varu32()? as usize;
        let mut dict: Vec<std::sync::Arc<str>> = Vec::with_capacity(n_syms.min(1 << 20));
        for _ in 0..n_syms {
            let len = dc.varu64()? as usize;
            let bytes = dc.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| SnapshotError::Corrupt("non-UTF-8 dictionary entry".into()))?;
            dict.push(std::sync::Arc::from(s));
        }
        if dc.remaining() != 0 {
            return Err(SnapshotError::Corrupt(
                "trailing bytes in dictionary section".into(),
            ));
        }

        // Rows sections, one per table, insertion order = RowId order. Bulk
        // `insert` is the right primitive: FK validation already happened
        // before the snapshot was written, and parents may follow children
        // across table sections.
        for ti in 0..n_tables {
            let rows_bytes = c.section(SEC_ROWS)?;
            let mut rc = Cursor::new(rows_bytes);
            let tid = crate::schema::TableId(ti as u32);
            let arity = db.schema().table(tid).attrs.len();
            let n_rows = rc.varu64()? as usize;
            for _ in 0..n_rows {
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(match rc.u8()? {
                        VAL_NULL => Value::Null,
                        VAL_INT => Value::Int(rc.vari64()?),
                        VAL_TEXT => {
                            let id = rc.varu32()? as usize;
                            let s = dict.get(id).ok_or_else(|| {
                                SnapshotError::Corrupt(format!("dictionary id {id} out of range"))
                            })?;
                            Value::Text(s.clone())
                        }
                        tag => {
                            return Err(SnapshotError::Corrupt(format!("unknown value tag {tag}")))
                        }
                    });
                }
                db.insert(tid, row)?;
            }
            if rc.remaining() != 0 {
                return Err(SnapshotError::Corrupt(format!(
                    "trailing bytes in rows section of table {ti}"
                )));
            }
        }
        if c.remaining() != 0 {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after snapshot".into(),
            ));
        }
        Ok(db)
    }

    /// Write [`Self::snapshot_bytes`] to `path`, fsynced. Callers that need
    /// atomic replacement (the service checkpoint) write to a temp file and
    /// rename; this primitive just persists bytes durably.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.snapshot_bytes()?;
        let mut f = File::create(path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        Ok(())
    }

    /// Read and decode a snapshot written by [`Self::save_snapshot`].
    pub fn load_snapshot(path: &Path) -> Result<Database, SnapshotError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Database::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;

    fn sample_db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id")
            .text_attr("role");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        db.insert(actor, vec![Value::Int(1), Value::text("Tom Hanks")])
            .unwrap();
        db.insert(actor, vec![Value::Int(2), Value::Null]).unwrap();
        db.insert(
            movie,
            vec![
                Value::Int(10),
                Value::text("The Terminal"),
                Value::Int(2004),
            ],
        )
        .unwrap();
        db.insert(
            acts,
            vec![
                Value::Int(100),
                Value::Int(1),
                Value::Int(10),
                Value::text("Viktor Navorski"),
            ],
        )
        .unwrap();
        db.insert(
            acts,
            vec![Value::Int(101), Value::Null, Value::Null, Value::Null],
        )
        .unwrap();
        db
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let bytes = db.snapshot_bytes().unwrap();
        let back = Database::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.schema().table_count(), db.schema().table_count());
        assert_eq!(back.schema().fk_count(), db.schema().fk_count());
        assert_eq!(back.total_rows(), db.total_rows());
        // Row ids, pk index, and fk index all reconstructed exactly.
        let actor = db.schema().table_id("actor").unwrap();
        assert_eq!(back.schema().table_id("actor"), Some(actor));
        assert_eq!(back.table(actor).by_pk(1), db.table(actor).by_pk(1));
        for (fk, _) in db.schema().fks() {
            assert_eq!(back.fk_referrers(fk, 1), db.fk_referrers(fk, 1));
        }
        back.validate().unwrap();
        // Determinism: re-encoding the decoded database is byte-identical.
        assert_eq!(back.snapshot_bytes().unwrap(), bytes);
    }

    #[test]
    fn empty_database_roundtrips() {
        let mut b = SchemaBuilder::new();
        b.table("t", TableKind::Entity).pk("id").text_attr("x");
        let db = Database::new(b.finish().unwrap());
        let back = Database::from_snapshot_bytes(&db.snapshot_bytes().unwrap()).unwrap();
        assert_eq!(back.total_rows(), 0);
        assert_eq!(back.snapshot_bytes().unwrap(), db.snapshot_bytes().unwrap());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let db = sample_db();
        let mut bytes = db.snapshot_bytes().unwrap();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(
            Database::from_snapshot_bytes(&wrong).unwrap_err(),
            SnapshotError::BadMagic
        );
        bytes[8] = 99; // version field
        assert!(matches!(
            Database::from_snapshot_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let db = sample_db();
        let mut bytes = db.snapshot_bytes().unwrap();
        // Flip a byte well inside the schema section payload.
        let i = 40;
        bytes[i] ^= 0xFF;
        let err = Database::from_snapshot_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::BadChecksum { .. } | SnapshotError::Corrupt(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn every_truncation_fails_soft() {
        let db = sample_db();
        let bytes = db.snapshot_bytes().unwrap();
        for cut in 0..bytes.len() {
            let err = Database::from_snapshot_bytes(&bytes[..cut]).unwrap_err();
            // Never a panic, never a partially loaded Ok.
            let _ = err.to_string();
        }
    }

    #[test]
    fn batch_codec_roundtrips() {
        let batch: RowBatch = vec![
            (TableId(0), vec![Value::Int(7), Value::text("Tom Hanks")]),
            (
                TableId(2),
                vec![Value::Int(8), Value::Null, Value::Int(-3), Value::text("")],
            ),
        ];
        let bytes = encode_batch(&batch).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), batch);
        for cut in 0..bytes.len() {
            assert!(decode_batch(&bytes[..cut]).is_err());
        }
        let empty: RowBatch = vec![];
        assert_eq!(decode_batch(&encode_batch(&empty).unwrap()).unwrap(), empty);
    }

    #[test]
    fn save_and_load_via_file() {
        let db = sample_db();
        let path =
            std::env::temp_dir().join(format!("keybridge-snapshot-test-{}.kb", std::process::id()));
        db.save_snapshot(&path).unwrap();
        let back = Database::load_snapshot(&path).unwrap();
        assert_eq!(back.snapshot_bytes().unwrap(), db.snapshot_bytes().unwrap());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Database::load_snapshot(&path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn varints_roundtrip() {
        let u64s = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &u64s {
            put_varu64(&mut buf, v);
        }
        let i64s = [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN];
        for &v in &i64s {
            put_vari64(&mut buf, v);
        }
        put_varu32(&mut buf, u32::MAX);
        let mut c = Cursor::new(&buf);
        for &v in &u64s {
            assert_eq!(c.varu64().unwrap(), v);
        }
        for &v in &i64s {
            assert_eq!(c.vari64().unwrap(), v);
        }
        assert_eq!(c.varu32().unwrap(), u32::MAX);
        assert_eq!(c.remaining(), 0);
        // A u64-range varint read through the u32 reader is rejected.
        let mut big = Vec::new();
        put_varu64(&mut big, u32::MAX as u64 + 1);
        assert!(matches!(
            Cursor::new(&big).varu32().unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Truncated varint fails soft.
        let mut cont = Vec::new();
        put_varu64(&mut cont, u64::MAX);
        assert_eq!(
            Cursor::new(&cont[..5]).varu64().unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn len_u32_rejects_oversized() {
        // The 4 GiB boundary itself, without allocating 4 GiB.
        assert_eq!(len_u32("string", u32::MAX as usize).unwrap(), u32::MAX);
        assert_eq!(
            len_u32("string", u32::MAX as usize + 1).unwrap_err(),
            SnapshotError::TooLarge {
                what: "string",
                len: u32::MAX as usize + 1,
            }
        );
        let err = len_u32("batch row count", usize::MAX).unwrap_err();
        assert!(err.to_string().contains("batch row count"), "{err}");
    }

    #[test]
    fn dictionary_order_is_canonical_not_insert_order() {
        // Two databases with identical content built through different
        // insert interleavings (live ingest vs. table-major reload) must
        // produce byte-identical snapshots: the dictionary is derived from
        // the row walk, not from arena insertion order.
        let build = |interleaved: bool| {
            let mut b = SchemaBuilder::new();
            b.table("a", TableKind::Entity).pk("id").text_attr("x");
            b.table("m", TableKind::Entity).pk("id").text_attr("y");
            let mut db = Database::new(b.finish().unwrap());
            let a = db.schema().table_id("a").unwrap();
            let m = db.schema().table_id("m").unwrap();
            if interleaved {
                // "zulu" enters the arena first, via table m.
                db.insert(m, vec![Value::Int(1), Value::text("zulu")])
                    .unwrap();
                db.insert(a, vec![Value::Int(1), Value::text("alpha")])
                    .unwrap();
                db.insert(m, vec![Value::Int(2), Value::text("alpha")])
                    .unwrap();
            } else {
                db.insert(a, vec![Value::Int(1), Value::text("alpha")])
                    .unwrap();
                db.insert(m, vec![Value::Int(1), Value::text("zulu")])
                    .unwrap();
                db.insert(m, vec![Value::Int(2), Value::text("alpha")])
                    .unwrap();
            }
            db
        };
        assert_eq!(
            build(true).snapshot_bytes().unwrap(),
            build(false).snapshot_bytes().unwrap()
        );
    }

    #[test]
    fn dictionary_encoding_beats_naive_on_repeated_strings() {
        let mut b = SchemaBuilder::new();
        b.table("t", TableKind::Entity).pk("id").text_attr("x");
        let mut db = Database::new(b.finish().unwrap());
        let t = db.schema().table_id("t").unwrap();
        for i in 0..200 {
            let s = if i % 2 == 0 {
                "tom hanks"
            } else {
                "the terminal"
            };
            db.insert(t, vec![Value::Int(i), Value::text(s)]).unwrap();
        }
        let real = db.snapshot_bytes().unwrap().len() as u64;
        let naive = db.naive_snapshot_bytes();
        assert!(
            real * 4 < naive * 3,
            "dictionary snapshot ({real} B) should be at least 25% smaller \
             than the pre-diet encoding ({naive} B)"
        );
        // And the compact form still roundtrips exactly.
        let back = Database::from_snapshot_bytes(&db.snapshot_bytes().unwrap()).unwrap();
        assert_eq!(back.snapshot_bytes().unwrap(), db.snapshot_bytes().unwrap());
    }
}
