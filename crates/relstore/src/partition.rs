//! FK-closed partitioning of a database across K shards.
//!
//! A join tree can only be executed inside one store, so a horizontal
//! partition is *correct* exactly when every foreign-key edge stays within a
//! shard: rows connected (transitively) by foreign keys must be co-located.
//! This module computes those row-level connected components with a
//! union-find over the FK edges, balances whole components across shards
//! with a deterministic longest-processing-time (LPT) assignment, and splits
//! a database into per-shard stores whose per-table row order is the
//! restriction of the global row order (so merged per-shard results can be
//! put back into global order by a stable k-way merge).
//!
//! The [`ShardAssignment`] is keyed by `(table, primary key)` rather than
//! [`RowId`] so a live service can route rows that do not exist yet: a
//! pre-computed assignment over a full dataset keeps rows that a later
//! ingest will connect on the same shard from the start.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::schema::TableId;
use crate::value::RowId;
use std::collections::HashMap;

/// Which shard owns each `(table, primary key)`. Produced by
/// [`assign_shards`]; extended at runtime as new rows are routed.
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    shards: usize,
    map: Vec<HashMap<i64, usize>>,
}

impl ShardAssignment {
    /// An empty assignment over `shards` shards for a database with
    /// `table_count` tables.
    pub fn empty(shards: usize, table_count: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        ShardAssignment {
            shards,
            map: vec![HashMap::new(); table_count],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `(table, pk)`, if assigned.
    pub fn shard_of(&self, table: TableId, pk: i64) -> Option<usize> {
        self.map[table.0 as usize].get(&pk).copied()
    }

    /// Record that `(table, pk)` lives on `shard`.
    pub fn record(&mut self, table: TableId, pk: i64, shard: usize) {
        debug_assert!(shard < self.shards);
        self.map[table.0 as usize].insert(pk, shard);
    }

    /// Total number of assigned rows.
    pub fn len(&self) -> usize {
        self.map.iter().map(HashMap::len).sum()
    }

    /// Whether no row is assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministic FNV-1a shard hash for rows with no FK context at all —
/// the routing fallback of last resort for brand-new rootless rows.
pub fn hash_shard(table: TableId, pk: i64, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in table.0.to_le_bytes().into_iter().chain(pk.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The FK parents of one row: for every non-null foreign-key column
/// originating in `table`, the referenced `(parent table, parent row)`.
/// Parents missing from `db` are skipped (bulk-loaded stores may be
/// temporarily inconsistent).
pub fn fk_parents(db: &Database, table: TableId, row: RowId) -> Vec<(TableId, RowId)> {
    let mut out = Vec::new();
    for (_, fk) in db.schema().fks() {
        if fk.from.table != table {
            continue;
        }
        if let Some(key) = db.cell(table, row, fk.from).as_int() {
            if let Some(parent) = db.table(fk.to.table).by_pk(key) {
                out.push((fk.to.table, parent));
            }
        }
    }
    out
}

/// Union-find over row ordinals.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger ordinal under the smaller so component
            // representatives are stable, deterministic minima.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Compute the FK-connected row components of `db` and balance them across
/// `shards` shards: components are sorted by (size descending, smallest row
/// ordinal ascending) and each is placed on the currently least-loaded shard
/// (ties to the lowest shard index) — deterministic LPT.
pub fn assign_shards(db: &Database, shards: usize) -> ShardAssignment {
    assert!(shards > 0, "at least one shard");
    let table_count = db.schema().table_count();
    // Global ordinal of (table, row) = table offset + row index.
    let mut offset = vec![0usize; table_count + 1];
    for t in 0..table_count {
        offset[t + 1] = offset[t] + db.table(TableId(t as u32)).len();
    }
    let total = offset[table_count];
    let mut uf = UnionFind::new(total);
    for t in 0..table_count {
        let table = TableId(t as u32);
        for (row, _) in db.table(table).rows() {
            let me = (offset[t] + row.index()) as u32;
            for (pt, prow) in fk_parents(db, table, row) {
                let parent = (offset[pt.0 as usize] + prow.index()) as u32;
                uf.union(me, parent);
            }
        }
    }
    // Group ordinals by component representative, preserving ordinal order
    // within each component.
    let mut members: HashMap<u32, Vec<usize>> = HashMap::new();
    for ord in 0..total {
        members.entry(uf.find(ord as u32)).or_default().push(ord);
    }
    let mut components: Vec<Vec<usize>> = members.into_values().collect();
    components.sort_by_key(|c| (usize::MAX - c.len(), c[0]));

    let mut assignment = ShardAssignment::empty(shards, table_count);
    let mut load = vec![0usize; shards];
    for comp in components {
        let target = (0..shards)
            .min_by_key(|&s| load[s])
            .expect("at least one shard");
        load[target] += comp.len();
        for ord in comp {
            let t = match offset.binary_search(&ord) {
                Ok(mut i) => {
                    // Exact offset hit: skip empty tables sharing the offset.
                    while offset[i + 1] == ord {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            let table = TableId(t as u32);
            let row = RowId((ord - offset[t]) as u32);
            assignment.record(table, db.pk_value(table, row), target);
        }
    }
    assignment
}

/// A database split into per-shard stores plus, per shard and table, the
/// map from local [`RowId`] back to the global one. Local row order is the
/// restriction of global row order, so every `row_maps[s][t]` is strictly
/// increasing.
#[derive(Debug, Clone)]
pub struct ShardSplit {
    pub dbs: Vec<Database>,
    pub row_maps: Vec<Vec<Vec<RowId>>>,
}

/// Split `db` into one store per shard according to `assignment`. Rows not
/// covered by the assignment are an error (the assignment is expected to
/// come from [`assign_shards`] over this database or a superset of it).
pub fn split_database(db: &Database, assignment: &ShardAssignment) -> RelResult<ShardSplit> {
    let shards = assignment.shards();
    let table_count = db.schema().table_count();
    let mut dbs: Vec<Database> = (0..shards)
        .map(|_| Database::new(db.schema().clone()))
        .collect();
    let mut row_maps = vec![vec![Vec::new(); table_count]; shards];
    for (table, _) in db.schema().tables() {
        let t = table.0 as usize;
        for (row, values) in db.table(table).rows() {
            let pk = db.pk_value(table, row);
            let shard = assignment
                .shard_of(table, pk)
                .ok_or_else(|| RelError::UnassignedRow {
                    table: db.schema().table(table).name.clone(),
                    key: pk,
                })?;
            dbs[shard].insert(table, values.to_vec())?;
            row_maps[shard][t].push(row);
        }
    }
    for d in &dbs {
        d.validate()?;
    }
    Ok(ShardSplit { dbs, row_maps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, TableKind};
    use crate::value::Value;

    /// actor <- acts -> movie with two disjoint FK components plus one
    /// rootless actor.
    fn db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        for (id, name) in [(1, "Hanks"), (2, "Cruise"), (3, "Loner")] {
            db.insert(actor, vec![Value::Int(id), Value::text(name)])
                .unwrap();
        }
        for (id, title) in [(10, "Terminal"), (11, "Top Gun")] {
            db.insert(movie, vec![Value::Int(id), Value::text(title)])
                .unwrap();
        }
        // Component A: actor 1 - acts 100 - movie 10.
        // Component B: actor 2 - acts 101 - movie 11.
        // Component C: actor 3 alone.
        for (id, a, m) in [(100, 1, 10), (101, 2, 11)] {
            db.insert(acts, vec![Value::Int(id), Value::Int(a), Value::Int(m)])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    #[test]
    fn components_stay_whole() {
        let db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        let a = assign_shards(&db, 2);
        assert_eq!(a.len(), 7);
        // Every FK edge is intra-shard.
        for (acts_pk, actor_pk, movie_pk) in [(100, 1, 10), (101, 2, 11)] {
            let s = a.shard_of(acts, acts_pk).unwrap();
            assert_eq!(a.shard_of(actor, actor_pk), Some(s));
            assert_eq!(a.shard_of(movie, movie_pk), Some(s));
        }
        // LPT balances the two 3-row components onto different shards.
        assert_ne!(a.shard_of(acts, 100), a.shard_of(acts, 101));
    }

    #[test]
    fn assignment_is_deterministic() {
        let db = db();
        let acts = db.schema().table_id("acts").unwrap();
        let a1 = assign_shards(&db, 3);
        let a2 = assign_shards(&db, 3);
        for pk in [100, 101] {
            assert_eq!(a1.shard_of(acts, pk), a2.shard_of(acts, pk));
        }
    }

    #[test]
    fn split_preserves_row_order_and_validates() {
        let db = db();
        let split = split_database(&db, &assign_shards(&db, 2)).unwrap();
        assert_eq!(split.dbs.len(), 2);
        let total: usize = split.dbs.iter().map(Database::total_rows).sum();
        assert_eq!(total, db.total_rows());
        for maps in &split.row_maps {
            for m in maps {
                assert!(m.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
            }
        }
        // Local rows carry the same values as their global counterparts.
        let actor = db.schema().table_id("actor").unwrap();
        for (s, shard_db) in split.dbs.iter().enumerate() {
            for (local, _) in shard_db.table(actor).rows() {
                let global = split.row_maps[s][actor.0 as usize][local.index()];
                assert_eq!(
                    shard_db.table(actor).row(local),
                    db.table(actor).row(global)
                );
            }
        }
    }

    #[test]
    fn hash_shard_is_stable() {
        let t = TableId(1);
        assert_eq!(hash_shard(t, 42, 4), hash_shard(t, 42, 4));
        assert!(hash_shard(t, 42, 4) < 4);
    }
}
