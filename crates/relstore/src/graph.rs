//! The undirected schema graph (Fig. 2.2 of the paper): nodes are tables,
//! edges are foreign keys. Query templates are connected subtrees of this
//! graph; candidate-network enumeration walks it breadth-first.

use crate::schema::{FkId, Schema, TableId};

/// One undirected edge of the schema graph, remembering which foreign key
/// induced it and its orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// The foreign key behind this edge.
    pub fk: FkId,
    /// The table on the referencing (`from`) side of the foreign key.
    pub from_table: TableId,
    /// The table on the referenced (`to`) side of the foreign key.
    pub to_table: TableId,
}

impl GraphEdge {
    /// Given one endpoint, return the other.
    pub fn other(&self, t: TableId) -> TableId {
        if t == self.from_table {
            self.to_table
        } else {
            self.from_table
        }
    }

    /// Whether `t` is an endpoint of this edge.
    pub fn touches(&self, t: TableId) -> bool {
        t == self.from_table || t == self.to_table
    }
}

/// Adjacency view over the foreign keys of a [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    adj: Vec<Vec<GraphEdge>>,
}

impl SchemaGraph {
    /// Build the graph from a schema.
    pub fn new(schema: &Schema) -> Self {
        let mut adj = vec![Vec::new(); schema.table_count()];
        for (fk_id, fk) in schema.fks() {
            let e = GraphEdge {
                fk: fk_id,
                from_table: fk.from.table,
                to_table: fk.to.table,
            };
            adj[fk.from.table.0 as usize].push(e);
            if fk.to.table != fk.from.table {
                adj[fk.to.table.0 as usize].push(e);
            }
        }
        SchemaGraph { adj }
    }

    /// Number of nodes (tables).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// All edges incident to `t`.
    pub fn neighbors(&self, t: TableId) -> &[GraphEdge] {
        &self.adj[t.0 as usize]
    }

    /// Degree of `t`.
    pub fn degree(&self, t: TableId) -> usize {
        self.adj[t.0 as usize].len()
    }

    /// Whether every table is reachable from table 0 (useful sanity check
    /// for generated schemas; an unconnected schema cannot join everything).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![TableId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(t) = stack.pop() {
            for e in self.neighbors(t) {
                let o = e.other(t);
                if !seen[o.0 as usize] {
                    seen[o.0 as usize] = true;
                    count += 1;
                    stack.push(o);
                }
            }
        }
        count == self.adj.len()
    }

    /// Length (in edges) of the shortest path between two tables, if any.
    /// Used to bound template enumeration and by tests.
    pub fn shortest_path_len(&self, a: TableId, b: TableId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.adj.len()];
        dist[a.0 as usize] = 0;
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(t) = queue.pop_front() {
            let d = dist[t.0 as usize];
            for e in self.neighbors(t) {
                let o = e.other(t);
                if dist[o.0 as usize] == usize::MAX {
                    dist[o.0 as usize] = d + 1;
                    if o == b {
                        return Some(d + 1);
                    }
                    queue.push_back(o);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, TableKind};

    fn chain_schema(n: usize) -> Schema {
        // t0 <- t1 <- t2 ... a chain of FKs.
        let mut b = SchemaBuilder::new();
        for i in 0..n {
            let name = format!("t{i}");
            let tb = b.table(&name, TableKind::Entity).pk("id");
            if i > 0 {
                tb.int_attr("parent_id");
            }
        }
        for i in 1..n {
            b.foreign_key(&format!("t{i}"), "parent_id", &format!("t{}", i - 1))
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_adjacency() {
        let s = chain_schema(4);
        let g = SchemaGraph::new(&s);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(TableId(0)), 1);
        assert_eq!(g.degree(TableId(1)), 2);
        assert_eq!(g.degree(TableId(3)), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn edge_other_endpoint() {
        let s = chain_schema(2);
        let g = SchemaGraph::new(&s);
        let e = g.neighbors(TableId(0))[0];
        assert_eq!(e.other(TableId(0)), TableId(1));
        assert_eq!(e.other(TableId(1)), TableId(0));
        assert!(e.touches(TableId(0)) && e.touches(TableId(1)));
    }

    #[test]
    fn shortest_paths() {
        let s = chain_schema(5);
        let g = SchemaGraph::new(&s);
        assert_eq!(g.shortest_path_len(TableId(0), TableId(0)), Some(0));
        assert_eq!(g.shortest_path_len(TableId(0), TableId(4)), Some(4));
        assert_eq!(g.shortest_path_len(TableId(1), TableId(3)), Some(2));
    }

    #[test]
    fn disconnected_detected() {
        let mut b = SchemaBuilder::new();
        b.table("a", TableKind::Entity).pk("id");
        b.table("b", TableKind::Entity).pk("id");
        let s = b.finish().unwrap();
        let g = SchemaGraph::new(&s);
        assert!(!g.is_connected());
        assert_eq!(g.shortest_path_len(TableId(0), TableId(1)), None);
    }

    #[test]
    fn self_referencing_fk_single_adjacency() {
        let mut b = SchemaBuilder::new();
        b.table("emp", TableKind::Entity)
            .pk("id")
            .int_attr("boss_id");
        b.foreign_key("emp", "boss_id", "emp").unwrap();
        let s = b.finish().unwrap();
        let g = SchemaGraph::new(&s);
        // A self-loop appears once, not twice.
        assert_eq!(g.degree(TableId(0)), 1);
        assert!(g.is_connected());
    }
}
