//! Scalar values and row identifiers.

use std::fmt;
use std::sync::Arc;

/// Index of a row within one table. Rows are append-only, so a `RowId` is
/// stable for the lifetime of the [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The row index as a `usize`, for direct indexing into row storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The type of an attribute (column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit integers; used for keys and numeric attributes (e.g. year).
    Int,
    /// UTF-8 text; the only type the inverted index covers.
    Text,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => f.write_str("INT"),
            ValueType::Text => f.write_str("TEXT"),
        }
    }
}

/// A scalar cell value.
///
/// Text payloads are shared [`Arc<str>`] handles rather than owned `String`s:
/// the [`crate::Database`] interns every text cell into a per-database string
/// arena, so cloning a row — or the whole database, as the ingest path does
/// for its writer copy — bumps reference counts instead of deep-copying every
/// string. Equality and hashing compare string *contents*, exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    Int(i64),
    Text(Arc<str>),
    Null,
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<Arc<str>>) -> Self {
        Value::Text(s.into())
    }

    /// Whether this value conforms to `ty` (`Null` conforms to every type).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Int(_), ValueType::Int) | (Value::Text(_), ValueType::Text) | (Value::Null, _)
        )
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(&**s),
            _ => None,
        }
    }

    /// The shared text handle, if any. Cloning the returned `Arc` is a
    /// refcount bump; used by the arena to canonicalize without re-allocating.
    pub fn as_text_arc(&self) -> Option<&Arc<str>> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => f.write_str(s),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        assert!(Value::Int(3).conforms_to(ValueType::Int));
        assert!(!Value::Int(3).conforms_to(ValueType::Text));
        assert!(Value::text("x").conforms_to(ValueType::Text));
        assert!(!Value::text("x").conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Text));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_text(), None);
        assert_eq!(Value::text("a").as_text(), Some("a"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::text("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(ValueType::Int.to_string(), "INT");
        assert_eq!(ValueType::Text.to_string(), "TEXT");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(String::from("t")), Value::text("t"));
    }

    #[test]
    fn row_id_index() {
        assert_eq!(RowId(9).index(), 9);
    }

    #[test]
    fn text_clone_shares_allocation() {
        let v = Value::text("shared payload");
        let w = v.clone();
        let (a, b) = (v.as_text_arc().unwrap(), w.as_text_arc().unwrap());
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(v.as_text(), Some("shared payload"));
        assert_eq!(Value::Int(1).as_text_arc(), None);
    }
}
