//! Catalog: tables, attributes, primary keys, and foreign keys.

use crate::error::{RelError, RelResult};
use crate::value::ValueType;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a table within one [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of an attribute within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Identifier of a foreign key within one [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FkId(pub u32);

/// A fully qualified attribute reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    pub table: TableId,
    pub attr: AttrId,
}

/// Whether a table models entities or an m:n relationship. Keyword search
/// treats them identically; the distinction matters for data generation and
/// for rendering query interpretations in natural language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    Entity,
    Relation,
}

/// An attribute (column) definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    pub name: String,
    pub ty: ValueType,
}

/// A table definition. The primary key is always the attribute at index
/// `pk` and must have type [`ValueType::Int`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub kind: TableKind,
    pub attrs: Vec<AttributeDef>,
    pub pk: AttrId,
}

impl TableDef {
    /// Look up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
    }

    /// The definition of the given attribute.
    pub fn attr(&self, id: AttrId) -> &AttributeDef {
        &self.attrs[id.0 as usize]
    }

    /// Iterate over `(AttrId, &AttributeDef)` pairs.
    pub fn attrs_with_ids(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
    }

    /// Iterate over the text attributes of the table.
    pub fn text_attrs(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.attrs_with_ids()
            .filter(|(_, a)| a.ty == ValueType::Text)
    }
}

/// A foreign key: `from` (the referencing column) points at the primary key
/// of `to.table`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    pub from: AttrRef,
    pub to: AttrRef,
}

/// An immutable catalog of tables and foreign keys.
#[derive(Debug, Clone)]
pub struct Schema {
    tables: Vec<TableDef>,
    fks: Vec<ForeignKey>,
    by_name: HashMap<String, TableId>,
}

impl Schema {
    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of foreign keys.
    pub fn fk_count(&self) -> usize {
        self.fks.len()
    }

    /// Look up a table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// The definition of `id`.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0 as usize]
    }

    /// Iterate over `(TableId, &TableDef)`.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableDef)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The foreign key `id`.
    pub fn fk(&self, id: FkId) -> &ForeignKey {
        &self.fks[id.0 as usize]
    }

    /// Iterate over `(FkId, &ForeignKey)`.
    pub fn fks(&self) -> impl Iterator<Item = (FkId, &ForeignKey)> {
        self.fks
            .iter()
            .enumerate()
            .map(|(i, k)| (FkId(i as u32), k))
    }

    /// Resolve `"table.attr"`-style references.
    pub fn resolve(&self, table: &str, attr: &str) -> RelResult<AttrRef> {
        let tid = self
            .table_id(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_owned()))?;
        let aid = self
            .table(tid)
            .attr_id(attr)
            .ok_or_else(|| RelError::UnknownAttribute {
                table: table.to_owned(),
                attr: attr.to_owned(),
            })?;
        Ok(AttrRef {
            table: tid,
            attr: aid,
        })
    }

    /// Human-readable `"table.attr"` label for an attribute reference.
    pub fn attr_label(&self, r: AttrRef) -> String {
        let t = self.table(r.table);
        format!("{}.{}", t.name, t.attr(r.attr).name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tid, t) in self.tables() {
            write!(f, "{} (", t.name)?;
            for (i, a) in t.attrs.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{} {}", a.name, a.ty)?;
                if AttrId(i as u32) == t.pk {
                    f.write_str(" PK")?;
                }
            }
            writeln!(f, ")")?;
            for (_, fk) in self.fks().filter(|(_, fk)| fk.from.table == tid) {
                writeln!(
                    f,
                    "  FK {} -> {}",
                    self.attr_label(fk.from),
                    self.attr_label(fk.to)
                )?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for one table inside a [`SchemaBuilder`].
pub struct TableBuilder<'a> {
    def: &'a mut TableDef,
    seen_pk: &'a mut bool,
}

impl TableBuilder<'_> {
    /// Declare the integer primary-key attribute (conventionally first).
    pub fn pk(self, name: &str) -> Self {
        let id = AttrId(self.def.attrs.len() as u32);
        self.def.attrs.push(AttributeDef {
            name: name.to_owned(),
            ty: ValueType::Int,
        });
        self.def.pk = id;
        *self.seen_pk = true;
        self
    }

    /// Declare a text attribute.
    pub fn text_attr(self, name: &str) -> Self {
        self.def.attrs.push(AttributeDef {
            name: name.to_owned(),
            ty: ValueType::Text,
        });
        self
    }

    /// Declare an integer attribute (e.g. a foreign-key column or a year).
    pub fn int_attr(self, name: &str) -> Self {
        self.def.attrs.push(AttributeDef {
            name: name.to_owned(),
            ty: ValueType::Int,
        });
        self
    }
}

/// Builder for [`Schema`]. Tables are declared first, then foreign keys;
/// `finish` validates the result.
#[derive(Default)]
pub struct SchemaBuilder {
    tables: Vec<TableDef>,
    pk_seen: Vec<bool>,
    fks: Vec<(String, String, String)>,
}

impl SchemaBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new table. Attributes are added through the returned builder.
    pub fn table(&mut self, name: &str, kind: TableKind) -> TableBuilder<'_> {
        self.tables.push(TableDef {
            name: name.to_owned(),
            kind,
            attrs: Vec::new(),
            pk: AttrId(0),
        });
        self.pk_seen.push(false);
        let def = self.tables.last_mut().expect("just pushed");
        let seen = self.pk_seen.last_mut().expect("just pushed");
        TableBuilder { def, seen_pk: seen }
    }

    /// Declare a foreign key from `from_table.from_attr` to the primary key
    /// of `to_table`. Name resolution is deferred to [`Self::finish`], but a
    /// cheap existence check runs eagerly so mistakes fail close to the call.
    pub fn foreign_key(
        &mut self,
        from_table: &str,
        from_attr: &str,
        to_table: &str,
    ) -> RelResult<()> {
        let ft = self
            .tables
            .iter()
            .find(|t| t.name == from_table)
            .ok_or_else(|| RelError::UnknownTable(from_table.to_owned()))?;
        if ft.attr_id(from_attr).is_none() {
            return Err(RelError::UnknownAttribute {
                table: from_table.to_owned(),
                attr: from_attr.to_owned(),
            });
        }
        if !self.tables.iter().any(|t| t.name == to_table) {
            return Err(RelError::UnknownTable(to_table.to_owned()));
        }
        self.fks.push((
            from_table.to_owned(),
            from_attr.to_owned(),
            to_table.to_owned(),
        ));
        Ok(())
    }

    /// Validate and freeze the schema.
    pub fn finish(self) -> RelResult<Schema> {
        let mut by_name = HashMap::with_capacity(self.tables.len());
        for (i, t) in self.tables.iter().enumerate() {
            if by_name.insert(t.name.clone(), TableId(i as u32)).is_some() {
                return Err(RelError::DuplicateTable(t.name.clone()));
            }
            if !self.pk_seen[i] {
                return Err(RelError::MissingPrimaryKey(t.name.clone()));
            }
            let mut seen = HashMap::new();
            for a in &t.attrs {
                if seen.insert(a.name.as_str(), ()).is_some() {
                    return Err(RelError::DuplicateAttribute {
                        table: t.name.clone(),
                        attr: a.name.clone(),
                    });
                }
            }
        }
        let mut fks = Vec::with_capacity(self.fks.len());
        for (ft, fa, tt) in &self.fks {
            let from_tid = by_name[ft.as_str()];
            let from_def = &self.tables[from_tid.0 as usize];
            let from_aid = from_def.attr_id(fa).expect("checked in foreign_key");
            if from_def.attr(from_aid).ty != ValueType::Int {
                return Err(RelError::NonIntegerKey {
                    table: ft.clone(),
                    attr: fa.clone(),
                });
            }
            let to_tid = by_name[tt.as_str()];
            let to_pk = self.tables[to_tid.0 as usize].pk;
            fks.push(ForeignKey {
                from: AttrRef {
                    table: from_tid,
                    attr: from_aid,
                },
                to: AttrRef {
                    table: to_tid,
                    attr: to_pk,
                },
            });
        }
        Ok(Schema {
            tables: self.tables,
            fks,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id")
            .text_attr("role");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_resolves() {
        let s = movie_schema();
        assert_eq!(s.table_count(), 3);
        assert_eq!(s.fk_count(), 2);
        let actor = s.table_id("actor").unwrap();
        assert_eq!(s.table(actor).name, "actor");
        let r = s.resolve("movie", "title").unwrap();
        assert_eq!(s.attr_label(r), "movie.title");
        assert!(s.table_id("nope").is_none());
    }

    #[test]
    fn fk_targets_pk() {
        let s = movie_schema();
        for (_, fk) in s.fks() {
            assert_eq!(fk.to.attr, s.table(fk.to.table).pk);
        }
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("t", TableKind::Entity).pk("id");
        b.table("t", TableKind::Entity).pk("id");
        assert_eq!(
            b.finish().unwrap_err(),
            RelError::DuplicateTable("t".into())
        );
    }

    #[test]
    fn duplicate_attr_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("t", TableKind::Entity)
            .pk("id")
            .text_attr("x")
            .text_attr("x");
        assert!(matches!(
            b.finish().unwrap_err(),
            RelError::DuplicateAttribute { .. }
        ));
    }

    #[test]
    fn missing_pk_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("t", TableKind::Entity).text_attr("x");
        assert_eq!(
            b.finish().unwrap_err(),
            RelError::MissingPrimaryKey("t".into())
        );
    }

    #[test]
    fn fk_from_text_rejected() {
        let mut b = SchemaBuilder::new();
        b.table("a", TableKind::Entity).pk("id").text_attr("ref");
        b.table("b", TableKind::Entity).pk("id");
        b.foreign_key("a", "ref", "b").unwrap();
        assert!(matches!(
            b.finish().unwrap_err(),
            RelError::NonIntegerKey { .. }
        ));
    }

    #[test]
    fn fk_unknown_names_rejected_eagerly() {
        let mut b = SchemaBuilder::new();
        b.table("a", TableKind::Entity).pk("id");
        assert!(b.foreign_key("zzz", "id", "a").is_err());
        assert!(b.foreign_key("a", "zzz", "a").is_err());
        assert!(b.foreign_key("a", "id", "zzz").is_err());
    }

    #[test]
    fn resolve_unknown() {
        let s = movie_schema();
        assert!(s.resolve("nope", "x").is_err());
        assert!(s.resolve("actor", "nope").is_err());
    }

    #[test]
    fn display_lists_tables_and_fks() {
        let s = movie_schema();
        let text = s.to_string();
        assert!(text.contains("actor"));
        assert!(text.contains("FK acts.actor_id -> actor.id"));
        assert!(text.contains("id INT PK"));
    }

    #[test]
    fn text_attr_iterator() {
        let s = movie_schema();
        let acts = s.table_id("acts").unwrap();
        let names: Vec<_> = s
            .table(acts)
            .text_attrs()
            .map(|(_, a)| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["role"]);
    }
}
