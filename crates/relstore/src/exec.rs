//! Execution of join trees (the relational shape of candidate networks).
//!
//! A [`JoinTree`] has one node per table *occurrence* — the same table may
//! appear several times (e.g. a movie with two actors joins `acts` twice) —
//! and tree edges labelled with the foreign key that connects two occurrences.
//!
//! The executor receives, per node, an optional candidate row set (the rows
//! matching that node's keyword predicates, produced by the inverted index).
//! `None` means the node is a *free* table: any row may participate. It then
//! performs hash joins along the tree, starting from the most selective bound
//! node, and returns joining tuple trees (JTTs): one [`RowId`] per node.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::schema::{FkId, TableId};
use crate::value::RowId;
use std::collections::HashSet;

/// An edge of a join tree: node indexes into [`JoinTree::nodes`] plus the
/// foreign key joining the two table occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTreeEdge {
    pub a: usize,
    pub b: usize,
    pub fk: FkId,
}

/// A tree of table occurrences joined along foreign keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    pub nodes: Vec<TableId>,
    pub edges: Vec<JoinTreeEdge>,
}

impl JoinTree {
    /// A single-table tree.
    pub fn single(table: TableId) -> Self {
        JoinTree {
            nodes: vec![table],
            edges: Vec::new(),
        }
    }

    /// Number of joins (edges).
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }

    /// Check the tree shape: `nodes.len() == edges.len() + 1`, all edge
    /// endpoints valid and connected, and every edge's foreign key actually
    /// joins the two endpoint tables (in either orientation).
    pub fn validate(&self, db: &Database) -> RelResult<()> {
        if self.nodes.is_empty() {
            return Err(RelError::MalformedJoinTree("empty tree".into()));
        }
        if self.edges.len() + 1 != self.nodes.len() {
            return Err(RelError::MalformedJoinTree(format!(
                "{} nodes but {} edges",
                self.nodes.len(),
                self.edges.len()
            )));
        }
        for e in &self.edges {
            if e.a >= self.nodes.len() || e.b >= self.nodes.len() || e.a == e.b {
                return Err(RelError::MalformedJoinTree("bad edge endpoints".into()));
            }
            let fk = db.schema().fk(e.fk);
            let (ta, tb) = (self.nodes[e.a], self.nodes[e.b]);
            let forward = fk.from.table == ta && fk.to.table == tb;
            let backward = fk.from.table == tb && fk.to.table == ta;
            if !forward && !backward {
                return Err(RelError::MalformedJoinTree(
                    "edge fk does not join its endpoints".into(),
                ));
            }
        }
        // Connectivity via union-find over edges.
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for e in &self.edges {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra == rb {
                return Err(RelError::MalformedJoinTree("cycle".into()));
            }
            parent[ra] = rb;
        }
        Ok(())
    }
}

/// Per-node candidate rows. `None` = unrestricted (free table).
#[derive(Debug, Clone, Default)]
pub struct Candidates {
    pub per_node: Vec<Option<Vec<RowId>>>,
}

impl Candidates {
    /// All nodes unrestricted.
    pub fn free(n: usize) -> Self {
        Candidates {
            per_node: vec![None; n],
        }
    }

    /// Restrict node `i` to `rows`.
    pub fn restrict(mut self, i: usize, rows: Vec<RowId>) -> Self {
        self.per_node[i] = Some(rows);
        self
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Stop after this many result tuples.
    pub limit: usize,
    /// Abort if the intermediate binding count exceeds this bound
    /// (protects against free-table blowups).
    pub max_intermediate: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            limit: 1000,
            max_intermediate: 200_000,
        }
    }
}

/// One result: a row id per join-tree node (a joining tuple tree).
pub type JoinedRow = Vec<RowId>;

/// Execute `tree` over `db` with per-node `candidates`.
///
/// Strategy: pick the bound node with the fewest candidates as the seed, then
/// repeatedly attach the tree edge whose far node is cheapest to join
/// (bound nodes first), probing either the primary-key index (fk -> pk
/// direction) or the foreign-key index (pk -> fk direction).
pub fn execute_join_tree(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
) -> RelResult<Vec<JoinedRow>> {
    tree.validate(db)?;
    if candidates.per_node.len() != tree.nodes.len() {
        return Err(RelError::MalformedJoinTree(
            "candidate arity mismatch".into(),
        ));
    }

    let n = tree.nodes.len();
    // Estimated cardinality per node, used to order the join.
    let node_card = |i: usize| -> usize {
        match &candidates.per_node[i] {
            Some(rows) => rows.len(),
            None => db.table(tree.nodes[i]).len(),
        }
    };

    // Seed: the most selective node.
    let seed = (0..n).min_by_key(|&i| node_card(i)).expect("non-empty");

    // Partial bindings: each is a Vec<Option<RowId>> indexed by node.
    let mut bindings: Vec<Vec<Option<RowId>>> = Vec::new();
    let seed_rows: Vec<RowId> = match &candidates.per_node[seed] {
        Some(rows) => rows.clone(),
        None => db.table(tree.nodes[seed]).rows().map(|(r, _)| r).collect(),
    };
    for r in seed_rows {
        let mut b = vec![None; n];
        b[seed] = Some(r);
        bindings.push(b);
    }

    let cand_sets: Vec<Option<HashSet<RowId>>> = candidates
        .per_node
        .iter()
        .map(|c| c.as_ref().map(|rows| rows.iter().copied().collect()))
        .collect();

    let mut joined = vec![false; n];
    joined[seed] = true;
    let mut remaining_edges: Vec<JoinTreeEdge> = tree.edges.clone();

    while !remaining_edges.is_empty() {
        // Choose the attachable edge whose new node is cheapest.
        let pos = remaining_edges
            .iter()
            .position(|e| joined[e.a] != joined[e.b])
            .ok_or_else(|| RelError::MalformedJoinTree("disconnected tree".into()))?;
        let best = remaining_edges
            .iter()
            .enumerate()
            .filter(|(_, e)| joined[e.a] != joined[e.b])
            .min_by_key(|(_, e)| {
                let new = if joined[e.a] { e.b } else { e.a };
                node_card(new)
            })
            .map(|(i, _)| i)
            .unwrap_or(pos);
        let edge = remaining_edges.swap_remove(best);
        let (known, new) = if joined[edge.a] {
            (edge.a, edge.b)
        } else {
            (edge.b, edge.a)
        };
        joined[new] = true;

        let fk = *db.schema().fk(edge.fk);
        let known_table = tree.nodes[known];
        let new_table = tree.nodes[new];
        // Forward: known node holds the fk column, probe parent's pk index.
        let forward = fk.from.table == known_table && fk.to.table == new_table;

        let mut next: Vec<Vec<Option<RowId>>> = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let known_row = b[known].expect("joined nodes are bound");
            if forward {
                let key = db.cell(known_table, known_row, fk.from);
                let Some(key) = key.as_int() else { continue };
                let Some(parent) = db.table(new_table).by_pk(key) else {
                    continue;
                };
                if let Some(set) = &cand_sets[new] {
                    if !set.contains(&parent) {
                        continue;
                    }
                }
                let mut nb = b.clone();
                nb[new] = Some(parent);
                next.push(nb);
            } else {
                // Backward: new node holds the fk column referencing known's pk.
                let key = db.pk_value(known_table, known_row);
                for &child in db.fk_referrers(edge.fk, key) {
                    if let Some(set) = &cand_sets[new] {
                        if !set.contains(&child) {
                            continue;
                        }
                    }
                    let mut nb = b.clone();
                    nb[new] = Some(child);
                    next.push(nb);
                }
            }
            if next.len() > opts.max_intermediate {
                return Err(RelError::MalformedJoinTree(
                    "intermediate result exceeds max_intermediate".into(),
                ));
            }
        }
        bindings = next;
        if bindings.is_empty() {
            return Ok(Vec::new());
        }
    }

    Ok(bindings
        .into_iter()
        .take(opts.limit)
        .map(|b| b.into_iter().map(|r| r.expect("all nodes bound")).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, TableKind};
    use crate::value::Value;

    /// actor(id,name) <- acts(id,actor_id,movie_id) -> movie(id,title,year)
    fn movie_db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity).pk("id").text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        for (id, name) in [(1, "Tom Hanks"), (2, "Tom Cruise"), (3, "Meg Ryan")] {
            db.insert(actor, vec![Value::Int(id), Value::text(name)])
                .unwrap();
        }
        for (id, title, year) in [
            (10, "The Terminal", 2004),
            (11, "Top Gun", 1986),
            (12, "Joe vs the Volcano", 1990),
        ] {
            db.insert(
                movie,
                vec![Value::Int(id), Value::text(title), Value::Int(year)],
            )
            .unwrap();
        }
        // Hanks in Terminal & Volcano, Cruise in Top Gun, Ryan in Volcano.
        for (id, a, m) in [(100, 1, 10), (101, 2, 11), (102, 1, 12), (103, 3, 12)] {
            db.insert(acts, vec![Value::Int(id), Value::Int(a), Value::Int(m)])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    fn actor_acts_movie_tree(db: &Database) -> JoinTree {
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        let fk_actor = s.fks().find(|(_, f)| f.to.table == actor).unwrap().0;
        let fk_movie = s.fks().find(|(_, f)| f.to.table == movie).unwrap().0;
        JoinTree {
            nodes: vec![actor, acts, movie],
            edges: vec![
                JoinTreeEdge { a: 1, b: 0, fk: fk_actor },
                JoinTreeEdge { a: 1, b: 2, fk: fk_movie },
            ],
        }
    }

    #[test]
    fn full_join_unrestricted() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let rows = execute_join_tree(&db, &tree, &Candidates::free(3), ExecOptions::default())
            .unwrap();
        assert_eq!(rows.len(), 4); // one JTT per acts row
    }

    #[test]
    fn restricted_join() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let hanks = db.table(actor).by_pk(1).unwrap();
        let cands = Candidates::free(3).restrict(0, vec![hanks]);
        let rows = execute_join_tree(&db, &tree, &cands, ExecOptions::default()).unwrap();
        assert_eq!(rows.len(), 2); // Terminal + Volcano
        for r in &rows {
            assert_eq!(r[0], hanks);
        }
    }

    #[test]
    fn doubly_restricted_join() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let hanks = db.table(actor).by_pk(1).unwrap();
        let terminal = db.table(movie).by_pk(10).unwrap();
        let cands = Candidates::free(3)
            .restrict(0, vec![hanks])
            .restrict(2, vec![terminal]);
        let rows = execute_join_tree(&db, &tree, &cands, ExecOptions::default()).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn empty_candidates_empty_result() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let cands = Candidates::free(3).restrict(0, vec![]);
        let rows = execute_join_tree(&db, &tree, &cands, ExecOptions::default()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn self_join_two_actors() {
        // actor - acts - movie - acts - actor: movies with two named actors.
        let db = movie_db();
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        let fk_actor = s.fks().find(|(_, f)| f.to.table == actor).unwrap().0;
        let fk_movie = s.fks().find(|(_, f)| f.to.table == movie).unwrap().0;
        let tree = JoinTree {
            nodes: vec![actor, acts, movie, acts, actor],
            edges: vec![
                JoinTreeEdge { a: 1, b: 0, fk: fk_actor },
                JoinTreeEdge { a: 1, b: 2, fk: fk_movie },
                JoinTreeEdge { a: 3, b: 2, fk: fk_movie },
                JoinTreeEdge { a: 3, b: 4, fk: fk_actor },
            ],
        };
        let hanks = db.table(actor).by_pk(1).unwrap();
        let ryan = db.table(actor).by_pk(3).unwrap();
        let cands = Candidates::free(5)
            .restrict(0, vec![hanks])
            .restrict(4, vec![ryan]);
        let rows = execute_join_tree(&db, &tree, &cands, ExecOptions::default()).unwrap();
        assert_eq!(rows.len(), 1); // Joe vs the Volcano
        let volcano = db.table(movie).by_pk(12).unwrap();
        assert_eq!(rows[0][2], volcano);
    }

    #[test]
    fn limit_respected() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let opts = ExecOptions {
            limit: 2,
            ..Default::default()
        };
        let rows = execute_join_tree(&db, &tree, &Candidates::free(3), opts).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn malformed_trees_rejected() {
        let db = movie_db();
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let fk0 = s.fks().next().unwrap().0;
        // Empty.
        let t = JoinTree { nodes: vec![], edges: vec![] };
        assert!(t.validate(&db).is_err());
        // Edge count mismatch.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![],
        };
        assert!(t.validate(&db).is_err());
        // Self edge.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![JoinTreeEdge { a: 0, b: 0, fk: fk0 }],
        };
        assert!(t.validate(&db).is_err());
        // FK does not join endpoints.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![JoinTreeEdge { a: 0, b: 1, fk: fk0 }],
        };
        assert!(t.validate(&db).is_err());
    }

    #[test]
    fn candidate_arity_checked() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let err = execute_join_tree(&db, &tree, &Candidates::free(2), ExecOptions::default())
            .unwrap_err();
        assert!(matches!(err, RelError::MalformedJoinTree(_)));
    }

    #[test]
    fn single_node_tree() {
        let db = movie_db();
        let movie = db.schema().table_id("movie").unwrap();
        let tree = JoinTree::single(movie);
        let rows = execute_join_tree(&db, &tree, &Candidates::free(1), ExecOptions::default())
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(tree.join_count(), 0);
    }
}
