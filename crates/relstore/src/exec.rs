//! Execution of join trees (the relational shape of candidate networks).
//!
//! A [`JoinTree`] has one node per table *occurrence* — the same table may
//! appear several times (e.g. a movie with two actors joins `acts` twice) —
//! and tree edges labelled with the foreign key that connects two occurrences.
//!
//! The executor receives, per node, an optional candidate row set (the rows
//! matching that node's keyword predicates, produced by the inverted index).
//! `None` means the node is a *free* table: any row may participate. It
//! returns joining tuple trees (JTTs): one [`RowId`] per node.
//!
//! Two strategies are available (see [`ExecStrategy`]):
//!
//! * **Hash join** (the default): a semi-join reduction pre-pass — one
//!   bottom-up and one top-down sweep over the tree, the Yannakakis full
//!   reducer — shrinks every candidate set to rows that participate in at
//!   least one complete JTT. Bindings then grow in *columnar batches* (one
//!   `Vec<RowId>` column per joined node, struct-of-arrays) by build/probe
//!   hash joins along the tree, attaching the most selective node first.
//!   Because the tree is fully reduced, every partial binding is guaranteed
//!   to extend to a result, so [`ExecOptions::limit`] can cut *every* batch,
//!   not just the final one — the executor streams top-`limit` answers
//!   without materializing the full join.
//! * **Naive** nested-loop expansion: the original executor — one
//!   `Vec<Option<RowId>>` per partial binding, cloned on every edge attach —
//!   retained as the correctness oracle for the differential test suite.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::schema::{FkId, ForeignKey, TableId};
use crate::value::RowId;
use std::collections::{HashMap, HashSet};

/// An edge of a join tree: node indexes into [`JoinTree::nodes`] plus the
/// foreign key joining the two table occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTreeEdge {
    pub a: usize,
    pub b: usize,
    pub fk: FkId,
}

/// A tree of table occurrences joined along foreign keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    pub nodes: Vec<TableId>,
    pub edges: Vec<JoinTreeEdge>,
}

impl JoinTree {
    /// A single-table tree.
    pub fn single(table: TableId) -> Self {
        JoinTree {
            nodes: vec![table],
            edges: Vec::new(),
        }
    }

    /// Number of joins (edges).
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }

    /// Check the tree shape: `nodes.len() == edges.len() + 1`, all edge
    /// endpoints valid and connected, and every edge's foreign key actually
    /// joins the two endpoint tables (in either orientation).
    pub fn validate(&self, db: &Database) -> RelResult<()> {
        if self.nodes.is_empty() {
            return Err(RelError::MalformedJoinTree("empty tree".into()));
        }
        if self.edges.len() + 1 != self.nodes.len() {
            return Err(RelError::MalformedJoinTree(format!(
                "{} nodes but {} edges",
                self.nodes.len(),
                self.edges.len()
            )));
        }
        for e in &self.edges {
            if e.a >= self.nodes.len() || e.b >= self.nodes.len() || e.a == e.b {
                return Err(RelError::MalformedJoinTree("bad edge endpoints".into()));
            }
            let fk = db.schema().fk(e.fk);
            let (ta, tb) = (self.nodes[e.a], self.nodes[e.b]);
            let forward = fk.from.table == ta && fk.to.table == tb;
            let backward = fk.from.table == tb && fk.to.table == ta;
            if !forward && !backward {
                return Err(RelError::MalformedJoinTree(
                    "edge fk does not join its endpoints".into(),
                ));
            }
        }
        // Connectivity via union-find over edges.
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for e in &self.edges {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            if ra == rb {
                return Err(RelError::MalformedJoinTree("cycle".into()));
            }
            parent[ra] = rb;
        }
        Ok(())
    }
}

/// Per-node candidate rows. `None` = unrestricted (free table). Candidate
/// lists are expected to be duplicate-free (the inverted index produces
/// sorted, distinct rows); duplicates are tolerated but result multiplicity
/// is then strategy-defined.
#[derive(Debug, Clone, Default)]
pub struct Candidates {
    pub per_node: Vec<Option<Vec<RowId>>>,
}

impl Candidates {
    /// All nodes unrestricted.
    pub fn free(n: usize) -> Self {
        Candidates {
            per_node: vec![None; n],
        }
    }

    /// Restrict node `i` to `rows`.
    pub fn restrict(mut self, i: usize, rows: Vec<RowId>) -> Self {
        self.per_node[i] = Some(rows);
        self
    }
}

/// How the executor evaluates the join tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Semi-join reduction + columnar batched hash joins. The default.
    #[default]
    HashJoin,
    /// Per-binding nested-loop expansion — the original executor, retained
    /// as the differential-testing oracle.
    Naive,
}

/// Execution limits and mode.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Stop after this many result tuples.
    pub limit: usize,
    /// Abort if the intermediate binding count exceeds this bound
    /// (protects against free-table blowups).
    pub max_intermediate: usize,
    /// Count matching JTTs (up to `limit`) without materializing them;
    /// [`ExecOutcome::rows`] stays empty and only
    /// [`ExecStats::result_count`] is meaningful.
    pub count_only: bool,
    /// Evaluation strategy.
    pub strategy: ExecStrategy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            limit: 1000,
            max_intermediate: 200_000,
            count_only: false,
            strategy: ExecStrategy::default(),
        }
    }
}

/// Counters describing one execution, for benches and regression assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Edge-attach steps performed (batches built).
    pub batches: usize,
    /// Hash/index probe operations (one per partial binding per edge).
    pub probes: usize,
    /// Partial bindings materialized across all steps, seed included — the
    /// quantity the batched executor minimizes.
    pub intermediate_bindings: usize,
    /// Candidate rows across all nodes before semi-join reduction
    /// (hash-join strategy only; free nodes count their full table).
    pub semijoin_rows_in: usize,
    /// Candidate rows across all nodes after the bottom-up + top-down
    /// reduction sweeps.
    pub semijoin_rows_out: usize,
    /// Result tuples found (capped at `limit`).
    pub result_count: usize,
    /// Columnar batch materializations: what the pre-arena executor paid
    /// one heap allocation for — the selection vector, the new column, and
    /// every regathered column of every attach step. The arena still does
    /// this work, but into reused backing storage.
    pub batch_cols: usize,
    /// Fresh backing allocations the batch arena performed (capacity
    /// growth events). Reusing one [`BatchArena`] across batches and
    /// executions keeps this O(1) per query instead of O(nodes × batches).
    pub batch_allocs: usize,
    /// Peak bytes of arena backing capacity observed during execution.
    pub arena_bytes_peak: usize,
}

impl ExecStats {
    /// Merge `other` into `self` (for aggregating over many executions).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.batches += other.batches;
        self.probes += other.probes;
        self.intermediate_bindings += other.intermediate_bindings;
        self.semijoin_rows_in += other.semijoin_rows_in;
        self.semijoin_rows_out += other.semijoin_rows_out;
        self.result_count += other.result_count;
        self.batch_cols += other.batch_cols;
        self.batch_allocs += other.batch_allocs;
        // A peak, not a flow: aggregation over executions sharing one
        // arena reports the high-water mark, not a meaningless sum.
        self.arena_bytes_peak = self.arena_bytes_peak.max(other.arena_bytes_peak);
    }

    /// Fraction of candidate rows the semi-join pre-pass removed
    /// (0.0 when the pass did not run or removed nothing).
    pub fn semijoin_reduction(&self) -> f64 {
        if self.semijoin_rows_in == 0 {
            return 0.0;
        }
        1.0 - self.semijoin_rows_out as f64 / self.semijoin_rows_in as f64
    }
}

/// One result: a row id per join-tree node (a joining tuple tree).
pub type JoinedRow = Vec<RowId>;

/// A forced join order for the hash-join executor: the seed node plus the
/// edge indexes in attach order. [`plan_join_order`] replicates exactly the
/// choices `ExecStrategy::HashJoin` makes on its own, but from bare
/// cardinalities — so a coordinator can compute one plan from *global*
/// (cross-shard summed) cardinalities and force every shard to execute the
/// same order, keeping a scatter-gather execution bit-identical to a
/// single-store run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Node index the columnar batches are seeded from.
    pub seed: usize,
    /// Edge indexes into [`JoinTree::edges`], in attach order.
    pub attach: Vec<usize>,
}

/// Output of the semi-join reduction pre-pass ([`reduce_join_tree`]): fully
/// materialized, fully reduced per-node row sets, the pre-reduction (given)
/// cardinalities the join planner keys on, and the reduction counters.
#[derive(Debug, Clone)]
pub struct ReducedTree {
    /// Per node: surviving candidate rows, sorted where the reducer sorts
    /// them. Empty sets mean the join has no results.
    pub sets: Vec<Vec<RowId>>,
    /// Per node: candidate rows *before* reduction (free nodes count their
    /// full table) — the quantity seed selection keys on.
    pub given: Vec<usize>,
    /// `semijoin_rows_in` / `semijoin_rows_out` for this reduction; the
    /// join-phase counters stay zero.
    pub stats: ExecStats,
}

/// Result rows plus execution counters.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Matching JTTs, at most `limit` (empty under `count_only`).
    pub rows: Vec<JoinedRow>,
    pub stats: ExecStats,
}

/// Execute `tree` over `db` with per-node `candidates`; rows only.
pub fn execute_join_tree(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
) -> RelResult<Vec<JoinedRow>> {
    execute_join_tree_with_stats(db, tree, candidates, opts).map(|o| o.rows)
}

/// Execute `tree` over `db` with per-node `candidates`, returning rows and
/// execution counters. Dispatches on [`ExecOptions::strategy`]. Uses a
/// throwaway [`BatchArena`]; repeat executors should hold one and call
/// [`execute_join_tree_with_stats_in`].
pub fn execute_join_tree_with_stats(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
) -> RelResult<ExecOutcome> {
    execute_join_tree_with_stats_in(db, tree, candidates, opts, &mut BatchArena::new())
}

/// [`execute_join_tree_with_stats`] against a caller-held [`BatchArena`]
/// (the naive strategy ignores it).
pub fn execute_join_tree_with_stats_in(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
    arena: &mut BatchArena,
) -> RelResult<ExecOutcome> {
    tree.validate(db)?;
    if candidates.per_node.len() != tree.nodes.len() {
        return Err(RelError::MalformedJoinTree(
            "candidate arity mismatch".into(),
        ));
    }
    match opts.strategy {
        ExecStrategy::HashJoin => execute_hash_join(db, tree, candidates, opts, arena),
        ExecStrategy::Naive => execute_naive(db, tree, candidates, opts),
    }
}

/// The join key of `row` at node `node` under `fk`, where `fk_side` says
/// whether the node holds the referencing column. `None` = null fk value,
/// which joins nothing.
#[inline]
fn join_key(
    db: &Database,
    table: TableId,
    row: RowId,
    fk: &ForeignKey,
    fk_side: bool,
) -> Option<i64> {
    if fk_side {
        db.cell(table, row, fk.from).as_int()
    } else {
        Some(db.pk_value(table, row))
    }
}

/// Whether endpoint `a` of `edge` is the foreign-key (referencing) side.
/// For self-referencing foreign keys both orientations type-check; the `a`
/// side wins deterministically.
fn a_is_fk_side(db: &Database, tree: &JoinTree, edge: &JoinTreeEdge) -> bool {
    let fk = db.schema().fk(edge.fk);
    fk.from.table == tree.nodes[edge.a] && fk.to.table == tree.nodes[edge.b]
}

// ---------------------------------------------------------------------------
// Hash-join strategy: semi-join reduction + columnar batches.
// ---------------------------------------------------------------------------

fn execute_hash_join(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
    arena: &mut BatchArena,
) -> RelResult<ExecOutcome> {
    let reduced = reduce_join_tree(db, tree, candidates)?;
    let mut stats = reduced.stats;
    if reduced.sets.iter().any(Vec::is_empty) {
        return Ok(ExecOutcome {
            rows: Vec::new(),
            stats,
        });
    }
    let sizes: Vec<usize> = reduced.sets.iter().map(Vec::len).collect();
    let plan = plan_join_order(tree, &reduced.given, &sizes);
    let out = execute_reduced_in(db, tree, reduced.sets, &plan, opts, arena)?;
    stats.absorb(&out.stats);
    Ok(ExecOutcome {
        rows: out.rows,
        stats,
    })
}

/// The semi-join reduction pre-pass of the hash-join strategy, exposed on
/// its own so sharded executions can reduce locally, exchange only the
/// resulting cardinalities, and then run [`execute_reduced`] under a plan
/// forced by a coordinator.
pub fn reduce_join_tree(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
) -> RelResult<ReducedTree> {
    tree.validate(db)?;
    if candidates.per_node.len() != tree.nodes.len() {
        return Err(RelError::MalformedJoinTree(
            "candidate arity mismatch".into(),
        ));
    }
    let n = tree.nodes.len();
    let mut stats = ExecStats::default();

    // Candidate sets stay lazy: `None` = still unrestricted. The semi-join
    // sweeps materialize a free node *from its neighbor's keys* (via the
    // pk / fk hash indexes) the first time a restricted neighbor touches
    // it, so an execution never scans or hashes a full free table. When
    // every node is free there is nothing to propagate from, so all nodes
    // materialize up front and the sweeps reduce them directly — either
    // way the tree ends fully reduced.
    let mut sets: Vec<Option<Vec<RowId>>> = candidates.per_node.clone();
    if sets.iter().all(Option::is_none) {
        for (i, s) in sets.iter_mut().enumerate() {
            *s = Some(db.table(tree.nodes[i]).rows().map(|(r, _)| r).collect());
        }
    }
    stats.semijoin_rows_in = (0..n)
        .map(|i| match &sets[i] {
            Some(rows) => rows.len(),
            None => db.table(tree.nodes[i]).len(),
        })
        .sum();

    // Root the tree at the most selective *given* node and compute a BFS
    // order with parent pointers (edge index per non-root node).
    let given_card = |i: usize| -> usize {
        match &candidates.per_node[i] {
            Some(rows) => rows.len(),
            None => db.table(tree.nodes[i]).len(),
        }
    };
    let seed = (0..n).min_by_key(|&i| given_card(i)).expect("non-empty");
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (edge idx, neighbor)
    for (ei, e) in tree.edges.iter().enumerate() {
        adj[e.a].push((ei, e.b));
        adj[e.b].push((ei, e.a));
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut parent_edge: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    order.push(seed);
    seen[seed] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &(ei, v) in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                parent_edge[v] = Some(ei);
                order.push(v);
            }
        }
    }
    if order.len() != n {
        return Err(RelError::MalformedJoinTree("disconnected tree".into()));
    }

    // Semi-join full reducer (Yannakakis): bottom-up — filter each parent by
    // each child — then top-down — filter each child by its parent. After
    // full reduction every surviving row participates in ≥ 1 complete JTT.
    //
    // A still-`None` (free, untouched) source makes the step approximate:
    // the target is filtered by partner *existence* in the full free table
    // (pure index lookups), and a `None` target materializes straight from
    // its restricted source's keys — so no free table is ever scanned or
    // hashed whole. Returns whether the step consulted a free source; any
    // such step may leave dead rows, in which case a second, now-exact
    // sweep over the (small) materialized sets finishes the reduction.
    let filter_by =
        |sets: &mut Vec<Option<Vec<RowId>>>, target: usize, source: usize, ei: usize| -> bool {
            let edge = &tree.edges[ei];
            let a_fk = a_is_fk_side(db, tree, edge);
            let (t_fk, s_fk) = if edge.a == target {
                (a_fk, !a_fk)
            } else {
                (!a_fk, a_fk)
            };
            let fk = db.schema().fk(edge.fk);
            let s_table = tree.nodes[source];
            let t_table = tree.nodes[target];
            let source_keys: Option<Vec<i64>> = sets[source].as_ref().map(|src| {
                let mut keys: Vec<i64> = src
                    .iter()
                    .filter_map(|&r| join_key(db, s_table, r, fk, s_fk))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            });
            match source_keys {
                None => {
                    // Free source: keep target rows with any partner at all.
                    let Some(rows) = sets[target].as_mut() else {
                        return true; // both free — nothing known yet
                    };
                    if s_fk {
                        rows.retain(|&r| {
                            join_key(db, t_table, r, fk, t_fk)
                                .is_some_and(|k| !db.fk_referrers(edge.fk, k).is_empty())
                        });
                    } else {
                        rows.retain(|&r| {
                            join_key(db, t_table, r, fk, t_fk)
                                .is_some_and(|k| db.table(s_table).by_pk(k).is_some())
                        });
                    }
                    true
                }
                Some(keys) => match sets[target].as_mut() {
                    Some(rows) => {
                        let keyset: HashSet<i64> = keys.into_iter().collect();
                        rows.retain(|&r| {
                            join_key(db, t_table, r, fk, t_fk).is_some_and(|k| keyset.contains(&k))
                        });
                        false
                    }
                    None => {
                        // Materialize the free target from the source keys.
                        let mut rows: Vec<RowId> = if t_fk {
                            keys.iter()
                                .flat_map(|&k| db.fk_referrers(edge.fk, k))
                                .copied()
                                .collect()
                        } else {
                            keys.iter()
                                .filter_map(|&k| db.table(t_table).by_pk(k))
                                .collect()
                        };
                        rows.sort_unstable();
                        rows.dedup();
                        sets[target] = Some(rows);
                        false
                    }
                },
            }
        };
    let sweep = |sets: &mut Vec<Option<Vec<RowId>>>| -> bool {
        let mut approx = false;
        for &v in order.iter().skip(1).rev() {
            let ei = parent_edge[v].expect("non-root");
            let e = &tree.edges[ei];
            let parent = if e.a == v { e.b } else { e.a };
            approx |= filter_by(sets, parent, v, ei);
        }
        for &v in order.iter().skip(1) {
            let ei = parent_edge[v].expect("non-root");
            let e = &tree.edges[ei];
            let parent = if e.a == v { e.b } else { e.a };
            approx |= filter_by(sets, v, parent, ei);
        }
        approx
    };
    if sweep(&mut sets) {
        // Some step consulted a free table; every set is materialized now
        // (the tree is connected and at least one node was restricted), so
        // the second sweep is exact and completes the full reduction.
        sweep(&mut sets);
    }
    stats.semijoin_rows_out = sets
        .iter()
        .map(|s| s.as_ref().expect("reduced sets are materialized").len())
        .sum();
    let given: Vec<usize> = (0..n).map(given_card).collect();
    let sets: Vec<Vec<RowId>> = sets
        .into_iter()
        .map(|s| s.expect("reduced sets are materialized"))
        .collect();
    Ok(ReducedTree { sets, given, stats })
}

/// Replicate the hash-join executor's order choices from per-node *given*
/// cardinalities (pre-reduction) and reduced set sizes: the seed is the
/// first node with minimal given cardinality, then the edge whose new node
/// has the smallest reduced set is attached, the live edge list evolving by
/// `swap_remove` exactly as in execution — so ties break identically.
pub fn plan_join_order(tree: &JoinTree, given: &[usize], reduced: &[usize]) -> JoinPlan {
    let n = tree.nodes.len();
    let seed = (0..n).min_by_key(|&i| given[i]).expect("non-empty");
    let mut joined = vec![false; n];
    joined[seed] = true;
    let mut remaining: Vec<usize> = (0..tree.edges.len()).collect();
    let mut attach = Vec::with_capacity(tree.edges.len());
    while !remaining.is_empty() {
        let (pos, &ei) = remaining
            .iter()
            .enumerate()
            .filter(|(_, &ei)| {
                let e = &tree.edges[ei];
                joined[e.a] != joined[e.b]
            })
            .min_by_key(|(_, &ei)| {
                let e = &tree.edges[ei];
                let new = if joined[e.a] { e.b } else { e.a };
                reduced[new]
            })
            .expect("connected tree always has an attachable edge");
        remaining.swap_remove(pos);
        let e = &tree.edges[ei];
        let new = if joined[e.a] { e.b } else { e.a };
        joined[new] = true;
        attach.push(ei);
    }
    JoinPlan { seed, attach }
}

/// Reusable backing store for the executor's columnar binding batches.
///
/// The pre-arena executor allocated one `Vec<RowId>` per joined node per
/// attach step (the regather), plus a selection vector and the new column —
/// O(nodes × batches) heap allocations per query. The arena keeps all
/// columns in one flat `Vec<RowId>` (per-node spans of equal length, in
/// join order) plus a ping-pong buffer for the regather, *reset but never
/// freed* between batches — and, when one arena is threaded through a
/// pipeline via the executor cache, between waves and executions too.
/// [`ExecStats::batch_allocs`] counts the capacity-growth events that
/// remain; [`ExecStats::arena_bytes_peak`] records the high-water mark.
#[derive(Debug, Default)]
pub struct BatchArena {
    /// Current batch: `slot` spans of `batch_len` rows each, join order.
    front: Vec<RowId>,
    /// Regather target, swapped with `front` after each attach step.
    back: Vec<RowId>,
    /// Probe selection indexes into the previous batch.
    sel: Vec<u32>,
    /// The attach step's new column, staged before the regather.
    newcol: Vec<RowId>,
    /// Cumulative capacity-growth events over the arena's lifetime.
    allocs: usize,
}

impl BatchArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of backing capacity currently held.
    fn bytes(&self) -> usize {
        (self.front.capacity() + self.back.capacity() + self.newcol.capacity())
            * std::mem::size_of::<RowId>()
            + self.sel.capacity() * std::mem::size_of::<u32>()
    }
}

/// Floor on any fresh arena reservation: a cold buffer jumps straight to a
/// useful capacity (4 KiB of `RowId`s) instead of logging several growth
/// events while the first small batches warm it.
const ARENA_MIN_RESERVE: usize = 1024;

/// Reserve `additional` headroom in `v`, counting a capacity growth.
fn arena_reserve<T>(v: &mut Vec<T>, additional: usize, allocs: &mut usize) {
    let before = v.capacity();
    if v.len() + additional <= before {
        return;
    }
    v.reserve(additional.max(ARENA_MIN_RESERVE));
    if v.capacity() != before {
        *allocs += 1;
    }
}

/// The join phase of the hash-join strategy over already-reduced sets,
/// following a [`JoinPlan`] instead of choosing its own order. With the plan
/// produced by [`plan_join_order`] on this store's own cardinalities this is
/// bit-identical to `ExecStrategy::HashJoin`; under a coordinator-forced
/// plan every participating store joins in the same order.
///
/// Convenience wrapper over [`execute_reduced_in`] with a throwaway arena;
/// callers executing more than once should hold a [`BatchArena`] and reuse
/// it.
pub fn execute_reduced(
    db: &Database,
    tree: &JoinTree,
    sets: Vec<Vec<RowId>>,
    plan: &JoinPlan,
    opts: ExecOptions,
) -> RelResult<ExecOutcome> {
    execute_reduced_in(db, tree, sets, plan, opts, &mut BatchArena::new())
}

/// [`execute_reduced`] against a caller-held [`BatchArena`].
///
/// Columnar binding batches: one column span per joined node, all of equal
/// length, living in the arena. Full reduction guarantees every partial
/// binding extends to at least one distinct result, so each batch can be
/// truncated to `limit`. Row output is byte-identical to the historical
/// per-`Vec` executor — the arena changes where the columns live, never
/// their contents or order.
pub fn execute_reduced_in(
    db: &Database,
    tree: &JoinTree,
    sets: Vec<Vec<RowId>>,
    plan: &JoinPlan,
    opts: ExecOptions,
    arena: &mut BatchArena,
) -> RelResult<ExecOutcome> {
    let n = tree.nodes.len();
    let mut stats = ExecStats::default();
    let allocs_before = arena.allocs;
    if sets.iter().any(Vec::is_empty) {
        return Ok(ExecOutcome {
            rows: Vec::new(),
            stats,
        });
    }
    let cap = opts.limit;
    // Node -> column span index (in join order) inside the arena.
    let mut slot: Vec<Option<usize>> = vec![None; n];
    let seed_set = &sets[plan.seed];
    let mut batch_len = seed_set.len().min(cap);
    arena.front.clear();
    arena_reserve(&mut arena.front, batch_len, &mut arena.allocs);
    arena.front.extend_from_slice(&seed_set[..batch_len]);
    stats.intermediate_bindings += batch_len;
    slot[plan.seed] = Some(0);
    let mut joined = vec![false; n];
    joined[plan.seed] = true;
    let mut joined_cols = 1usize;

    for &ei in &plan.attach {
        let edge = tree.edges[ei];
        debug_assert!(
            joined[edge.a] != joined[edge.b],
            "plan attaches a non-attachable edge"
        );
        let (known, new) = if joined[edge.a] {
            (edge.a, edge.b)
        } else {
            (edge.b, edge.a)
        };
        joined[new] = true;
        let a_fk = a_is_fk_side(db, tree, &edge);
        let known_fk = (edge.a == known) == a_fk;
        let fk = *db.schema().fk(edge.fk);
        let known_table = tree.nodes[known];
        let new_table = tree.nodes[new];

        // Build a hash table over the new node's reduced candidates, keyed
        // by join key. The pk side has unique keys; the fk side may not.
        let new_set = &sets[new];
        let mut build: HashMap<i64, Vec<RowId>> = HashMap::with_capacity(new_set.len());
        for &r in new_set {
            if let Some(k) = join_key(db, new_table, r, &fk, !known_fk) {
                build.entry(k).or_default().push(r);
            }
        }

        // Probe with every current partial binding; `sel` gathers the
        // batch. Disjoint-field borrows: the known column is a span of
        // `front`, the staging buffers are `sel`/`newcol`.
        let BatchArena {
            front,
            back,
            sel,
            newcol,
            allocs,
        } = &mut *arena;
        let ks = slot[known].expect("joined nodes have columns");
        let known_col = &front[ks * batch_len..(ks + 1) * batch_len];
        sel.clear();
        newcol.clear();
        arena_reserve(sel, batch_len, allocs);
        arena_reserve(newcol, batch_len, allocs);
        'probe: for (bi, &krow) in known_col.iter().enumerate() {
            stats.probes += 1;
            let Some(key) = join_key(db, known_table, krow, &fk, known_fk) else {
                continue;
            };
            let Some(matches) = build.get(&key) else {
                continue;
            };
            for &m in matches {
                if newcol.len() >= opts.max_intermediate {
                    return Err(RelError::MalformedJoinTree(
                        "intermediate result exceeds max_intermediate".into(),
                    ));
                }
                sel.push(bi as u32);
                newcol.push(m);
                if newcol.len() >= cap {
                    break 'probe;
                }
            }
        }
        stats.batches += 1;
        stats.intermediate_bindings += newcol.len();
        // One logical column materialization per regathered span + the new
        // column + the selection vector: exactly the per-step allocation
        // count of the pre-arena executor.
        stats.batch_cols += joined_cols + 2;
        let new_len = newcol.len();

        // Regather every existing column through `sel` into the back
        // buffer, append the new column as the next span, and flip.
        back.clear();
        arena_reserve(back, (joined_cols + 1) * new_len, allocs);
        for c in 0..joined_cols {
            let span = &front[c * batch_len..(c + 1) * batch_len];
            back.extend(sel.iter().map(|&i| span[i as usize]));
        }
        back.extend_from_slice(newcol);
        std::mem::swap(front, back);
        slot[new] = Some(joined_cols);
        joined_cols += 1;
        batch_len = new_len;
        stats.arena_bytes_peak = stats.arena_bytes_peak.max(arena.bytes());
        if batch_len == 0 {
            stats.batch_allocs += arena.allocs - allocs_before;
            return Ok(ExecOutcome {
                rows: Vec::new(),
                stats,
            });
        }
    }

    stats.result_count = batch_len;
    stats.arena_bytes_peak = stats.arena_bytes_peak.max(arena.bytes());
    stats.batch_allocs += arena.allocs - allocs_before;
    let rows = if opts.count_only {
        Vec::new()
    } else {
        (0..batch_len)
            .map(|i| {
                (0..n)
                    .map(|node| {
                        let c = slot[node].expect("all joined");
                        arena.front[c * batch_len + i]
                    })
                    .collect()
            })
            .collect()
    };
    Ok(ExecOutcome { rows, stats })
}

// ---------------------------------------------------------------------------
// Naive strategy: the original per-binding expansion, kept as the oracle.
// ---------------------------------------------------------------------------

fn execute_naive(
    db: &Database,
    tree: &JoinTree,
    candidates: &Candidates,
    opts: ExecOptions,
) -> RelResult<ExecOutcome> {
    let n = tree.nodes.len();
    let mut stats = ExecStats::default();
    // Estimated cardinality per node, used to order the join.
    let node_card = |i: usize| -> usize {
        match &candidates.per_node[i] {
            Some(rows) => rows.len(),
            None => db.table(tree.nodes[i]).len(),
        }
    };

    // Seed: the most selective node.
    let seed = (0..n).min_by_key(|&i| node_card(i)).expect("non-empty");

    // Partial bindings: each is a Vec<Option<RowId>> indexed by node.
    let mut bindings: Vec<Vec<Option<RowId>>> = Vec::new();
    let seed_rows: Vec<RowId> = match &candidates.per_node[seed] {
        Some(rows) => rows.clone(),
        None => db.table(tree.nodes[seed]).rows().map(|(r, _)| r).collect(),
    };
    for r in seed_rows {
        let mut b = vec![None; n];
        b[seed] = Some(r);
        bindings.push(b);
    }
    stats.intermediate_bindings += bindings.len();

    let cand_sets: Vec<Option<HashSet<RowId>>> = candidates
        .per_node
        .iter()
        .map(|c| c.as_ref().map(|rows| rows.iter().copied().collect()))
        .collect();

    let mut joined = vec![false; n];
    joined[seed] = true;
    let mut remaining_edges: Vec<JoinTreeEdge> = tree.edges.clone();

    while !remaining_edges.is_empty() {
        // Choose the attachable edge whose new node is cheapest.
        let pos = remaining_edges
            .iter()
            .position(|e| joined[e.a] != joined[e.b])
            .ok_or_else(|| RelError::MalformedJoinTree("disconnected tree".into()))?;
        let best = remaining_edges
            .iter()
            .enumerate()
            .filter(|(_, e)| joined[e.a] != joined[e.b])
            .min_by_key(|(_, e)| {
                let new = if joined[e.a] { e.b } else { e.a };
                node_card(new)
            })
            .map(|(i, _)| i)
            .unwrap_or(pos);
        let edge = remaining_edges.swap_remove(best);
        let (known, new) = if joined[edge.a] {
            (edge.a, edge.b)
        } else {
            (edge.b, edge.a)
        };
        joined[new] = true;

        let fk = *db.schema().fk(edge.fk);
        let known_table = tree.nodes[known];
        let new_table = tree.nodes[new];
        // Forward: known node holds the fk column, probe parent's pk index.
        // Orientation comes from the shared per-edge helper so both
        // strategies agree even on self-referencing foreign keys.
        let forward = (edge.a == known) == a_is_fk_side(db, tree, &edge);

        let mut next: Vec<Vec<Option<RowId>>> = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let known_row = b[known].expect("joined nodes are bound");
            stats.probes += 1;
            if forward {
                let key = db.cell(known_table, known_row, fk.from);
                let Some(key) = key.as_int() else { continue };
                let Some(parent) = db.table(new_table).by_pk(key) else {
                    continue;
                };
                if let Some(set) = &cand_sets[new] {
                    if !set.contains(&parent) {
                        continue;
                    }
                }
                let mut nb = b.clone();
                nb[new] = Some(parent);
                next.push(nb);
            } else {
                // Backward: new node holds the fk column referencing known's pk.
                let key = db.pk_value(known_table, known_row);
                for &child in db.fk_referrers(edge.fk, key) {
                    if let Some(set) = &cand_sets[new] {
                        if !set.contains(&child) {
                            continue;
                        }
                    }
                    let mut nb = b.clone();
                    nb[new] = Some(child);
                    next.push(nb);
                }
            }
            if next.len() > opts.max_intermediate {
                return Err(RelError::MalformedJoinTree(
                    "intermediate result exceeds max_intermediate".into(),
                ));
            }
        }
        stats.batches += 1;
        stats.intermediate_bindings += next.len();
        bindings = next;
        if bindings.is_empty() {
            return Ok(ExecOutcome {
                rows: Vec::new(),
                stats,
            });
        }
    }

    stats.result_count = bindings.len().min(opts.limit);
    let rows = if opts.count_only {
        Vec::new()
    } else {
        bindings
            .into_iter()
            .take(opts.limit)
            .map(|b| b.into_iter().map(|r| r.expect("all nodes bound")).collect())
            .collect()
    };
    Ok(ExecOutcome { rows, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, TableKind};
    use crate::value::Value;

    /// actor(id,name) <- acts(id,actor_id,movie_id) -> movie(id,title,year)
    fn movie_db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        for (id, name) in [(1, "Tom Hanks"), (2, "Tom Cruise"), (3, "Meg Ryan")] {
            db.insert(actor, vec![Value::Int(id), Value::text(name)])
                .unwrap();
        }
        for (id, title, year) in [
            (10, "The Terminal", 2004),
            (11, "Top Gun", 1986),
            (12, "Joe vs the Volcano", 1990),
        ] {
            db.insert(
                movie,
                vec![Value::Int(id), Value::text(title), Value::Int(year)],
            )
            .unwrap();
        }
        // Hanks in Terminal & Volcano, Cruise in Top Gun, Ryan in Volcano.
        for (id, a, m) in [(100, 1, 10), (101, 2, 11), (102, 1, 12), (103, 3, 12)] {
            db.insert(acts, vec![Value::Int(id), Value::Int(a), Value::Int(m)])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    fn actor_acts_movie_tree(db: &Database) -> JoinTree {
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        let fk_actor = s.fks().find(|(_, f)| f.to.table == actor).unwrap().0;
        let fk_movie = s.fks().find(|(_, f)| f.to.table == movie).unwrap().0;
        JoinTree {
            nodes: vec![actor, acts, movie],
            edges: vec![
                JoinTreeEdge {
                    a: 1,
                    b: 0,
                    fk: fk_actor,
                },
                JoinTreeEdge {
                    a: 1,
                    b: 2,
                    fk: fk_movie,
                },
            ],
        }
    }

    fn naive_opts() -> ExecOptions {
        ExecOptions {
            strategy: ExecStrategy::Naive,
            ..Default::default()
        }
    }

    /// Sorted copies, for multiset comparison between strategies.
    fn sorted(mut rows: Vec<JoinedRow>) -> Vec<JoinedRow> {
        rows.sort();
        rows
    }

    #[test]
    fn full_join_unrestricted() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &Candidates::free(3), opts).unwrap();
            assert_eq!(rows.len(), 4); // one JTT per acts row
        }
    }

    #[test]
    fn restricted_join() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let hanks = db.table(actor).by_pk(1).unwrap();
        let cands = Candidates::free(3).restrict(0, vec![hanks]);
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &cands, opts).unwrap();
            assert_eq!(rows.len(), 2); // Terminal + Volcano
            for r in &rows {
                assert_eq!(r[0], hanks);
            }
        }
    }

    #[test]
    fn doubly_restricted_join() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let hanks = db.table(actor).by_pk(1).unwrap();
        let terminal = db.table(movie).by_pk(10).unwrap();
        let cands = Candidates::free(3)
            .restrict(0, vec![hanks])
            .restrict(2, vec![terminal]);
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &cands, opts).unwrap();
            assert_eq!(rows.len(), 1);
        }
    }

    #[test]
    fn empty_candidates_empty_result() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let cands = Candidates::free(3).restrict(0, vec![]);
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &cands, opts).unwrap();
            assert!(rows.is_empty());
        }
    }

    #[test]
    fn self_join_two_actors() {
        // actor - acts - movie - acts - actor: movies with two named actors.
        let db = movie_db();
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        let fk_actor = s.fks().find(|(_, f)| f.to.table == actor).unwrap().0;
        let fk_movie = s.fks().find(|(_, f)| f.to.table == movie).unwrap().0;
        let tree = JoinTree {
            nodes: vec![actor, acts, movie, acts, actor],
            edges: vec![
                JoinTreeEdge {
                    a: 1,
                    b: 0,
                    fk: fk_actor,
                },
                JoinTreeEdge {
                    a: 1,
                    b: 2,
                    fk: fk_movie,
                },
                JoinTreeEdge {
                    a: 3,
                    b: 2,
                    fk: fk_movie,
                },
                JoinTreeEdge {
                    a: 3,
                    b: 4,
                    fk: fk_actor,
                },
            ],
        };
        let hanks = db.table(actor).by_pk(1).unwrap();
        let ryan = db.table(actor).by_pk(3).unwrap();
        let cands = Candidates::free(5)
            .restrict(0, vec![hanks])
            .restrict(4, vec![ryan]);
        let volcano = db.table(movie).by_pk(12).unwrap();
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &cands, opts).unwrap();
            assert_eq!(rows.len(), 1); // Joe vs the Volcano
            assert_eq!(rows[0][2], volcano);
        }
    }

    #[test]
    fn limit_respected() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        for strategy in [ExecStrategy::HashJoin, ExecStrategy::Naive] {
            let opts = ExecOptions {
                limit: 2,
                strategy,
                ..Default::default()
            };
            let rows = execute_join_tree(&db, &tree, &Candidates::free(3), opts).unwrap();
            assert_eq!(rows.len(), 2);
        }
    }

    #[test]
    fn strategies_agree_on_multisets() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let toms: Vec<RowId> = [1, 2]
            .iter()
            .map(|&pk| db.table(actor).by_pk(pk).unwrap())
            .collect();
        let cases = [
            Candidates::free(3),
            Candidates::free(3).restrict(0, toms.clone()),
            Candidates::free(3).restrict(0, toms).restrict(2, vec![]),
        ];
        let big = |strategy| ExecOptions {
            limit: usize::MAX,
            strategy,
            ..Default::default()
        };
        for cands in &cases {
            let hj = execute_join_tree(&db, &tree, cands, big(ExecStrategy::HashJoin)).unwrap();
            let nv = execute_join_tree(&db, &tree, cands, big(ExecStrategy::Naive)).unwrap();
            assert_eq!(sorted(hj), sorted(nv));
        }
    }

    #[test]
    fn self_referencing_fk_strategies_agree() {
        // employee.manager_id -> employee: both edge orientations type-check,
        // so the executor must pick one deterministically (node `a` = fk
        // side) and both strategies must implement the same choice.
        let mut b = SchemaBuilder::new();
        b.table("employee", TableKind::Entity)
            .pk("id")
            .text_attr("name")
            .int_attr("manager_id");
        b.foreign_key("employee", "manager_id", "employee").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let emp = db.schema().table_id("employee").unwrap();
        // 2 and 4 report to 1; 3 reports to 2.
        for (id, name, mgr) in [
            (1, "root", Value::Null),
            (2, "a", Value::Int(1)),
            (3, "b", Value::Int(2)),
            (4, "c", Value::Int(1)),
        ] {
            db.insert(emp, vec![Value::Int(id), Value::text(name), mgr])
                .unwrap();
        }
        db.validate().unwrap();
        let fk0 = db.schema().fks().next().unwrap().0;
        let tree = JoinTree {
            nodes: vec![emp, emp],
            edges: vec![JoinTreeEdge {
                a: 0,
                b: 1,
                fk: fk0,
            }],
        };
        let r3 = db.table(emp).by_pk(3).unwrap();
        let r1 = db.table(emp).by_pk(1).unwrap();
        // Vary selectivity so the naive seed lands on either endpoint.
        let cases = [
            Candidates::free(2),
            Candidates::free(2).restrict(0, vec![r3]),
            Candidates::free(2).restrict(1, vec![r1]),
        ];
        let big = |strategy| ExecOptions {
            limit: usize::MAX,
            strategy,
            ..Default::default()
        };
        for cands in &cases {
            let hj = execute_join_tree(&db, &tree, cands, big(ExecStrategy::HashJoin)).unwrap();
            let nv = execute_join_tree(&db, &tree, cands, big(ExecStrategy::Naive)).unwrap();
            assert_eq!(sorted(hj.clone()), sorted(nv));
            // Node 0 is the fk (reporting) side: every result pairs an
            // employee with their manager.
            for row in &hj {
                let mgr = db.cell(emp, row[0], db.schema().fk(fk0).from).as_int();
                assert_eq!(mgr, Some(db.pk_value(emp, row[1])));
            }
        }
    }

    #[test]
    fn count_only_counts_without_rows() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let opts = ExecOptions {
            count_only: true,
            ..Default::default()
        };
        let out = execute_join_tree_with_stats(&db, &tree, &Candidates::free(3), opts).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.stats.result_count, 4);
    }

    #[test]
    fn semijoin_prunes_dead_bindings() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let hanks = db.table(actor).by_pk(1).unwrap();
        let terminal = db.table(movie).by_pk(10).unwrap();
        let cands = Candidates::free(3)
            .restrict(0, vec![hanks])
            .restrict(2, vec![terminal]);
        let hj = execute_join_tree_with_stats(&db, &tree, &cands, ExecOptions::default()).unwrap();
        let nv = execute_join_tree_with_stats(&db, &tree, &cands, naive_opts()).unwrap();
        assert_eq!(hj.stats.result_count, nv.stats.result_count);
        // The reducer must strip the acts rows that don't reach Terminal.
        assert!(hj.stats.semijoin_rows_out < hj.stats.semijoin_rows_in);
        assert!(
            hj.stats.intermediate_bindings <= nv.stats.intermediate_bindings,
            "hash join materialized more: {} vs {}",
            hj.stats.intermediate_bindings,
            nv.stats.intermediate_bindings
        );
        assert!((0.0..=1.0).contains(&hj.stats.semijoin_reduction()));
    }

    #[test]
    fn early_termination_caps_every_batch() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let opts = ExecOptions {
            limit: 1,
            ..Default::default()
        };
        let out = execute_join_tree_with_stats(&db, &tree, &Candidates::free(3), opts).unwrap();
        assert_eq!(out.rows.len(), 1);
        // With limit 1 no batch ever holds more than one binding:
        // seed + one per attach step.
        assert!(out.stats.intermediate_bindings <= 1 + tree.join_count());
    }

    #[test]
    fn malformed_trees_rejected() {
        let db = movie_db();
        let s = db.schema();
        let actor = s.table_id("actor").unwrap();
        let fk0 = s.fks().next().unwrap().0;
        // Empty.
        let t = JoinTree {
            nodes: vec![],
            edges: vec![],
        };
        assert!(t.validate(&db).is_err());
        // Edge count mismatch.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![],
        };
        assert!(t.validate(&db).is_err());
        // Self edge.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![JoinTreeEdge {
                a: 0,
                b: 0,
                fk: fk0,
            }],
        };
        assert!(t.validate(&db).is_err());
        // FK does not join endpoints.
        let t = JoinTree {
            nodes: vec![actor, actor],
            edges: vec![JoinTreeEdge {
                a: 0,
                b: 1,
                fk: fk0,
            }],
        };
        assert!(t.validate(&db).is_err());
    }

    #[test]
    fn candidate_arity_checked() {
        let db = movie_db();
        let tree = actor_acts_movie_tree(&db);
        let err = execute_join_tree(&db, &tree, &Candidates::free(2), ExecOptions::default())
            .unwrap_err();
        assert!(matches!(err, RelError::MalformedJoinTree(_)));
    }

    #[test]
    fn single_node_tree() {
        let db = movie_db();
        let movie = db.schema().table_id("movie").unwrap();
        let tree = JoinTree::single(movie);
        for opts in [ExecOptions::default(), naive_opts()] {
            let rows = execute_join_tree(&db, &tree, &Candidates::free(1), opts).unwrap();
            assert_eq!(rows.len(), 3);
        }
        assert_eq!(tree.join_count(), 0);
    }
}
