//! # keybridge-relstore
//!
//! A small, self-contained, in-memory relational engine. It provides exactly
//! the substrate that schema-based database keyword search needs:
//!
//! * a typed catalog ([`Schema`]) with primary keys and foreign keys,
//! * row storage with primary-key and foreign-key hash indexes ([`Database`]),
//! * an undirected join graph over the schema ([`SchemaGraph`]),
//! * an executor for *join trees* — the relational-algebra shape of candidate
//!   networks / query interpretations — given per-node candidate row sets
//!   ([`execute_join_tree`]), and
//! * a compact, versioned on-disk snapshot of schema + rows with
//!   length-prefixed, checksummed sections ([`Database::snapshot_bytes`]),
//!   plus the binary framing toolkit ([`snapshot`]) the index snapshot and
//!   the service's write-ahead log are built from.
//!
//! The engine is deliberately single-threaded and deterministic: the paper's
//! measurements are single-session latencies, and reproducibility matters more
//! than parallel throughput here.
//!
//! ```
//! use keybridge_relstore::{SchemaBuilder, TableKind, Database, Value};
//!
//! let mut b = SchemaBuilder::new();
//! b.table("actor", TableKind::Entity).pk("id").text_attr("name");
//! b.table("movie", TableKind::Entity).pk("id").text_attr("title");
//! b.table("acts", TableKind::Relation)
//!     .pk("id")
//!     .int_attr("actor_id")
//!     .int_attr("movie_id");
//! b.foreign_key("acts", "actor_id", "actor").unwrap();
//! b.foreign_key("acts", "movie_id", "movie").unwrap();
//! let schema = b.finish().unwrap();
//!
//! let mut db = Database::new(schema);
//! let actor = db.schema().table_id("actor").unwrap();
//! db.insert(actor, vec![Value::Int(1), Value::text("Tom Hanks")]).unwrap();
//! assert_eq!(db.table(actor).len(), 1);
//! ```

mod database;
mod error;
mod exec;
mod graph;
mod partition;
mod schema;
pub mod snapshot;
mod value;

pub use database::{Database, RowBatch, TableStore};
pub use error::{BatchError, RelError, RelResult};
pub use exec::{
    execute_join_tree, execute_join_tree_with_stats, execute_join_tree_with_stats_in,
    execute_reduced, execute_reduced_in, plan_join_order, reduce_join_tree, BatchArena, Candidates,
    ExecOptions, ExecOutcome, ExecStats, ExecStrategy, JoinPlan, JoinTree, JoinTreeEdge, JoinedRow,
    ReducedTree,
};
pub use graph::{GraphEdge, SchemaGraph};
pub use partition::{
    assign_shards, fk_parents, hash_shard, split_database, ShardAssignment, ShardSplit,
};
pub use schema::{
    AttrId, AttrRef, AttributeDef, FkId, ForeignKey, Schema, SchemaBuilder, TableBuilder, TableDef,
    TableId, TableKind,
};
pub use snapshot::SnapshotError;
pub use value::{RowId, Value, ValueType};
