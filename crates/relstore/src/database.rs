//! Row storage with primary-key and foreign-key hash indexes.

use crate::error::{BatchError, RelError, RelResult};
use crate::schema::{AttrRef, FkId, Schema, TableId};
use crate::value::{RowId, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Hard per-table row capacity: `RowId` is a `u32`, so a table can hold at
/// most `u32::MAX + 1` rows before ids would wrap.
const DEFAULT_MAX_ROWS: usize = (u32::MAX as usize) + 1;

/// Per-database string dictionary. Every text cell is canonicalized to one
/// shared [`Arc<str>`] per distinct string, identified by a dense `u32`
/// symbol id. Duplicated values (names, titles, roles — the bulk of any
/// fixture's text) are stored once, and cloning rows or the whole database
/// only bumps reference counts.
#[derive(Debug, Clone, Default)]
struct StringArena {
    syms: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl StringArena {
    /// Canonicalize `s`: returns the arena's shared handle for its contents,
    /// registering it under the next symbol id on first sight.
    fn intern(&mut self, s: Arc<str>) -> Arc<str> {
        if let Some(&id) = self.ids.get(&*s) {
            return self.syms[id as usize].clone();
        }
        let id = u32::try_from(self.syms.len()).expect("string arena exhausted u32 symbol space");
        self.syms.push(s.clone());
        self.ids.insert(s.clone(), id);
        s
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }
}

/// One batch of rows to insert, in application order. The unit of the live
/// ingestion path: [`Database::insert_batch`] validates the whole batch —
/// including foreign keys that resolve to *other rows of the same batch* —
/// before touching storage, so a rejected batch leaves the database
/// untouched.
pub type RowBatch = Vec<(TableId, Vec<Value>)>;

/// Storage for one table: a row-major `Vec` of rows plus a primary-key index.
#[derive(Debug, Clone, Default)]
pub struct TableStore {
    rows: Vec<Vec<Value>>,
    pk_index: HashMap<i64, RowId>,
}

impl TableStore {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row at `id`. Panics if out of bounds (row ids come from this
    /// database, so an out-of-bounds id is a logic error).
    pub fn row(&self, id: RowId) -> &[Value] {
        &self.rows[id.index()]
    }

    /// Iterate over `(RowId, &row)`.
    pub fn rows(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r.as_slice()))
    }

    /// Find a row by primary-key value.
    pub fn by_pk(&self, key: i64) -> Option<RowId> {
        self.pk_index.get(&key).copied()
    }
}

/// An in-memory database: a [`Schema`] plus per-table storage and, for every
/// foreign key, a hash index from referenced key value to referencing rows.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    tables: Vec<TableStore>,
    /// `fk_index[fk][key]` = rows of the *referencing* table whose fk column
    /// holds `key`. This supports joins in the pk -> fk direction.
    fk_index: Vec<HashMap<i64, Vec<RowId>>>,
    /// Per table: the `(fk index, column)` pairs of foreign keys that
    /// originate in that table. Precomputed so inserts stay allocation-free.
    table_fk_cols: Vec<Vec<(usize, usize)>>,
    /// Interned text values shared by every row.
    arena: StringArena,
    /// Per-table row capacity. Always [`DEFAULT_MAX_ROWS`] in production;
    /// tests lower it to exercise the `TableFull` boundary.
    max_rows: usize,
}

impl Database {
    /// Create an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let tables = vec![TableStore::default(); schema.table_count()];
        let fk_index = vec![HashMap::new(); schema.fk_count()];
        let mut table_fk_cols = vec![Vec::new(); schema.table_count()];
        for (id, fk) in schema.fks() {
            table_fk_cols[fk.from.table.0 as usize].push((id.0 as usize, fk.from.attr.0 as usize));
        }
        Database {
            schema,
            tables,
            fk_index,
            table_fk_cols,
            arena: StringArena::default(),
            max_rows: DEFAULT_MAX_ROWS,
        }
    }

    /// The catalog.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Storage for table `id`.
    pub fn table(&self, id: TableId) -> &TableStore {
        &self.tables[id.0 as usize]
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(TableStore::len).sum()
    }

    /// The value of one cell.
    pub fn cell(&self, table: TableId, row: RowId, attr: AttrRef) -> &Value {
        debug_assert_eq!(table, attr.table);
        &self.tables[table.0 as usize].row(row)[attr.attr.0 as usize]
    }

    /// Primary-key value of a row.
    pub fn pk_value(&self, table: TableId, row: RowId) -> i64 {
        let pk = self.schema.table(table).pk;
        self.tables[table.0 as usize].row(row)[pk.0 as usize]
            .as_int()
            .expect("primary keys are validated at insert")
    }

    /// Rows of the referencing table whose foreign-key column equals `key`.
    pub fn fk_referrers(&self, fk: FkId, key: i64) -> &[RowId] {
        self.fk_index[fk.0 as usize]
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Arity, type, and primary-key *shape* checks shared by every insert
    /// path. Returns the row's primary-key value (uniqueness is checked by
    /// the callers, whose notion of "already present" differs: a batch also
    /// sees its own earlier rows).
    fn check_shape(&self, table: TableId, row: &[Value]) -> RelResult<i64> {
        let def = self.schema.table(table);
        if row.len() != def.attrs.len() {
            return Err(RelError::ArityMismatch {
                table,
                expected: def.attrs.len(),
                got: row.len(),
            });
        }
        for (i, (v, a)) in row.iter().zip(&def.attrs).enumerate() {
            if !v.conforms_to(a.ty) {
                return Err(RelError::TypeMismatch {
                    attr: AttrRef {
                        table,
                        attr: crate::schema::AttrId(i as u32),
                    },
                });
            }
        }
        row[def.pk.0 as usize]
            .as_int()
            .ok_or(RelError::BadPrimaryKey { table })
    }

    /// Insert a row. Checks arity, types, primary-key integrity, and table
    /// capacity (a `RowId` is a `u32`; a table at capacity reports
    /// [`RelError::TableFull`] instead of silently wrapping ids), interns
    /// every text cell into the database's string arena, and maintains the
    /// pk and fk hash indexes. Returns the new row's id.
    pub fn insert(&mut self, table: TableId, mut row: Vec<Value>) -> RelResult<RowId> {
        let pk_val = self.check_shape(table, &row)?;
        let store = &self.tables[table.0 as usize];
        let len = store.rows.len();
        if len >= self.max_rows {
            return Err(RelError::TableFull { table });
        }
        let id = RowId(len as u32);
        if store.pk_index.contains_key(&pk_val) {
            return Err(RelError::BadPrimaryKey { table });
        }
        // Checks passed: canonicalize text cells through the arena (rejected
        // rows never touch it) and commit to the indexes and row storage.
        for v in &mut row {
            if let Value::Text(s) = v {
                *s = self.arena.intern(s.clone());
            }
        }
        self.tables[table.0 as usize].pk_index.insert(pk_val, id);

        // Maintain fk indexes for every fk whose referencing side is `table`.
        for &(fk_idx, col) in &self.table_fk_cols[table.0 as usize] {
            if let Some(key) = row[col].as_int() {
                self.fk_index[fk_idx].entry(key).or_default().push(id);
            }
        }

        self.tables[table.0 as usize].rows.push(row);
        Ok(id)
    }

    /// Insert a row *with referential-integrity enforcement*: in addition to
    /// everything [`Self::insert`] checks, every non-null foreign-key value
    /// of the row must reference an existing parent. This is the live-write
    /// path — unlike bulk loading (arbitrary order, validated once at the
    /// end), an online insert must leave the database consistent so a
    /// concurrently published snapshot never serves dangling joins.
    pub fn insert_row(&mut self, table: TableId, row: Vec<Value>) -> RelResult<RowId> {
        self.check_shape(table, &row)?;
        for &(fk_idx, col) in &self.table_fk_cols[table.0 as usize] {
            if let Some(key) = row[col].as_int() {
                let parent = self.schema.fk(FkId(fk_idx as u32)).to.table;
                if self.tables[parent.0 as usize].by_pk(key).is_none() {
                    return Err(RelError::BrokenForeignKey {
                        table,
                        row: self.tables[table.0 as usize].len() as u32,
                    });
                }
            }
        }
        self.insert(table, row)
    }

    /// Translate a [`Self::check_shape`] failure into a [`BatchError`] that
    /// names the table (and attribute) and pins the offending batch row.
    fn shape_batch_error(&self, e: RelError, batch_row: usize) -> BatchError {
        match e {
            RelError::ArityMismatch {
                table,
                expected,
                got,
            } => BatchError::Arity {
                table: self.schema.table(table).name.clone(),
                batch_row,
                expected,
                got,
            },
            RelError::TypeMismatch { attr } => {
                let t = self.schema.table(attr.table);
                BatchError::Type {
                    table: t.name.clone(),
                    attr: t.attr(attr.attr).name.clone(),
                    batch_row,
                }
            }
            RelError::BadPrimaryKey { table } => BatchError::NullPrimaryKey {
                table: self.schema.table(table).name.clone(),
                batch_row,
            },
            other => unreachable!("check_shape only returns shape errors, got {other}"),
        }
    }

    /// Insert a batch of rows atomically: the whole batch is validated —
    /// arity, types, primary-key uniqueness (against the database *and*
    /// within the batch), and referential integrity, where a foreign key may
    /// resolve to a parent anywhere in the same batch — before any row is
    /// stored. On error nothing is inserted and the returned [`BatchError`]
    /// names the table and batch row that failed; on success the returned
    /// ids are in batch order.
    pub fn insert_batch(&mut self, batch: &RowBatch) -> Result<Vec<RowId>, BatchError> {
        // Phase 1: validate. `new_pks[t]` collects primary keys the batch
        // itself introduces, so intra-batch parents (in any position — the
        // batch is one atomic unit) and intra-batch pk collisions are seen.
        let mut new_pks: Vec<HashSet<i64>> = vec![HashSet::new(); self.schema.table_count()];
        for (i, (table, row)) in batch.iter().enumerate() {
            let pk_val = self
                .check_shape(*table, row)
                .map_err(|e| self.shape_batch_error(e, i))?;
            let t = table.0 as usize;
            if self.tables[t].by_pk(pk_val).is_some() || !new_pks[t].insert(pk_val) {
                return Err(BatchError::DuplicatePrimaryKey {
                    table: self.schema.table(*table).name.clone(),
                    key: pk_val,
                    batch_row: i,
                });
            }
            // Every batch row carries a distinct pk, so `new_pks[t].len()` is
            // the number of rows this batch adds to table `t` so far. Reject
            // in phase 1 if the table would cross its `u32` row-id capacity,
            // so phase 2 can still never fail.
            if self.tables[t].len() + new_pks[t].len() > self.max_rows {
                return Err(BatchError::TableFull {
                    table: self.schema.table(*table).name.clone(),
                    batch_row: i,
                });
            }
        }
        for (i, (table, row)) in batch.iter().enumerate() {
            for &(fk_idx, col) in &self.table_fk_cols[table.0 as usize] {
                if let Some(key) = row[col].as_int() {
                    let parent = self.schema.fk(FkId(fk_idx as u32)).to.table;
                    if self.tables[parent.0 as usize].by_pk(key).is_none()
                        && !new_pks[parent.0 as usize].contains(&key)
                    {
                        let t = self.schema.table(*table);
                        return Err(BatchError::DanglingForeignKey {
                            table: t.name.clone(),
                            attr: t.attrs[col].name.clone(),
                            key,
                            batch_row: i,
                        });
                    }
                }
            }
        }
        // Phase 2: apply. `insert` cannot fail after phase 1 validated
        // shape and pk uniqueness; index maintenance happens per row.
        Ok(batch
            .iter()
            .map(|(table, row)| {
                self.insert(*table, row.clone())
                    .expect("batch validated in phase 1")
            })
            .collect())
    }

    /// Check referential integrity of every foreign key (non-null fk values
    /// must have a parent row). Inserts do not enforce this — loaders insert
    /// in arbitrary order — so call this once after loading.
    pub fn validate(&self) -> RelResult<()> {
        for (_, fk) in self.schema.fks() {
            let parent = &self.tables[fk.to.table.0 as usize];
            let child = &self.tables[fk.from.table.0 as usize];
            for (rid, row) in child.rows() {
                if let Some(key) = row[fk.from.attr.0 as usize].as_int() {
                    if parent.by_pk(key).is_none() {
                        return Err(RelError::BrokenForeignKey {
                            table: fk.from.table,
                            row: rid.0,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of distinct interned strings in the arena.
    pub fn symbol_count(&self) -> usize {
        self.arena.syms.len()
    }

    /// The dense `u32` symbol id the arena assigned to `s`, if `s` occurs in
    /// any stored text cell. Ids reflect first-insertion order of this
    /// database instance and are *not* serialized — snapshots derive their
    /// own canonical dictionary from row order.
    pub fn symbol_id(&self, s: &str) -> Option<u32> {
        self.arena.lookup(s)
    }

    /// Total bytes of distinct interned string payloads.
    pub fn symbol_bytes(&self) -> u64 {
        self.arena.syms.iter().map(|s| s.len() as u64).sum()
    }

    /// Deterministic approximation of row-storage heap bytes. Counts logical
    /// content — per-row and per-cell struct sizes, one copy of each interned
    /// string, pk/fk index entries — not allocator capacities, so the result
    /// is a pure function of database content (identical across machines and
    /// runs) and can be regression-gated like any other counter.
    pub fn approx_heap_bytes(&self) -> u64 {
        // Struct-size constants for the accounting model (64-bit targets):
        // a row's `Vec<Value>` header, the `Value` enum (discriminant + the
        // 16-byte `Arc<str>` fat pointer), a pk-index entry, an fk posting,
        // and an `Arc` strong/weak refcount header per interned string.
        const ROW_VEC: u64 = 24;
        const CELL: u64 = 24;
        const PK_ENTRY: u64 = 16;
        const FK_ENTRY: u64 = 12;
        const ARC_HEADER: u64 = 16;
        let mut bytes = 0u64;
        for t in &self.tables {
            bytes += t.rows.len() as u64 * (ROW_VEC + PK_ENTRY);
            for r in &t.rows {
                bytes += r.len() as u64 * CELL;
            }
        }
        for s in &self.arena.syms {
            bytes += s.len() as u64 + ARC_HEADER;
        }
        for idx in &self.fk_index {
            for rows in idx.values() {
                bytes += rows.len() as u64 * FK_ENTRY;
            }
        }
        bytes
    }

    /// What [`Self::approx_heap_bytes`] would report for the pre-interning
    /// representation, where every text cell owned its own `String` copy.
    /// The difference between the two is exactly the interning win, computed
    /// over identical content with identical constants.
    pub fn naive_heap_bytes(&self) -> u64 {
        const ROW_VEC: u64 = 24;
        const CELL: u64 = 24;
        const PK_ENTRY: u64 = 16;
        const FK_ENTRY: u64 = 12;
        let mut bytes = 0u64;
        for t in &self.tables {
            bytes += t.rows.len() as u64 * (ROW_VEC + PK_ENTRY);
            for r in &t.rows {
                bytes += r.len() as u64 * CELL;
                for v in r {
                    if let Some(s) = v.as_text() {
                        bytes += s.len() as u64;
                    }
                }
            }
        }
        for idx in &self.fk_index {
            for rows in idx.values() {
                bytes += rows.len() as u64 * FK_ENTRY;
            }
        }
        bytes
    }

    /// Lower the per-table row capacity. Testing seam for the
    /// [`RelError::TableFull`] boundary — the real `u32::MAX + 1` limit is
    /// not reachable in a test.
    #[cfg(test)]
    pub(crate) fn set_max_rows_for_test(&mut self, n: usize) {
        self.max_rows = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SchemaBuilder, TableKind};

    fn db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        Database::new(b.finish().unwrap())
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let r = db
            .insert(actor, vec![Value::Int(7), Value::text("Tom Hanks")])
            .unwrap();
        assert_eq!(db.table(actor).len(), 1);
        assert_eq!(db.table(actor).by_pk(7), Some(r));
        assert_eq!(db.pk_value(actor, r), 7);
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let err = db.insert(actor, vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RelError::ArityMismatch { .. }));
    }

    #[test]
    fn types_checked() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let err = db
            .insert(actor, vec![Value::text("oops"), Value::text("x")])
            .unwrap_err();
        assert!(matches!(err, RelError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        db.insert(actor, vec![Value::Int(1), Value::text("a")])
            .unwrap();
        let err = db
            .insert(actor, vec![Value::Int(1), Value::text("b")])
            .unwrap_err();
        assert!(matches!(err, RelError::BadPrimaryKey { .. }));
        assert_eq!(db.table(actor).len(), 1);
    }

    #[test]
    fn null_pk_rejected() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let err = db
            .insert(actor, vec![Value::Null, Value::text("a")])
            .unwrap_err();
        assert!(matches!(err, RelError::BadPrimaryKey { .. }));
    }

    #[test]
    fn fk_index_maintained() {
        let mut db = db();
        let s = db.schema().clone();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        db.insert(actor, vec![Value::Int(1), Value::text("Hanks")])
            .unwrap();
        db.insert(
            movie,
            vec![Value::Int(10), Value::text("Terminal"), Value::Int(2004)],
        )
        .unwrap();
        let a1 = db
            .insert(acts, vec![Value::Int(100), Value::Int(1), Value::Int(10)])
            .unwrap();
        let a2 = db
            .insert(acts, vec![Value::Int(101), Value::Int(1), Value::Int(10)])
            .unwrap();

        let (fk_actor, _) = s
            .fks()
            .find(|(_, fk)| fk.to.table == actor)
            .expect("fk to actor exists");
        assert_eq!(db.fk_referrers(fk_actor, 1), &[a1, a2]);
        assert!(db.fk_referrers(fk_actor, 99).is_empty());
        db.validate().unwrap();
    }

    #[test]
    fn validate_detects_orphans() {
        let mut db = db();
        let acts = db.schema().table_id("acts").unwrap();
        db.insert(acts, vec![Value::Int(1), Value::Int(5), Value::Int(6)])
            .unwrap();
        assert!(matches!(
            db.validate().unwrap_err(),
            RelError::BrokenForeignKey { .. }
        ));
    }

    #[test]
    fn null_fk_is_legal() {
        let mut db = db();
        let acts = db.schema().table_id("acts").unwrap();
        db.insert(acts, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        db.validate().unwrap();
    }

    #[test]
    fn insert_row_enforces_referential_integrity() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        // Orphan fk rejected at insert time (unlike bulk `insert`).
        let err = db
            .insert_row(acts, vec![Value::Int(1), Value::Int(5), Value::Null])
            .unwrap_err();
        assert!(matches!(err, RelError::BrokenForeignKey { .. }));
        assert_eq!(db.table(acts).len(), 0);
        // With the parent present (and a null fk being legal) it goes in.
        db.insert_row(actor, vec![Value::Int(5), Value::text("a")])
            .unwrap();
        db.insert_row(acts, vec![Value::Int(1), Value::Int(5), Value::Null])
            .unwrap();
        db.validate().unwrap();
    }

    #[test]
    fn insert_batch_is_atomic() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        // Last row is an orphan: the whole batch must be rejected, and the
        // error names the table, column, key, and batch position.
        let bad: RowBatch = vec![
            (actor, vec![Value::Int(1), Value::text("a")]),
            (acts, vec![Value::Int(10), Value::Int(1), Value::Int(999)]),
        ];
        assert_eq!(
            db.insert_batch(&bad).unwrap_err(),
            BatchError::DanglingForeignKey {
                table: "acts".into(),
                attr: "movie_id".into(),
                key: 999,
                batch_row: 1,
            }
        );
        assert_eq!(db.total_rows(), 0, "failed batch must insert nothing");
        // Intra-batch pk collision also rejects atomically.
        let dup: RowBatch = vec![
            (actor, vec![Value::Int(1), Value::text("a")]),
            (actor, vec![Value::Int(1), Value::text("b")]),
        ];
        assert_eq!(
            db.insert_batch(&dup).unwrap_err(),
            BatchError::DuplicatePrimaryKey {
                table: "actor".into(),
                key: 1,
                batch_row: 1,
            }
        );
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn insert_batch_shape_errors_carry_batch_context() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let short: RowBatch = vec![
            (actor, vec![Value::Int(1), Value::text("a")]),
            (actor, vec![Value::Int(2)]),
        ];
        assert_eq!(
            db.insert_batch(&short).unwrap_err(),
            BatchError::Arity {
                table: "actor".into(),
                batch_row: 1,
                expected: 2,
                got: 1,
            }
        );
        let typed: RowBatch = vec![(actor, vec![Value::Int(1), Value::Int(2)])];
        assert_eq!(
            db.insert_batch(&typed).unwrap_err(),
            BatchError::Type {
                table: "actor".into(),
                attr: "name".into(),
                batch_row: 0,
            }
        );
        let null_pk: RowBatch = vec![(actor, vec![Value::Null, Value::text("a")])];
        assert_eq!(
            db.insert_batch(&null_pk).unwrap_err(),
            BatchError::NullPrimaryKey {
                table: "actor".into(),
                batch_row: 0,
            }
        );
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn insert_batch_resolves_intra_batch_parents() {
        let mut db = db();
        let s = db.schema().clone();
        let actor = s.table_id("actor").unwrap();
        let movie = s.table_id("movie").unwrap();
        let acts = s.table_id("acts").unwrap();
        // The child precedes its parents in the batch: still legal, the
        // batch is validated as one unit.
        let batch: RowBatch = vec![
            (acts, vec![Value::Int(100), Value::Int(1), Value::Int(10)]),
            (actor, vec![Value::Int(1), Value::text("Hanks")]),
            (
                movie,
                vec![Value::Int(10), Value::text("Terminal"), Value::Int(2004)],
            ),
        ];
        let ids = db.insert_batch(&batch).unwrap();
        assert_eq!(ids.len(), 3);
        db.validate().unwrap();
        // FK indexes were maintained through the batch path.
        let (fk_actor, _) = s.fks().find(|(_, fk)| fk.to.table == actor).unwrap();
        assert_eq!(db.fk_referrers(fk_actor, 1), &[ids[0]]);
        // A follow-up batch may reference rows from the earlier one.
        let more: RowBatch = vec![(acts, vec![Value::Int(101), Value::Int(1), Value::Int(10)])];
        db.insert_batch(&more).unwrap();
        db.validate().unwrap();
        assert_eq!(db.table(acts).len(), 2);
    }

    #[test]
    fn rows_iterator_order() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        for i in 0..5 {
            db.insert(actor, vec![Value::Int(i), Value::text(format!("a{i}"))])
                .unwrap();
        }
        let ids: Vec<u32> = db.table(actor).rows().map(|(r, _)| r.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn insert_reports_table_full_at_capacity() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        db.set_max_rows_for_test(2);
        db.insert(actor, vec![Value::Int(1), Value::text("a")])
            .unwrap();
        db.insert(actor, vec![Value::Int(2), Value::text("b")])
            .unwrap();
        let err = db
            .insert(actor, vec![Value::Int(3), Value::text("c")])
            .unwrap_err();
        assert_eq!(err, RelError::TableFull { table: actor });
        // The rejected row left no trace: not in storage, pk not indexed,
        // its strings not interned.
        assert_eq!(db.table(actor).len(), 2);
        assert_eq!(db.table(actor).by_pk(3), None);
        assert_eq!(db.symbol_id("c"), None);
    }

    #[test]
    fn insert_batch_reports_table_full_atomically() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        db.set_max_rows_for_test(2);
        db.insert(actor, vec![Value::Int(1), Value::text("a")])
            .unwrap();
        // Second batch row crosses capacity: whole batch rejected, error
        // pins the offending row.
        let batch: RowBatch = vec![
            (actor, vec![Value::Int(2), Value::text("b")]),
            (actor, vec![Value::Int(3), Value::text("c")]),
        ];
        assert_eq!(
            db.insert_batch(&batch).unwrap_err(),
            BatchError::TableFull {
                table: "actor".into(),
                batch_row: 1,
            }
        );
        assert_eq!(db.table(actor).len(), 1, "failed batch must insert nothing");
        // A batch that exactly fills the table is fine.
        let ok: RowBatch = vec![(actor, vec![Value::Int(2), Value::text("b")])];
        db.insert_batch(&ok).unwrap();
        assert_eq!(db.table(actor).len(), 2);
    }

    #[test]
    fn text_cells_are_interned() {
        let mut db = db();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        db.insert(actor, vec![Value::Int(1), Value::text("terminal")])
            .unwrap();
        db.insert(
            movie,
            vec![Value::Int(1), Value::text("terminal"), Value::Int(2004)],
        )
        .unwrap();
        db.insert(actor, vec![Value::Int(2), Value::text("volcano")])
            .unwrap();
        // Two distinct strings across three text cells.
        assert_eq!(db.symbol_count(), 2);
        assert_eq!(db.symbol_bytes(), "terminal".len() as u64 + 7);
        assert_eq!(db.symbol_id("terminal"), Some(0));
        assert_eq!(db.symbol_id("volcano"), Some(1));
        // Both "terminal" cells share one allocation.
        let a = db.cell(
            actor,
            RowId(0),
            crate::schema::AttrRef {
                table: actor,
                attr: crate::schema::AttrId(1),
            },
        );
        let m = db.cell(
            movie,
            RowId(0),
            crate::schema::AttrRef {
                table: movie,
                attr: crate::schema::AttrId(1),
            },
        );
        match (a, m) {
            (Value::Text(x), Value::Text(y)) => assert!(std::sync::Arc::ptr_eq(x, y)),
            other => panic!("expected text cells, got {other:?}"),
        }
        // The accounting model sees the dedup: interned footprint charges
        // "terminal" once (plus an Arc header), the naive model charges the
        // payload per cell — with repeated strings, interning wins.
        for i in 10..110 {
            db.insert(actor, vec![Value::Int(i), Value::text("terminal")])
                .unwrap();
        }
        assert!(db.approx_heap_bytes() < db.naive_heap_bytes());
    }
}
