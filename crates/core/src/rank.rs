//! Baseline rankers.
//!
//! * [`sqak_score`] — the SQAK-style ranking of §3.8.3: a query
//!   interpretation is a graph whose keyword nodes are scored by Lucene-style
//!   TF-IDF and whose keyword-free nodes and edges carry unit scores, with a
//!   Steiner-tree-minimization preference for small trees. Following the
//!   paper's description we aggregate `Σ node scores` and normalize by tree
//!   size, so shorter join sequences win ties — exactly the behaviour that
//!   hurts SQAK on the Lyrics chain queries.
//! * [`join_count_score`] — the DISCOVER/DBXplorer-era baseline: rank purely
//!   by the number of joins (§2.2.4).

use crate::interp::{BindingTarget, QueryInterpretation};
use crate::template::TemplateCatalog;
use keybridge_index::InvertedIndex;
use keybridge_relstore::{AttrRef, Database};

/// Lucene-classic-style score of a keyword bag in one attribute:
/// `Σ_k sqrt(tf̄(k)) · idf(k)²` where `tf̄` is the average per-row term
/// frequency among matching rows. Nodes whose bag never co-occurs score on
/// marginal statistics only, mirroring the Boolean-AND scoring the paper
/// plugs in for multi-keyword nodes.
fn lucene_bag_score(index: &InvertedIndex, keywords: &[String], attr: AttrRef) -> f64 {
    let mut s = 0.0;
    for k in keywords {
        let df = index.df(k, attr);
        if df == 0 {
            continue;
        }
        let occurrences = index
            .postings(k, attr)
            .map(|e| e.occurrences as f64)
            .unwrap_or(0.0);
        let avg_tf = occurrences / df as f64;
        let idf = index.idf(k, attr);
        s += avg_tf.sqrt() * idf * idf;
    }
    s
}

/// SQAK-style score: TF-IDF node scores plus unit scores for keyword-free
/// elements, normalized by tree size (Steiner minimization).
pub fn sqak_score(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
) -> f64 {
    let tpl = catalog.get(interp.template);
    let n_nodes = tpl.tree.nodes.len();
    let n_edges = tpl.tree.edges.len();

    let mut keyword_score = 0.0;
    let mut keyword_nodes = vec![false; n_nodes];
    for b in &interp.bindings {
        keyword_nodes[b.target.node()] = true;
        match b.target {
            BindingTarget::Value { node, attr } => {
                let aref = AttrRef {
                    table: tpl.tree.nodes[node],
                    attr,
                };
                keyword_score += lucene_bag_score(index, &b.keywords, aref);
            }
            // Metadata matches get a flat schema-term bonus (schema terms
            // carry maximal DF in SQAK's scheme; a constant preserves that
            // ordering without a second index).
            BindingTarget::TableName { .. } | BindingTarget::AttrName { .. } => {
                keyword_score += 1.0;
            }
        }
    }
    let free_nodes = keyword_nodes.iter().filter(|k| !**k).count();
    let unit = (free_nodes + n_edges) as f64;
    let _ = db; // schema currently unused; kept for signature stability
    (keyword_score + unit) / (n_nodes + n_edges) as f64
}

/// Join-count baseline: `1 / (1 + #joins)` — shorter joining sequences are
/// considered more relevant (§2.2.4, DISCOVER/DBXplorer).
pub fn join_count_score(catalog: &TemplateCatalog, interp: &QueryInterpretation) -> f64 {
    1.0 / (1.0 + catalog.get(interp.template).join_count() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KeywordBinding;
    use keybridge_relstore::{SchemaBuilder, TableKind, Value};

    fn setup() -> (Database, InvertedIndex, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        // "garcia" frequent in names, rare in titles -> TF-IDF prefers title.
        for (i, n) in ["andy garcia", "eva garcia", "leo garcia"]
            .iter()
            .enumerate()
        {
            db.insert(actor, vec![Value::Int(i as i64), Value::text(*n)])
                .unwrap();
        }
        for (i, t) in ["garcia", "the terminal", "top gun"].iter().enumerate() {
            db.insert(movie, vec![Value::Int(i as i64), Value::text(*t)])
                .unwrap();
        }
        let idx = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, idx, catalog)
    }

    fn single_table_interp(
        db: &Database,
        catalog: &TemplateCatalog,
        table: &str,
        attr: &str,
        kw: &str,
    ) -> QueryInterpretation {
        let tid = db.schema().table_id(table).unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![tid])
            .unwrap()
            .id;
        let aref = db.schema().resolve(table, attr).unwrap();
        QueryInterpretation::new(
            tpl,
            vec![KeywordBinding {
                keywords: vec![kw.to_owned()],
                target: BindingTarget::Value {
                    node: 0,
                    attr: aref.attr,
                },
            }],
        )
    }

    #[test]
    fn tfidf_prefers_distinctive_match() {
        // §3.8.3: "By using TF-IDF, [garcia] will be interpreted as movie
        // title, as it occurs less frequently in the movie title than in the
        // actor name."
        let (db, idx, catalog) = setup();
        let name = single_table_interp(&db, &catalog, "actor", "name", "garcia");
        let title = single_table_interp(&db, &catalog, "movie", "title", "garcia");
        assert!(sqak_score(&db, &idx, &catalog, &title) > sqak_score(&db, &idx, &catalog, &name));
    }

    #[test]
    fn steiner_minimization_prefers_small_trees() {
        let (db, _idx, catalog) = setup();
        let small = single_table_interp(&db, &catalog, "actor", "name", "garcia");
        // Same binding inside the 3-node actor-acts-movie template.
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let sig = {
            let mut s = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
            s.sort();
            s
        };
        let big_tpl = catalog.iter().find(|t| t.signature(&db) == sig).unwrap();
        let actor_node = big_tpl.nodes_of_table(actor)[0];
        let movie_node = big_tpl.nodes_of_table(movie)[0];
        let name_attr = db.schema().resolve("actor", "name").unwrap().attr;
        let title_attr = db.schema().resolve("movie", "title").unwrap().attr;
        let big = QueryInterpretation::new(
            big_tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["garcia".to_owned()],
                    target: BindingTarget::Value {
                        node: actor_node,
                        attr: name_attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".to_owned()],
                    target: BindingTarget::Value {
                        node: movie_node,
                        attr: title_attr,
                    },
                },
            ],
        );
        // join_count baseline always prefers the smaller tree.
        assert!(join_count_score(&catalog, &small) > join_count_score(&catalog, &big));
    }

    #[test]
    fn unseen_keyword_contributes_nothing() {
        let (db, idx, catalog) = setup();
        let hit = single_table_interp(&db, &catalog, "actor", "name", "garcia");
        let miss = single_table_interp(&db, &catalog, "actor", "name", "zzz");
        assert!(sqak_score(&db, &idx, &catalog, &hit) > sqak_score(&db, &idx, &catalog, &miss));
    }

    #[test]
    fn metadata_binding_scores_flat_bonus() {
        let (db, idx, catalog) = setup();
        let actor_tid = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor_tid])
            .unwrap()
            .id;
        let meta = QueryInterpretation::new(
            tpl,
            vec![KeywordBinding {
                keywords: vec!["actor".to_owned()],
                target: BindingTarget::TableName { node: 0 },
            }],
        );
        assert!(sqak_score(&db, &idx, &catalog, &meta) > 0.0);
    }
}
