//! The query hierarchy (Fig. 3.2, §3.5.3): complete and partial
//! interpretations of one keyword query connected by subsumption.
//!
//! The hierarchy is the shape IQP expands incrementally: level `j` holds the
//! interpretations consuming `j` keyword occurrences; an interpretation at a
//! lower level *subsumes* those at higher levels that extend it. The bottom
//! is small (single-keyword partials), the top is the complete
//! interpretation space — "like an upside-down trapezoid".

use crate::generate::Interpreter;
use crate::interp::QueryInterpretation;
use crate::keyword::KeywordQuery;
use crate::template::TemplateCatalog;
use keybridge_relstore::Database;
use std::collections::HashMap;

/// The materialized hierarchy of one keyword query.
#[derive(Debug, Clone)]
pub struct QueryHierarchy {
    /// `levels[j]` = interpretations consuming exactly `j + 1` keywords.
    levels: Vec<Vec<QueryInterpretation>>,
}

/// Schema-level subsumption (Def. 3.5.7): `general` is a sub-query of
/// `specific` when every binding atom of `general` appears in `specific`
/// and `general`'s table multiset is contained in `specific`'s. Node
/// identity is erased, consistent with the option semantics of IQP.
pub fn subsumes(
    general: &QueryInterpretation,
    specific: &QueryInterpretation,
    db: &Database,
    catalog: &TemplateCatalog,
) -> bool {
    // Atom containment (multiset).
    let mut have: HashMap<crate::interp::BindingAtom, usize> = HashMap::new();
    for a in specific.atoms(catalog) {
        *have.entry(a).or_default() += 1;
    }
    for a in general.atoms(catalog) {
        match have.get_mut(&a) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return false,
        }
    }
    // Table-multiset containment.
    let sig_g = catalog.get(general.template).signature(db);
    let sig_s = catalog.get(specific.template).signature(db);
    let mut counts: HashMap<&str, isize> = HashMap::new();
    for t in &sig_s {
        *counts.entry(t.as_str()).or_default() += 1;
    }
    for t in &sig_g {
        let c = counts.entry(t.as_str()).or_default();
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

impl QueryHierarchy {
    /// Materialize the hierarchy of `query` bottom-up: level `j` holds all
    /// minimal interpretations of every `j+1`-keyword sub-query. Intended
    /// for the medium scale of Chapters 3–4; the FreeQ crate explores
    /// hierarchies lazily at large scale.
    pub fn build(interpreter: &Interpreter<'_>, query: &KeywordQuery) -> Self {
        let n = query.len();
        let mut levels: Vec<Vec<QueryInterpretation>> = vec![Vec::new(); n];
        if n == 0 || n > 12 {
            return QueryHierarchy { levels };
        }
        let terms = query.terms();
        let mut seen: Vec<std::collections::HashSet<QueryInterpretation>> =
            vec![Default::default(); n];
        for mask in 1u32..(1u32 << n) {
            let size = mask.count_ones() as usize;
            let subset: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| terms[i].clone())
                .collect();
            let sub = KeywordQuery::from_terms(subset);
            for interp in interpreter.enumerate_interpretations(&sub) {
                if seen[size - 1].insert(interp.clone()) {
                    levels[size - 1].push(interp);
                }
            }
        }
        for level in &mut levels {
            level.sort_by(|a, b| {
                a.template
                    .cmp(&b.template)
                    .then_with(|| a.bindings.cmp(&b.bindings))
            });
        }
        QueryHierarchy { levels }
    }

    /// Number of levels (= keyword count of the query).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Interpretations consuming exactly `keywords` keywords (1-based).
    pub fn level(&self, keywords: usize) -> &[QueryInterpretation] {
        static EMPTY: Vec<QueryInterpretation> = Vec::new();
        self.levels.get(keywords.wrapping_sub(1)).unwrap_or(&EMPTY)
    }

    /// The top level: complete interpretations.
    pub fn top(&self) -> &[QueryInterpretation] {
        self.levels.last().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of interpretations across levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(Vec::is_empty)
    }

    /// The complete interpretations subsumed by `partial` (the queries the
    /// user keeps when accepting `partial` as a construction option).
    pub fn extensions_of(
        &self,
        partial: &QueryInterpretation,
        db: &Database,
        catalog: &TemplateCatalog,
    ) -> Vec<&QueryInterpretation> {
        self.top()
            .iter()
            .filter(|c| subsumes(partial, c, db, catalog))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::InterpreterConfig;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::InvertedIndex;

    struct Fixture {
        data: ImdbDataset,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            data,
            index,
            catalog,
        }
    }

    fn two_keyword_query(f: &Fixture) -> KeywordQuery {
        let row = f
            .data
            .db
            .table(f.data.actor)
            .row(keybridge_relstore::RowId(0));
        let name = row[1].as_text().unwrap();
        let toks: Vec<String> = name.split(' ').map(str::to_owned).collect();
        KeywordQuery::from_terms(toks)
    }

    #[test]
    fn trapezoid_shape() {
        let f = fixture();
        let q = two_keyword_query(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let h = QueryHierarchy::build(&interp, &q);
        assert_eq!(h.depth(), 2);
        assert!(!h.is_empty());
        assert!(!h.top().is_empty());
        // Fig. 3.2: the top level is at least as wide as the bottom is
        // narrow — and every top entry is complete.
        for c in h.top() {
            assert!(c.is_complete(&q));
        }
        for p in h.level(1) {
            assert!(!p.is_complete(&q));
        }
        assert_eq!(h.len(), h.level(1).len() + h.level(2).len());
    }

    #[test]
    fn partials_subsume_their_extensions() {
        let f = fixture();
        let q = two_keyword_query(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let h = QueryHierarchy::build(&interp, &q);
        let mut found_extension = false;
        for p in h.level(1) {
            for c in h.extensions_of(p, &f.data.db, &f.catalog) {
                assert!(subsumes(p, c, &f.data.db, &f.catalog));
                found_extension = true;
            }
        }
        assert!(found_extension, "no partial subsumed any complete");
    }

    #[test]
    fn subsumption_is_reflexive_and_ordered() {
        let f = fixture();
        let q = two_keyword_query(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let h = QueryHierarchy::build(&interp, &q);
        if let Some(c) = h.top().first() {
            assert!(subsumes(c, c, &f.data.db, &f.catalog));
        }
        // A complete interpretation never subsumes a 1-keyword partial.
        if let (Some(c), Some(p)) = (h.top().first(), h.level(1).first()) {
            assert!(!subsumes(c, p, &f.data.db, &f.catalog));
        }
    }

    #[test]
    fn empty_query_empty_hierarchy() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let h = QueryHierarchy::build(&interp, &KeywordQuery::from_terms(vec![]));
        assert!(h.is_empty());
        assert_eq!(h.depth(), 0);
        assert!(h.top().is_empty());
        assert!(h.level(5).is_empty());
    }
}
