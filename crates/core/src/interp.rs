//! Query interpretations (Defs. 3.5.3–3.5.5): assignments of keywords to the
//! elements of a query template.

use crate::keyword::KeywordQuery;
use crate::template::{QueryTemplate, TemplateCatalog, TemplateId};
use keybridge_relstore::{AttrId, AttrRef, Database};
use std::collections::HashMap;

/// What a keyword bag is bound to inside a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BindingTarget {
    /// `keywords ⊂ attr` containment predicate on a template node.
    Value { node: usize, attr: AttrId },
    /// The keyword names the node's table ("actor").
    TableName { node: usize },
    /// The keyword names an attribute of the node ("title").
    AttrName { node: usize, attr: AttrId },
}

impl BindingTarget {
    /// The template node this target lives on.
    pub fn node(&self) -> usize {
        match self {
            BindingTarget::Value { node, .. }
            | BindingTarget::TableName { node }
            | BindingTarget::AttrName { node, .. } => *node,
        }
    }
}

/// One keyword binding: a bag of keywords mapped to one target.
/// Value targets may carry several keywords (the `{tom, hanks} ⊂ name`
/// predicate); name targets always carry exactly one.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeywordBinding {
    pub keywords: Vec<String>,
    pub target: BindingTarget,
}

/// The kind of a schema-level binding atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BindingAtomKind {
    Value,
    TableName,
    AttrName,
}

/// A *schema-level* fact about one keyword's interpretation: "keyword k is
/// bound to attribute A (as a value / as a name)" with template-node identity
/// erased. Atoms are what query construction options assert and what
/// subsumption tests compare (§3.5.3); collapsing node identity is the
/// approximation that lets one option ("hanks is an actor's name") prune
/// every template in one step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BindingAtom {
    pub keyword: String,
    pub kind: BindingAtomKind,
    /// The bound attribute for `Value`/`AttrName`; for `TableName` the
    /// table's id is stored in `attr.table` and `attr.attr` is `AttrId(0)`.
    pub attr: AttrRef,
}

/// A structured query interpreting (part of) a keyword query (Def. 3.5.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryInterpretation {
    pub template: TemplateId,
    /// Bindings sorted by target for canonical comparison.
    pub bindings: Vec<KeywordBinding>,
}

impl QueryInterpretation {
    /// Create an interpretation, normalizing binding order.
    pub fn new(template: TemplateId, mut bindings: Vec<KeywordBinding>) -> Self {
        for b in &mut bindings {
            b.keywords.sort();
        }
        bindings.sort();
        QueryInterpretation { template, bindings }
    }

    /// Total number of keyword occurrences the interpretation consumes.
    pub fn keyword_count(&self) -> usize {
        self.bindings.iter().map(|b| b.keywords.len()).sum()
    }

    /// Whether the interpretation consumes every keyword of `query`
    /// (a *complete* interpretation; otherwise *partial*).
    pub fn is_complete(&self, query: &KeywordQuery) -> bool {
        if self.keyword_count() != query.len() {
            return false;
        }
        let mut have: HashMap<&str, usize> = HashMap::new();
        for b in &self.bindings {
            for k in &b.keywords {
                *have.entry(k.as_str()).or_default() += 1;
            }
        }
        have == query.term_counts()
    }

    /// The interpretation's schema-level atoms, one per keyword occurrence.
    pub fn atoms(&self, catalog: &TemplateCatalog) -> Vec<BindingAtom> {
        let tpl = catalog.get(self.template);
        let mut out = Vec::with_capacity(self.keyword_count());
        for b in &self.bindings {
            let table = tpl.tree.nodes[b.target.node()];
            let (kind, attr) = match b.target {
                BindingTarget::Value { attr, .. } => {
                    (BindingAtomKind::Value, AttrRef { table, attr })
                }
                BindingTarget::TableName { .. } => (
                    BindingAtomKind::TableName,
                    AttrRef {
                        table,
                        attr: AttrId(0),
                    },
                ),
                BindingTarget::AttrName { attr, .. } => {
                    (BindingAtomKind::AttrName, AttrRef { table, attr })
                }
            };
            for k in &b.keywords {
                out.push(BindingAtom {
                    keyword: k.clone(),
                    kind,
                    attr,
                });
            }
        }
        out.sort();
        out
    }

    /// Whether this interpretation contains `atom` (subsumption test for
    /// query construction options, Def. 3.5.7 at the atom granularity).
    pub fn contains_atom(&self, catalog: &TemplateCatalog, atom: &BindingAtom) -> bool {
        self.atoms(catalog).contains(atom)
    }

    /// Whether the minimality condition (Def. 3.5.4(2)) holds: pruning any
    /// unused leaf of the template would yield a smaller valid query, so
    /// every leaf node must carry at least one binding.
    pub fn is_minimal(&self, catalog: &TemplateCatalog) -> bool {
        let tpl = catalog.get(self.template);
        let n = tpl.tree.nodes.len();
        let mut used = vec![false; n];
        for b in &self.bindings {
            used[b.target.node()] = true;
        }
        (0..n).all(|i| !tpl.is_leaf(i) || used[i])
    }
}

/// A schema-level description of an *intended* interpretation, used to match
/// candidate interpretations against workload ground truth without depending
/// on the workload generator's types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentDescription {
    /// `(keywords, table name, attribute name)` triples.
    pub bindings: Vec<(Vec<String>, String, String)>,
    /// Sorted multiset of table names of the intended join tree.
    pub tables: Vec<String>,
}

impl IntentDescription {
    /// Whether `interp` realizes this intent: same template signature and the
    /// same keyword→attribute assignment (aggregated per attribute, so it is
    /// insensitive to how keywords split across occurrences of a table).
    pub fn matches(
        &self,
        interp: &QueryInterpretation,
        db: &Database,
        catalog: &TemplateCatalog,
    ) -> bool {
        let tpl: &QueryTemplate = catalog.get(interp.template);
        if tpl.signature(db) != self.tables {
            return false;
        }
        // Aggregate keyword multisets per (table, attr) on both sides.
        let mut want: HashMap<(String, String), Vec<String>> = HashMap::new();
        for (kws, table, attr) in &self.bindings {
            want.entry((table.clone(), attr.clone()))
                .or_default()
                .extend(kws.iter().cloned());
        }
        let mut got: HashMap<(String, String), Vec<String>> = HashMap::new();
        for b in &interp.bindings {
            let table = tpl.tree.nodes[b.target.node()];
            let tdef = db.schema().table(table);
            let key = match b.target {
                BindingTarget::Value { attr, .. } => {
                    (tdef.name.clone(), tdef.attr(attr).name.clone())
                }
                // Name bindings never occur in generated intents.
                _ => return false,
            };
            got.entry(key)
                .or_default()
                .extend(b.keywords.iter().cloned());
        }
        if want.len() != got.len() {
            return false;
        }
        for (k, mut v) in want {
            let Some(mut g) = got.remove(&k) else {
                return false;
            };
            v.sort();
            g.sort();
            if v != g {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{SchemaBuilder, TableKind};

    fn setup() -> (Database, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let db = Database::new(b.finish().unwrap());
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, catalog)
    }

    fn actor_acts_movie(db: &Database, c: &TemplateCatalog) -> TemplateId {
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        c.iter().find(|t| t.signature(db) == sig).unwrap().id
    }

    #[test]
    fn completeness() {
        let (db, c) = setup();
        let tid = actor_acts_movie(&db, &c);
        let tpl = c.get(tid);
        let actor_node = tpl.nodes_of_table(db.schema().table_id("actor").unwrap())[0];
        let movie_node = tpl.nodes_of_table(db.schema().table_id("movie").unwrap())[0];
        let name = db.schema().resolve("actor", "name").unwrap().attr;
        let title = db.schema().resolve("movie", "title").unwrap().attr;
        let q = KeywordQuery::from_terms(vec!["hanks".into(), "terminal".into()]);
        let full = QueryInterpretation::new(
            tid,
            vec![
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: actor_node,
                        attr: name,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: movie_node,
                        attr: title,
                    },
                },
            ],
        );
        assert!(full.is_complete(&q));
        assert!(full.is_minimal(&c));
        let partial = QueryInterpretation::new(
            tid,
            vec![KeywordBinding {
                keywords: vec!["hanks".into()],
                target: BindingTarget::Value {
                    node: actor_node,
                    attr: name,
                },
            }],
        );
        assert!(!partial.is_complete(&q));
        // Unused movie leaf: not minimal.
        assert!(!partial.is_minimal(&c));
    }

    #[test]
    fn atoms_erase_node_identity() {
        let (db, c) = setup();
        let tid = actor_acts_movie(&db, &c);
        let tpl = c.get(tid);
        let actor_node = tpl.nodes_of_table(db.schema().table_id("actor").unwrap())[0];
        let name = db.schema().resolve("actor", "name").unwrap();
        let i = QueryInterpretation::new(
            tid,
            vec![KeywordBinding {
                keywords: vec!["tom".into(), "hanks".into()],
                target: BindingTarget::Value {
                    node: actor_node,
                    attr: name.attr,
                },
            }],
        );
        let atoms = i.atoms(&c);
        assert_eq!(atoms.len(), 2);
        assert!(atoms
            .iter()
            .all(|a| a.attr == name && a.kind == BindingAtomKind::Value));
        assert!(i.contains_atom(
            &c,
            &BindingAtom {
                keyword: "hanks".into(),
                kind: BindingAtomKind::Value,
                attr: name,
            }
        ));
        assert!(!i.contains_atom(
            &c,
            &BindingAtom {
                keyword: "cruise".into(),
                kind: BindingAtomKind::Value,
                attr: name,
            }
        ));
    }

    #[test]
    fn canonical_ordering() {
        let (db, c) = setup();
        let tid = actor_acts_movie(&db, &c);
        let tpl = c.get(tid);
        let actor_node = tpl.nodes_of_table(db.schema().table_id("actor").unwrap())[0];
        let movie_node = tpl.nodes_of_table(db.schema().table_id("movie").unwrap())[0];
        let name = db.schema().resolve("actor", "name").unwrap().attr;
        let title = db.schema().resolve("movie", "title").unwrap().attr;
        let b1 = KeywordBinding {
            keywords: vec!["hanks".into()],
            target: BindingTarget::Value {
                node: actor_node,
                attr: name,
            },
        };
        let b2 = KeywordBinding {
            keywords: vec!["terminal".into()],
            target: BindingTarget::Value {
                node: movie_node,
                attr: title,
            },
        };
        let a = QueryInterpretation::new(tid, vec![b1.clone(), b2.clone()]);
        let b = QueryInterpretation::new(tid, vec![b2, b1]);
        assert_eq!(a, b);
    }

    #[test]
    fn intent_matching() {
        let (db, c) = setup();
        let tid = actor_acts_movie(&db, &c);
        let tpl = c.get(tid);
        let actor_node = tpl.nodes_of_table(db.schema().table_id("actor").unwrap())[0];
        let movie_node = tpl.nodes_of_table(db.schema().table_id("movie").unwrap())[0];
        let name = db.schema().resolve("actor", "name").unwrap().attr;
        let title = db.schema().resolve("movie", "title").unwrap().attr;
        let interp = QueryInterpretation::new(
            tid,
            vec![
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: actor_node,
                        attr: name,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: movie_node,
                        attr: title,
                    },
                },
            ],
        );
        let intent = IntentDescription {
            bindings: vec![
                (vec!["hanks".into()], "actor".into(), "name".into()),
                (vec!["terminal".into()], "movie".into(), "title".into()),
            ],
            tables: vec!["actor".into(), "acts".into(), "movie".into()],
        };
        assert!(intent.matches(&interp, &db, &c));

        // Wrong attribute.
        let wrong = IntentDescription {
            bindings: vec![
                (vec!["hanks".into()], "movie".into(), "title".into()),
                (vec!["terminal".into()], "actor".into(), "name".into()),
            ],
            tables: vec!["actor".into(), "acts".into(), "movie".into()],
        };
        assert!(!wrong.matches(&interp, &db, &c));

        // Wrong template signature.
        let wrong_tables = IntentDescription {
            bindings: vec![(vec!["hanks".into()], "actor".into(), "name".into())],
            tables: vec!["actor".into()],
        };
        assert!(!wrong_tables.matches(&interp, &db, &c));
    }
}
