//! Concurrent query serving — **Hot path 3**: from "fast library" to "fast
//! server".
//!
//! The per-query pipeline (best-first generation → streaming execution) is
//! read-only over three immutable structures: the [`Database`], its
//! [`InvertedIndex`], and the [`TemplateCatalog`]. A [`SearchSnapshot`]
//! bundles the three behind one `Arc` so any number of worker threads can
//! serve from the same memory without copies or locks on the data itself.
//!
//! What *does* need coordination is the derived state queries build as they
//! run: non-emptiness verdicts and predicate row sets. [`SearchService`]
//! keeps those in two process-wide, lock-striped maps
//! ([`SharedNonemptyCache`], [`SharedExecCache`]) handed to every request
//! as the backing tier of its per-query caches — one user's pruning work
//! prunes every other user's search, which is what makes repeated keyword
//! workloads tractable at service scale (the Mragyati/EMBANKS observation).
//!
//! Sharing is *result-invariant by construction*: shared non-emptiness
//! verdicts and predicate row sets are pure facts about the indexed
//! database, and only complete execution results (never truncated ones) are
//! shared, so a request through a warm, contended service returns exactly
//! what a cold single-threaded [`Interpreter`] returns. `tests/service.rs`
//! asserts that identity on all four datagen fixtures.

use crate::exec::{ExecCache, SharedExecCache};
use crate::generate::{
    AnswerStats, GenerationStats, Interpreter, InterpreterConfig, NonemptyCache, RankedAnswer,
    ScoredInterpretation, SharedNonemptyCache,
};
use crate::keyword::KeywordQuery;
use crate::template::TemplateCatalog;
use keybridge_index::InvertedIndex;
use keybridge_relstore::{Database, ExecOptions, RelResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// An immutable, `Arc`-shared view of everything a query needs: database,
/// inverted index, template catalog, and the interpreter configuration.
/// Building one up front and sharing it is what lets N workers serve
/// without any per-query setup cost or data duplication.
#[derive(Debug)]
pub struct SearchSnapshot {
    pub db: Database,
    pub index: InvertedIndex,
    pub catalog: TemplateCatalog,
    pub config: InterpreterConfig,
}

impl SearchSnapshot {
    /// Bundle prebuilt parts into a snapshot.
    pub fn new(
        db: Database,
        index: InvertedIndex,
        catalog: TemplateCatalog,
        config: InterpreterConfig,
    ) -> Self {
        SearchSnapshot {
            db,
            index,
            catalog,
            config,
        }
    }

    /// Build index and catalog from a database — the one-stop constructor
    /// the examples use. `max_joins` / `max_templates` bound the catalog
    /// enumeration exactly like [`TemplateCatalog::enumerate`].
    pub fn build(
        db: Database,
        config: InterpreterConfig,
        max_joins: usize,
        max_templates: usize,
    ) -> RelResult<Self> {
        let index = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, max_joins, max_templates)?;
        Ok(SearchSnapshot::new(db, index, catalog, config))
    }

    /// A borrowing interpreter over this snapshot.
    pub fn interpreter(&self) -> Interpreter<'_> {
        Interpreter::new(&self.db, &self.index, &self.catalog, self.config.clone())
    }
}

/// Cache/serving counters of a running service, for benches and logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests completed (all kinds).
    pub served: usize,
    /// Distinct non-emptiness verdicts in the shared cache.
    pub nonempty_entries: usize,
    /// Cross-query non-emptiness hits.
    pub nonempty_hits: usize,
    /// Distinct predicate row sets in the shared cache.
    pub predicate_entries: usize,
    /// Cross-query predicate hits.
    pub predicate_hits: usize,
    /// Complete executions in the shared cache.
    pub result_entries: usize,
    /// Cross-query whole-result hits.
    pub result_hits: usize,
}

/// A pending reply. `wait` blocks until the serving worker finishes;
/// `None` means the service shut down (or a worker died) before replying.
pub struct Ticket<T>(Receiver<T>);

impl<T> Ticket<T> {
    pub fn wait(self) -> Option<T> {
        self.0.recv().ok()
    }
}

enum Job {
    Answers {
        query: KeywordQuery,
        k: usize,
        reply: Sender<(Vec<RankedAnswer>, AnswerStats)>,
    },
    Interpretations {
        query: KeywordQuery,
        k: usize,
        reply: Sender<(Vec<ScoredInterpretation>, GenerationStats)>,
    },
}

/// A multi-user keyword-search server: one immutable [`SearchSnapshot`]
/// served by N OS threads pulling jobs off a shared channel, with all
/// cross-query derived state in the two shared caches. Requests can be
/// issued from any number of client threads; replies arrive on per-request
/// [`Ticket`]s. Dropping the service hangs up the job channel and joins the
/// workers.
pub struct SearchService {
    snapshot: Arc<SearchSnapshot>,
    nonempty: Arc<SharedNonemptyCache>,
    exec: Arc<SharedExecCache>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicUsize>,
}

impl SearchService {
    /// Start `workers` threads serving `snapshot` (at least one).
    pub fn start(snapshot: Arc<SearchSnapshot>, workers: usize) -> Self {
        let nonempty = Arc::new(SharedNonemptyCache::new());
        let exec = Arc::new(SharedExecCache::new());
        let served = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let snapshot = Arc::clone(&snapshot);
                let nonempty = Arc::clone(&nonempty);
                let exec = Arc::clone(&exec);
                let served = Arc::clone(&served);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("keybridge-worker-{i}"))
                    .spawn(move || worker_loop(&snapshot, &nonempty, &exec, &served, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        SearchService {
            snapshot,
            nonempty,
            exec,
            tx: Some(tx),
            workers,
            served,
        }
    }

    /// The snapshot being served.
    pub fn snapshot(&self) -> &Arc<SearchSnapshot> {
        &self.snapshot
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a top-k *answers* request (the end-to-end hot path).
    pub fn submit(
        &self,
        query: KeywordQuery,
        k: usize,
    ) -> Ticket<(Vec<RankedAnswer>, AnswerStats)> {
        let (reply, rx) = channel();
        self.send(Job::Answers { query, k, reply });
        Ticket(rx)
    }

    /// Enqueue a top-k *interpretations* request (no execution).
    pub fn submit_interpretations(
        &self,
        query: KeywordQuery,
        k: usize,
    ) -> Ticket<(Vec<ScoredInterpretation>, GenerationStats)> {
        let (reply, rx) = channel();
        self.send(Job::Interpretations { query, k, reply });
        Ticket(rx)
    }

    /// Blocking convenience: submit and wait.
    ///
    /// # Panics
    ///
    /// Panics if the serving worker died (e.g. panicked) before replying —
    /// a dead worker must never masquerade as a zero-result query. Callers
    /// that need to observe disconnection as a value use
    /// [`Self::submit`] + [`Ticket::wait`].
    pub fn search(&self, query: &KeywordQuery, k: usize) -> Vec<RankedAnswer> {
        self.search_with_stats(query, k).0
    }

    /// [`Self::search`] with the per-request counters.
    pub fn search_with_stats(
        &self,
        query: &KeywordQuery,
        k: usize,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        self.submit(query.clone(), k)
            .wait()
            .expect("SearchService worker disconnected before replying")
    }

    /// Current serving/cache counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            served: self.served.load(Ordering::Relaxed),
            nonempty_entries: self.nonempty.len(),
            nonempty_hits: self.nonempty.hits(),
            predicate_entries: self.exec.predicate_count(),
            predicate_hits: self.exec.predicate_hits(),
            result_entries: self.exec.result_count(),
            result_hits: self.exec.result_hits(),
        }
    }

    fn send(&self, job: Job) {
        if let Some(tx) = &self.tx {
            // A send only fails when every worker is gone; the caller then
            // observes the hang-up through its ticket.
            let _ = tx.send(job);
        }
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        self.tx.take(); // hang up: workers drain the queue, then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    snapshot: &SearchSnapshot,
    nonempty: &Arc<SharedNonemptyCache>,
    exec: &Arc<SharedExecCache>,
    served: &AtomicUsize,
    rx: &Mutex<Receiver<Job>>,
) {
    let interpreter = snapshot.interpreter();
    loop {
        // Hold the receiver lock only for the pop, never while serving.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked mid-pop; shut down
        };
        let Ok(job) = job else { return }; // channel hung up: drained + done
        match job {
            Job::Answers { query, k, reply } => {
                let mut gen_cache = NonemptyCache::with_shared(Arc::clone(nonempty));
                let mut exec_cache = ExecCache::with_shared(Arc::clone(exec));
                let out = interpreter.answers_top_k_with_caches(
                    &query,
                    k,
                    ExecOptions::default(),
                    &mut gen_cache,
                    &mut exec_cache,
                );
                // Count before replying so a client that just got its answer
                // never observes a stale total.
                served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(out); // client may have given up: fine
            }
            Job::Interpretations { query, k, reply } => {
                let mut gen_cache = NonemptyCache::with_shared(Arc::clone(nonempty));
                let out = interpreter.top_k_with_cache(&query, k, true, &mut gen_cache);
                served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(out);
            }
        }
    }
}

// The whole point of the snapshot/service split: everything a worker
// touches must cross threads. These bounds are checked at compile time, so
// any future interior-mutability seam (an `Rc`, a `RefCell`) in relstore,
// textindex, or core breaks the build here instead of a user's deploy.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SearchSnapshot>();
    assert_send_sync::<SharedNonemptyCache>();
    assert_send_sync::<SharedExecCache>();
    assert_send_sync::<SearchService>();
    assert_send_sync::<Database>();
    assert_send_sync::<InvertedIndex>();
    assert_send_sync::<TemplateCatalog>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};

    fn snapshot() -> Arc<SearchSnapshot> {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        Arc::new(SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap())
    }

    #[test]
    fn service_matches_direct_interpreter() {
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let direct = snap.interpreter().answers_top_k(&q, 5);
        let served = service.search(&q, 5);
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
            assert_eq!(a.keys, b.keys);
            assert!((a.log_score - b.log_score).abs() < 1e-12);
        }
        assert_eq!(service.stats().served, 1);
    }

    #[test]
    fn shared_caches_fill_and_hit_across_requests() {
        let snap = snapshot();
        let service = SearchService::start(snap, 1);
        let q = KeywordQuery::from_terms(vec!["tom".into(), "hanks".into()]);
        let (first, _) = service.search_with_stats(&q, 5);
        let stats = service.stats();
        assert!(
            stats.nonempty_entries > 0,
            "no shared verdicts after a query"
        );
        assert!(
            stats.predicate_entries > 0,
            "no shared predicates after a query"
        );
        // Replay: the second request's generation must be served from the
        // shared tier (zero fresh probes) and return identical answers.
        let (second, astats) = service.search_with_stats(&q, 5);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
        }
        assert_eq!(astats.gen.nonempty_probes, 0, "replay re-probed the index");
        let stats = service.stats();
        assert!(stats.nonempty_hits > 0);
        assert!(stats.result_hits + stats.predicate_hits > 0);
    }

    #[test]
    fn interpretations_requests_served() {
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let direct = snap.interpreter().top_k(&q, 7);
        let (served, _) = service
            .submit_interpretations(q, 7)
            .wait()
            .expect("service alive");
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.interpretation, b.interpretation);
            assert!((a.log_score - b.log_score).abs() < 1e-12);
        }
    }

    #[test]
    fn many_tickets_in_flight() {
        let snap = snapshot();
        let service = SearchService::start(snap, 4);
        let queries = ["tom", "day", "moore", "mary"];
        let tickets: Vec<_> = (0..16)
            .map(|i| {
                let q = KeywordQuery::from_terms(vec![queries[i % queries.len()].into()]);
                (i, service.submit(q, 3))
            })
            .collect();
        for (i, t) in tickets {
            let (answers, _) = t.wait().expect("worker alive");
            assert!(answers.len() <= 3, "request {i} overflowed k");
        }
        assert_eq!(service.stats().served, 16);
    }

    #[test]
    fn drop_joins_workers() {
        let snap = snapshot();
        let service = SearchService::start(snap, 3);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let _ = service.search(&q, 2);
        drop(service); // must not hang or leak threads
    }
}
