//! Concurrent query serving — **Hot path 3** (immutable snapshot serving)
//! and **Hot path 4** (live ingestion with epoch-swapped snapshots).
//!
//! The per-query pipeline (best-first generation → streaming execution) is
//! read-only over three structures: the [`Database`], its
//! [`InvertedIndex`], and the [`TemplateCatalog`]. A [`SearchSnapshot`]
//! bundles the three behind one `Arc` so any number of worker threads can
//! serve from the same memory without copies or locks on the data itself.
//!
//! What *does* need coordination is the derived state queries build as they
//! run: non-emptiness verdicts and predicate row sets. [`SearchService`]
//! keeps those in two process-wide, lock-striped maps
//! ([`SharedNonemptyCache`], [`SharedExecCache`]) handed to every request
//! as the backing tier of its per-query caches — one user's pruning work
//! prunes every other user's search, which is what makes repeated keyword
//! workloads tractable at service scale (the Mragyati/EMBANKS observation).
//!
//! Sharing is *result-invariant by construction*: shared non-emptiness
//! verdicts and predicate row sets are pure facts about the indexed
//! database, and only complete execution results (never truncated ones) are
//! shared, so a request through a warm, contended service returns exactly
//! what a cold single-threaded [`Interpreter`] returns. `tests/service.rs`
//! asserts that identity on all four datagen fixtures.
//!
//! ## Live ingestion: epochs
//!
//! The paper's pipeline assumes a frozen database; a production deployment
//! must absorb inserts while answering queries. [`SearchService::ingest`]
//! applies a validated [`RowBatch`] to a private writer copy of the store
//! (primary-key / foreign-key indexes maintained, referential integrity
//! enforced), splices the new rows into the writer's inverted index
//! incrementally, and then **publishes** the result as a fresh
//! [`SearchSnapshot`] under the next [`SnapshotEpoch`] — rebuild-and-swap
//! behind a `Mutex<Arc<..>>`, the std-only `ArcSwap` idiom.
//!
//! Every epoch carries its *own generation* of the two shared caches,
//! bundled with the snapshot in one [`ServingState`] `Arc` that workers
//! load atomically per request. Because a cache generation can only ever be
//! reached through the state that owns it, a verdict or predicate row set
//! computed against epoch *n* is structurally unreachable from epoch
//! *n + 1* — stale entries cannot leak into post-update answers, no
//! per-entry tagging or invalidation sweep required. The displaced
//! generation's entries are counted in [`ServiceStats::stale_evictions`]
//! and freed when the last in-flight request of the old epoch finishes.
//! In-flight requests keep serving the epoch they started on (snapshot
//! isolation); `tests/ingest.rs` asserts live-updated answers are
//! byte-identical to a cold rebuild after every batch, and the epoch-race
//! stress test in `tests/service.rs` asserts every racing reply matches
//! exactly the oracle of the epoch it reports.
//!
//! ## Durability: WAL + checkpoints — **Hot path 6**
//!
//! A service started with [`SearchService::start_durable`] (or recovered
//! with [`SearchService::open`]) additionally survives process death. Every
//! accepted batch is appended to a CRC-framed write-ahead log and fsynced
//! *before* its epoch is published, so an epoch a client ever observed is
//! always reconstructible; [`SearchService::checkpoint`] folds the log into
//! a fresh atomic `snapshot.kb` and truncates it. Recovery loads the latest
//! snapshot, replays the WAL tail (discarding a torn final record), and
//! serves the newest durable epoch — `tests/recovery.rs` kills the service
//! at every [`FaultPoint`] and asserts the recovered answers are
//! byte-identical to a never-crashed oracle.
//!
//! ## The Request/Reply seam — **Hot path 8**
//!
//! Every serving mode is a value of the typed [`Request`] enum; submitting
//! one through [`ServeRequests::submit_request`] yields a [`Ticket`]
//! resolving to the matching [`Reply`] arm. Both [`SearchService`] and the
//! sharded scatter-gather router ([`crate::sharded::ShardedService`])
//! implement [`ServeRequests`], so the open-loop harness, the smoke driver,
//! and the differential suites drive either through the same trait. Use
//! [`ServiceBuilder`] to configure and start either service; the legacy
//! constructor triplet and the `submit_*`/`search_*` wrappers remain as
//! thin conveniences over the seam:
//!
//! | legacy method                        | request seam equivalent                 |
//! |--------------------------------------|-----------------------------------------|
//! | `submit(query, k)`                   | `Request::Answers { query, k }`         |
//! | `submit_interpretations(query, k)`   | `Request::Interpretations { query, k }` |
//! | `submit_diversified(query, opts)`    | `Request::Diversified { query, opts }`  |
//! | `submit_timed(query, k)`             | `Request::AnswersTimed { query, k }`    |
//! | `submit_diversified_timed(q, opts)`  | `Request::DiversifiedTimed { .. }`      |
//! | `search` / `search_with_stats` / `search_versioned` | blocking `Request::Answers`  |
//! | `search_diversified(query, opts)`    | blocking `Request::Diversified`         |
//! | `SearchService::start`               | `ServiceBuilder::new().workers(n).start`|
//! | `SearchService::start_durable`       | `ServiceBuilder::…​.durable(dir).start`  |
//! | `SearchService::open`                | `ServiceBuilder::…​.durable(dir).open`   |
//!
//! The `submit_panicking` / `submit_sleeping` testing seams are no longer
//! part of the default public surface: they compile only under the
//! `test-seams` cargo feature (or `cfg(test)`).

use crate::construct::{ConstructionOption, ConstructionSession, SessionConfig};
use crate::exec::{ExecCache, ExecutedResult, SharedExecCache};
use crate::generate::{
    AnswerStats, GenerationStats, Interpreter, InterpreterConfig, NonemptyCache, RankedAnswer,
    ScoredInterpretation, SharedNonemptyCache,
};
use crate::keyword::KeywordQuery;
use crate::pipeline::{DiversifiedAnswer, DiversifyOptions, QueryPipeline};
use crate::template::TemplateCatalog;
use crate::wal::{
    read_snapshot_file, scan_wal, write_snapshot_file, DurabilityError, FaultPlan, FaultPoint, Wal,
    SNAPSHOT_FILE,
};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{BatchError, Database, ExecOptions, RelResult, RowBatch, RowId, TableId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An immutable, `Arc`-shared view of everything a query needs: database,
/// inverted index, template catalog, and the interpreter configuration.
/// Building one up front and sharing it is what lets N workers serve
/// without any per-query setup cost or data duplication.
#[derive(Debug)]
pub struct SearchSnapshot {
    pub db: Database,
    pub index: InvertedIndex,
    pub catalog: TemplateCatalog,
    pub config: InterpreterConfig,
}

impl SearchSnapshot {
    /// Bundle prebuilt parts into a snapshot.
    pub fn new(
        db: Database,
        index: InvertedIndex,
        catalog: TemplateCatalog,
        config: InterpreterConfig,
    ) -> Self {
        SearchSnapshot {
            db,
            index,
            catalog,
            config,
        }
    }

    /// Build index and catalog from a database — the one-stop constructor
    /// the examples use. `max_joins` / `max_templates` bound the catalog
    /// enumeration exactly like [`TemplateCatalog::enumerate`].
    pub fn build(
        db: Database,
        config: InterpreterConfig,
        max_joins: usize,
        max_templates: usize,
    ) -> RelResult<Self> {
        let index = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, max_joins, max_templates)?;
        Ok(SearchSnapshot::new(db, index, catalog, config))
    }

    /// A borrowing interpreter over this snapshot.
    pub fn interpreter(&self) -> Interpreter<'_> {
        Interpreter::new(&self.db, &self.index, &self.catalog, self.config.clone())
    }
}

/// The version of the database a snapshot was built from. Starts at 0 for
/// the snapshot the service was started with and increments once per
/// successful [`SearchService::ingest`]. Replies report the epoch that
/// served them, so clients (and the differential suites) can match a racing
/// reply against the exact database state it saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SnapshotEpoch(pub u64);

impl std::fmt::Display for SnapshotEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One served generation: a snapshot plus the shared-cache generation that
/// belongs to it. Workers load the whole bundle atomically per request, so
/// cached derived state can never outlive (or predate) the data it
/// describes — the generation tag *is* the `Arc` identity.
struct ServingState {
    epoch: SnapshotEpoch,
    snapshot: Arc<SearchSnapshot>,
    nonempty: Arc<SharedNonemptyCache>,
    exec: Arc<SharedExecCache>,
}

impl ServingState {
    fn fresh(epoch: SnapshotEpoch, snapshot: Arc<SearchSnapshot>) -> Arc<Self> {
        Arc::new(ServingState {
            epoch,
            snapshot,
            nonempty: Arc::new(SharedNonemptyCache::new()),
            exec: Arc::new(SharedExecCache::new()),
        })
    }

    /// Entries held by this generation's shared caches (the count retired
    /// as `stale_evictions` when the generation is displaced).
    fn cache_entries(&self) -> usize {
        self.nonempty.len() + self.exec.predicate_count() + self.exec.result_count()
    }
}

/// The writer's private copy of the store: the mutable primary the ingest
/// path applies batches to, plus its incrementally maintained index.
/// Created lazily on the first ingest (a read-only service never pays for
/// the copy) and retained so successive ingests only clone to *publish*.
struct WriterState {
    db: Database,
    index: InvertedIndex,
}

/// Why an [`SearchService::ingest`] was refused.
#[derive(Debug)]
pub enum IngestError {
    /// The batch failed validation (arity, type, primary key, referential
    /// integrity). Nothing changed: neither store, nor WAL, nor epoch.
    Batch(BatchError),
    /// The WAL append failed (or an armed [`FaultPoint`] fired). The batch
    /// was *not* published and the service is now poisoned; reopen with
    /// [`SearchService::open`] to recover the durable prefix.
    Durability(DurabilityError),
    /// An earlier durability failure poisoned the service. Reads still
    /// work; writes are refused until the store is reopened.
    Poisoned,
    /// A [`ShardedService`](crate::ShardedService) could not place a batch
    /// row on a single shard: its foreign-key parents live on two or more
    /// different shards, so inserting it anywhere would leave a dangling
    /// cross-shard edge. Nothing changed.
    Unroutable {
        /// Table of the unroutable row.
        table: String,
        /// Primary key of the unroutable row.
        key: i64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Batch(e) => write!(f, "batch rejected: {e}"),
            IngestError::Durability(e) => write!(f, "ingest not durable: {e}"),
            IngestError::Poisoned => {
                f.write_str("service poisoned by an earlier durability failure; reopen to recover")
            }
            IngestError::Unroutable { table, key } => write!(
                f,
                "row {table}:{key} is unroutable: its foreign-key parents span multiple shards"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Batch(e) => Some(e),
            IngestError::Durability(e) => Some(e),
            IngestError::Poisoned | IngestError::Unroutable { .. } => None,
        }
    }
}

impl From<BatchError> for IngestError {
    fn from(e: BatchError) -> Self {
        IngestError::Batch(e)
    }
}

impl From<DurabilityError> for IngestError {
    fn from(e: DurabilityError) -> Self {
        IngestError::Durability(e)
    }
}

/// Why a submitted request produced no reply value. Carried *inside* the
/// [`Ticket`] payload so a worker that panics mid-query can still answer
/// with a typed error instead of silently hanging up the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The serving worker panicked while computing this reply. The panic is
    /// contained: the worker survives and keeps serving other requests.
    WorkerPanicked {
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::WorkerPanicked { message } => {
                write!(f, "serving worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The one top-level error of the service layer: everything
/// [`ServiceBuilder`] and the [`ServeRequests`] seam can fail with, wrapping
/// the focused per-subsystem errors.
#[derive(Debug)]
pub enum ServiceError {
    /// An ingest was refused (validation, durability, or poisoning).
    Ingest(IngestError),
    /// A durable open/start/checkpoint failed.
    Durability(DurabilityError),
    /// A served request failed (worker panic).
    Request(RequestError),
    /// The requested configuration is not supported (for example, a durable
    /// sharded service).
    Unsupported(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Ingest(e) => write!(f, "{e}"),
            ServiceError::Durability(e) => write!(f, "{e}"),
            ServiceError::Request(e) => write!(f, "{e}"),
            ServiceError::Unsupported(what) => write!(f, "unsupported configuration: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Ingest(e) => Some(e),
            ServiceError::Durability(e) => Some(e),
            ServiceError::Request(e) => Some(e),
            ServiceError::Unsupported(_) => None,
        }
    }
}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e)
    }
}

impl From<DurabilityError> for ServiceError {
    fn from(e: DurabilityError) -> Self {
        ServiceError::Durability(e)
    }
}

impl From<RequestError> for ServiceError {
    fn from(e: RequestError) -> Self {
        ServiceError::Request(e)
    }
}

impl From<BatchError> for ServiceError {
    fn from(e: BatchError) -> Self {
        ServiceError::Ingest(IngestError::Batch(e))
    }
}

/// Configuration of a durable service directory. The same options passed to
/// [`SearchService::start_durable`] must be passed to every later
/// [`SearchService::open`] of that directory: the snapshot file persists
/// database and index, but the template catalog and interpreter
/// configuration are derived state rebuilt at open time, and recovered
/// answers are only byte-identical to the original's under the same bounds.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Checkpoint automatically after this many ingested batches
    /// (0 = manual [`SearchService::checkpoint`] only).
    pub checkpoint_every: usize,
    /// Interpreter configuration of the serving snapshot.
    pub config: InterpreterConfig,
    /// Catalog enumeration bound: maximum joins per template.
    pub max_joins: usize,
    /// Catalog enumeration bound: maximum number of templates.
    pub max_templates: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            checkpoint_every: 0,
            config: InterpreterConfig::default(),
            max_joins: 3,
            max_templates: 50_000,
        }
    }
}

/// Receipt of one completed [`SearchService::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReceipt {
    /// The epoch the snapshot file now holds.
    pub epoch: SnapshotEpoch,
    /// Size of the written snapshot file in bytes.
    pub snapshot_bytes: u64,
}

/// The durable half of a service: the directory, the open WAL the ingest
/// path appends to before every epoch swap, and the fault-injection plan
/// threaded through both.
struct Durability {
    dir: PathBuf,
    wal: Mutex<Wal>,
    faults: Arc<FaultPlan>,
    /// Set when a WAL append, checkpoint, or injected fault failed: the
    /// on-disk state may no longer match the served state, exactly as after
    /// a crash. A poisoned service keeps serving reads but refuses ingests
    /// and checkpoints; recovery is a fresh [`SearchService::open`].
    poisoned: AtomicBool,
    /// Auto-checkpoint threshold in batches (0 disables the trigger).
    checkpoint_every: usize,
    batches_since_checkpoint: AtomicUsize,
    wal_batches: AtomicUsize,
    wal_bytes: AtomicU64,
    checkpoints: AtomicUsize,
    /// Batches replayed from the WAL tail by the [`SearchService::open`]
    /// that built this service (0 for [`SearchService::start_durable`]).
    recovery_replayed: usize,
}

impl Durability {
    fn fresh(dir: PathBuf, wal: Wal, faults: Arc<FaultPlan>, checkpoint_every: usize) -> Self {
        Durability {
            dir,
            wal: Mutex::new(wal),
            faults,
            poisoned: AtomicBool::new(false),
            checkpoint_every,
            batches_since_checkpoint: AtomicUsize::new(0),
            wal_batches: AtomicUsize::new(0),
            wal_bytes: AtomicU64::new(0),
            checkpoints: AtomicUsize::new(0),
            recovery_replayed: 0,
        }
    }

    /// Append `batch` as the record producing `seq`, fsync it, then pass
    /// the post-append kill point. Called with the writer lock held.
    fn append(&self, seq: u64, batch: &RowBatch) -> Result<(), DurabilityError> {
        let bytes = self.wal.lock().unwrap().append(seq, batch, &self.faults)?;
        self.wal_batches.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.faults.fire(FaultPoint::PostWalAppendPreSwap) {
            // The record is durable but the epoch will never be published
            // by this process — recovery must surface the batch.
            return Err(DurabilityError::FaultInjected(
                FaultPoint::PostWalAppendPreSwap,
            ));
        }
        Ok(())
    }

    /// Write `snapshot.kb` at `epoch`, pass the pre-truncate kill point,
    /// then truncate the WAL. Called with the writer lock held.
    fn checkpoint(
        &self,
        epoch: u64,
        db: &Database,
        index: &InvertedIndex,
    ) -> Result<u64, DurabilityError> {
        let bytes = write_snapshot_file(&self.dir, epoch, db, index, &self.faults)?;
        if self.faults.fire(FaultPoint::PostCheckpointPreTruncate) {
            // The snapshot landed but the log still holds its records —
            // recovery must skip them instead of applying them twice.
            return Err(DurabilityError::FaultInjected(
                FaultPoint::PostCheckpointPreTruncate,
            ));
        }
        self.wal.lock().unwrap().truncate()?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.batches_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(bytes)
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

/// Cache/serving counters of a running service, for benches and logs.
/// Cache counters describe the *current* epoch's generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests completed (all kinds).
    pub served: usize,
    /// The epoch currently being served.
    pub epoch: u64,
    /// Snapshots published by `ingest` since the service started.
    pub epoch_swaps: usize,
    /// Shared-cache entries retired with displaced epochs: verdicts,
    /// predicate row sets, and memoized results that became unreachable
    /// (and uncountable as hits) the moment their epoch was swapped out.
    pub stale_evictions: usize,
    /// Rows accepted by `ingest` since the service started.
    pub rows_ingested: usize,
    /// Distinct non-emptiness verdicts in the shared cache.
    pub nonempty_entries: usize,
    /// Cross-query non-emptiness hits.
    pub nonempty_hits: usize,
    /// Distinct predicate row sets in the shared cache.
    pub predicate_entries: usize,
    /// Cross-query predicate hits.
    pub predicate_hits: usize,
    /// Complete executions in the shared cache.
    pub result_entries: usize,
    /// Cross-query whole-result hits.
    pub result_hits: usize,
    /// Construction sessions currently open in the registry.
    pub sessions_open: usize,
    /// Oldest sessions displaced by the registry bound (abandoned-session
    /// protection; a `close_session` is never counted here).
    pub sessions_evicted: usize,
    /// Sessions dropped by the idle-TTL sweep (see
    /// [`SearchService::set_session_ttl`]); like an eviction, an expired id
    /// answers `None` everywhere.
    pub sessions_expired: usize,
    /// WAL records appended by this instance (0 for a non-durable service).
    pub wal_batches: usize,
    /// WAL bytes appended by this instance, frames included.
    pub wal_bytes: u64,
    /// Checkpoints completed by this instance (snapshot written *and* log
    /// truncated).
    pub checkpoints: usize,
    /// Batches replayed from the WAL tail by the `open` that built this
    /// instance (0 for `start` / `start_durable`).
    pub recovery_replayed_batches: usize,
    /// Per-shard epoch bumps published by ingest on a sharded service (an
    /// ingest touching two shards counts 2). Always 0 on a single-shard
    /// service, where `epoch_swaps` is the whole story.
    pub shard_epoch_swaps: usize,
    /// Distinct shards ever touched by ingest on a sharded service.
    /// Always 0 on a single-shard service.
    pub shards_touched: usize,
    /// Rows gathered from shards but never examined by the coordinator's
    /// bounded top-k merge (it stops once the global prefix is provably
    /// complete). Always 0 on a single-shard service.
    pub shard_rows_skipped: usize,
}

/// Receipt of one accepted ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The epoch the batch became visible at.
    pub epoch: SnapshotEpoch,
    /// Rows inserted by the batch.
    pub rows: usize,
}

/// One complete reply to an answers request: the epoch that served it, the
/// ranked answers, and the per-request counters.
#[derive(Debug, Clone)]
pub struct SearchReply {
    /// The snapshot version this reply was computed against.
    pub epoch: SnapshotEpoch,
    /// Per-shard epochs the reply was computed against — one entry per
    /// shard on a sharded service, empty on a single-shard service. The
    /// differential suites use this to prove an ingest touching shard *i*
    /// left every other shard's epoch unchanged.
    pub shard_epochs: Vec<SnapshotEpoch>,
    pub answers: Vec<RankedAnswer>,
    pub stats: AnswerStats,
}

/// One complete reply to a diversified top-k request (Alg. 4.1 over the
/// streamed pipeline).
#[derive(Debug, Clone)]
pub struct DiversifiedReply {
    /// The snapshot version this reply was computed against.
    pub epoch: SnapshotEpoch,
    /// Per-shard epochs (see [`SearchReply::shard_epochs`]); empty on a
    /// single-shard service.
    pub shard_epochs: Vec<SnapshotEpoch>,
    /// Selected interpretations in selection order.
    pub answers: Vec<DiversifiedAnswer>,
    /// Surviving executed pool size the selection drew from — deterministic
    /// per query and epoch, warm or cold.
    pub pool: usize,
    /// Pipeline counters of the pool build.
    pub stats: AnswerStats,
}

/// Handle of one open construction session in the service registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// A snapshot of one session's interaction state, returned by every
/// registry call so clients never need a second round-trip for the next
/// proposed option.
#[derive(Debug, Clone)]
pub struct SessionView {
    pub id: SessionId,
    /// The epoch the session is pinned to (fixed at `open_session`).
    pub epoch: SnapshotEpoch,
    /// Candidates left in the query window.
    pub remaining: usize,
    /// Options evaluated so far (the interaction cost).
    pub steps: usize,
    /// Whether construction should stop (window small enough, or no
    /// discriminating option left).
    pub finished: bool,
    /// The maximum-information-gain option to present next, if any.
    pub next_option: Option<ConstructionOption>,
}

/// One window refresh of a service-managed session: the pinned epoch and
/// the non-empty candidates' executed results in window order.
#[derive(Debug, Clone)]
pub struct SessionAnswers {
    /// The epoch the answers were computed against — the session's pinned
    /// epoch, regardless of any ingest since it was opened.
    pub epoch: SnapshotEpoch,
    /// `(window index, result)` pairs, at most `limit` JTTs each.
    pub answers: Vec<(usize, Arc<ExecutedResult>)>,
}

/// One registered session: the construction state plus the serving state it
/// pinned at open time. The pinned `Arc` keeps the whole epoch alive —
/// snapshot *and* cache generation — so a session keeps answering from the
/// database version its user has been winnowing, across any number of
/// concurrent ingests (snapshot isolation at session granularity). The
/// per-session [`ExecCache`] persists across window refreshes and falls
/// through to the pinned epoch's shared tier.
struct SessionSlot {
    state: Arc<ServingState>,
    session: ConstructionSession,
    exec_cache: ExecCache,
}

/// A registered session plus its idle clock. The touch timestamp lives
/// *outside* the slot mutex so the TTL sweep can read every session's
/// idleness while holding only the registry lock — a slot busy serving a
/// window refresh is by definition not idle and must not block the sweep.
struct SessionEntry {
    slot: Mutex<SessionSlot>,
    /// Milliseconds since service start of the last registry call that
    /// touched this session (open, view, advance, or answers).
    last_touch_ms: AtomicU64,
}

/// Registry bound. Every slot pins a whole epoch (snapshot + cache
/// generation), so sessions abandoned by clients that never `close_session`
/// would otherwise leak O(database) memory each across ingest swaps. Like
/// the shared cache tiers the registry is bounded — but it *evicts* the
/// oldest session instead of refusing admission, because a construction
/// session is per-user interaction state and the newest user must win.
/// Evictions are counted in [`ServiceStats::sessions_evicted`]; an evicted
/// id simply answers `None` everywhere, like a closed one.
const MAX_OPEN_SESSIONS: usize = 1024;

/// A reply stamped with its completion instant by the serving worker.
///
/// Open-loop load drivers measure latency from the request's *scheduled*
/// arrival time to `completed_at`. Stamping completion inside the worker
/// lets the driver submit at the schedule and collect tickets afterwards,
/// without parking one client thread per in-flight request — which would
/// cap concurrency and reintroduce exactly the coordinated omission the
/// open-loop harness exists to eliminate.
#[derive(Debug)]
pub struct TimedReply<T> {
    /// When the serving worker finished computing this reply.
    pub completed_at: Instant,
    pub result: Result<T, RequestError>,
}

/// One serving request, as a value. Every mode the service can serve is a
/// variant here; [`ServeRequests::submit_request`] is the single seam both
/// the single-shard [`SearchService`] and the sharded router implement, and
/// every legacy `submit_*` method is a thin typed wrapper over it.
#[derive(Debug, Clone)]
pub enum Request {
    /// Top-k *answers* (the end-to-end hot path). Resolves to
    /// [`Reply::Answers`].
    Answers { query: KeywordQuery, k: usize },
    /// Top-k *interpretations*, no execution. Resolves to
    /// [`Reply::Interpretations`].
    Interpretations { query: KeywordQuery, k: usize },
    /// Diversified top-k (Alg. 4.1 over the streamed pool). Resolves to
    /// [`Reply::Diversified`].
    Diversified {
        query: KeywordQuery,
        opts: DiversifyOptions,
    },
    /// [`Request::Answers`] with a worker-stamped completion instant, for
    /// open-loop latency measurement. Resolves to [`Reply::AnswersTimed`].
    AnswersTimed { query: KeywordQuery, k: usize },
    /// [`Request::Diversified`] with a worker-stamped completion instant.
    /// Resolves to [`Reply::DiversifiedTimed`].
    DiversifiedTimed {
        query: KeywordQuery,
        opts: DiversifyOptions,
    },
}

/// Payload of a served interpretations request: the ranked interpretations
/// plus the generation counters.
pub type InterpretationsReply = (Vec<ScoredInterpretation>, GenerationStats);

/// One served reply; the variant always matches the submitted [`Request`]
/// variant. The typed `submit_*` wrappers unwrap the matching arm through
/// [`Ticket::expecting`], so most callers never see this enum.
#[derive(Debug)]
pub enum Reply {
    Answers(Result<SearchReply, RequestError>),
    Interpretations(Result<InterpretationsReply, RequestError>),
    Diversified(Result<DiversifiedReply, RequestError>),
    AnswersTimed(TimedReply<SearchReply>),
    DiversifiedTimed(TimedReply<DiversifiedReply>),
}

/// A pending reply. `wait` blocks until the serving worker finishes;
/// `None` means the service shut down (or a worker died) before replying —
/// or the reply arm did not match what the ticket was told to expect,
/// which cannot happen through the typed `submit_*` wrappers.
pub struct Ticket<T> {
    rx: Receiver<Reply>,
    extract: fn(Reply) -> Option<T>,
}

impl Ticket<Reply> {
    /// A ticket resolving to the raw [`Reply`], whatever its arm.
    pub(crate) fn raw(rx: Receiver<Reply>) -> Self {
        Ticket { rx, extract: Some }
    }

    /// Refine a raw ticket to one unwrapping a single reply arm — the seam
    /// the typed `submit_*` wrappers are built from.
    pub fn expecting<T>(self, extract: fn(Reply) -> Option<T>) -> Ticket<T> {
        Ticket {
            rx: self.rx,
            extract,
        }
    }
}

impl<T> Ticket<T> {
    pub fn wait(self) -> Option<T> {
        let reply = self.rx.recv().ok()?;
        (self.extract)(reply)
    }
}

fn reply_answers(reply: Reply) -> Option<Result<SearchReply, RequestError>> {
    match reply {
        Reply::Answers(r) => Some(r),
        _ => None,
    }
}

fn reply_interpretations(reply: Reply) -> Option<Result<InterpretationsReply, RequestError>> {
    match reply {
        Reply::Interpretations(r) => Some(r),
        _ => None,
    }
}

fn reply_diversified(reply: Reply) -> Option<Result<DiversifiedReply, RequestError>> {
    match reply {
        Reply::Diversified(r) => Some(r),
        _ => None,
    }
}

pub(crate) fn reply_answers_timed(reply: Reply) -> Option<TimedReply<SearchReply>> {
    match reply {
        Reply::AnswersTimed(r) => Some(r),
        _ => None,
    }
}

fn reply_diversified_timed(reply: Reply) -> Option<TimedReply<DiversifiedReply>> {
    match reply {
        Reply::DiversifiedTimed(r) => Some(r),
        _ => None,
    }
}

enum Job {
    /// One [`Request`], served against the worker's pinned epoch; the reply
    /// arm always matches the request variant.
    Serve {
        request: Request,
        reply: Sender<Reply>,
    },
    /// Testing seam: a request that holds its worker for a fixed duration,
    /// so load-harness tests can inject known service delays and compare
    /// measured queueing against an analytic model. Never constructed in
    /// production.
    #[cfg(any(test, feature = "test-seams"))]
    Sleep { dur: Duration, reply: Sender<Reply> },
    /// Testing seam: a request whose serving code path panics, used by the
    /// containment regression test. Never constructed in production.
    #[cfg(any(test, feature = "test-seams"))]
    Panic { reply: Sender<Reply> },
}

/// A multi-user keyword-search server over a **live** store: an epoch-
/// versioned [`SearchSnapshot`] served by N OS threads pulling jobs off a
/// shared channel, with all cross-query derived state in per-epoch shared
/// caches. Requests can be issued from any number of client threads;
/// replies arrive on per-request [`Ticket`]s. Writers feed
/// [`SearchService::ingest`]; readers never block on them beyond the
/// one-pointer snapshot load. Dropping the service hangs up the job channel
/// and joins the workers.
pub struct SearchService {
    current: Arc<Mutex<Arc<ServingState>>>,
    /// Serializes ingests; lazily holds the writer's mutable copy.
    writer: Mutex<Option<WriterState>>,
    /// WAL + checkpoint state for durable services; `None` under `start`.
    durability: Option<Durability>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicUsize>,
    epoch_swaps: AtomicUsize,
    stale_evictions: AtomicUsize,
    rows_ingested: AtomicUsize,
    /// Open construction sessions, each pinning the serving state of the
    /// epoch it was opened on. Sessions are independently locked so a slow
    /// window refresh never blocks another session (or the registry).
    sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    next_session: AtomicU64,
    sessions_evicted: AtomicUsize,
    /// Idle bound for abandoned sessions: one idle longer than this is
    /// expired by the sweep in [`Self::open_session`] / [`Self::ingest`]
    /// (or an explicit [`Self::expire_idle_sessions`]). `None` disables
    /// expiry; the registry is then bounded only by `MAX_OPEN_SESSIONS`.
    session_ttl: Mutex<Option<Duration>>,
    sessions_expired: AtomicUsize,
    /// Zero point of the session idle clocks.
    started_at: Instant,
}

impl SearchService {
    /// Start `workers` threads serving `snapshot` (at least one) as epoch 0,
    /// with no durability: ingested batches live only in memory.
    ///
    /// Prefer [`ServiceBuilder`], which configures this and every other
    /// start mode (durable, sharded) behind one entry point.
    pub fn start(snapshot: Arc<SearchSnapshot>, workers: usize) -> Self {
        Self::start_inner(snapshot, workers, SnapshotEpoch::default(), None)
    }

    /// Start a **durable** service over a fresh directory: write `snapshot`
    /// as the epoch-0 checkpoint (`snapshot.kb`), create an empty write-ahead
    /// log (`wal.kb`), and serve. Every subsequent [`Self::ingest`] is
    /// WAL-logged and fsynced before its epoch is published, so the served
    /// state survives process death — reopen with [`Self::open`] and the
    /// same `opts`. Refuses a directory that already holds a store.
    ///
    /// Prefer [`ServiceBuilder`] with [`ServiceBuilder::durable`].
    pub fn start_durable(
        snapshot: Arc<SearchSnapshot>,
        workers: usize,
        dir: &Path,
        opts: &DurableOptions,
    ) -> Result<Self, DurabilityError> {
        Self::start_durable_with_plan(snapshot, workers, dir, opts, Arc::new(FaultPlan::new()))
    }

    /// [`Self::start_durable`] with a caller-supplied fault-injection plan
    /// (the builder's [`ServiceBuilder::fault_plan`] threads through here).
    pub(crate) fn start_durable_with_plan(
        snapshot: Arc<SearchSnapshot>,
        workers: usize,
        dir: &Path,
        opts: &DurableOptions,
        faults: Arc<FaultPlan>,
    ) -> Result<Self, DurabilityError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DurabilityError::Io(format!("create {}: {e}", dir.display())))?;
        if dir.join(SNAPSHOT_FILE).exists() {
            return Err(DurabilityError::Corrupt(format!(
                "{} already holds a store; use SearchService::open to recover it",
                dir.display()
            )));
        }
        write_snapshot_file(dir, 0, &snapshot.db, &snapshot.index, &faults)?;
        let wal = Wal::create(dir)?;
        let durability = Durability::fresh(dir.to_path_buf(), wal, faults, opts.checkpoint_every);
        Ok(Self::start_inner(
            snapshot,
            workers,
            SnapshotEpoch::default(),
            Some(durability),
        ))
    }

    /// Recover a durable service from `dir`: load the latest checkpoint,
    /// replay the WAL tail past the checkpoint's epoch (a torn final record
    /// is discarded, never partially applied — [`Database::insert_batch`]
    /// atomicity is the replay unit), rebuild the catalog under `opts`, and
    /// serve the newest durable epoch. Records at or below the checkpoint
    /// epoch are skipped, so the post-checkpoint / pre-truncate crash window
    /// never double-applies a batch.
    ///
    /// Prefer [`ServiceBuilder`] with [`ServiceBuilder::durable`] and
    /// [`ServiceBuilder::open`].
    pub fn open(
        dir: &Path,
        workers: usize,
        opts: &DurableOptions,
    ) -> Result<Self, DurabilityError> {
        Self::open_with_plan(dir, workers, opts, Arc::new(FaultPlan::new()))
    }

    /// [`Self::open`] with a caller-supplied fault-injection plan.
    pub(crate) fn open_with_plan(
        dir: &Path,
        workers: usize,
        opts: &DurableOptions,
        faults: Arc<FaultPlan>,
    ) -> Result<Self, DurabilityError> {
        let (snap_epoch, mut db, mut index) = read_snapshot_file(dir)?;
        let scan = scan_wal(dir)?;
        let mut epoch = snap_epoch;
        let mut replayed = 0usize;
        for (seq, batch) in &scan.records {
            if *seq <= snap_epoch {
                continue; // already folded into the checkpoint
            }
            if *seq != epoch + 1 {
                return Err(DurabilityError::Corrupt(format!(
                    "WAL sequence gap: expected epoch {}, found {seq}",
                    epoch + 1
                )));
            }
            // A logged batch was validated before it was appended, so a
            // rejection here means the snapshot and log disagree.
            let ids = db.insert_batch(batch).map_err(|e| {
                DurabilityError::Corrupt(format!("WAL batch for epoch {seq} rejected: {e}"))
            })?;
            let inserted: Vec<(TableId, RowId)> = batch
                .iter()
                .map(|(table, _)| *table)
                .zip(ids.iter().copied())
                .collect();
            index.index_batch(&db, &inserted);
            epoch = *seq;
            replayed += 1;
        }
        let catalog = TemplateCatalog::enumerate(&db, opts.max_joins, opts.max_templates)
            .map_err(|e| DurabilityError::Corrupt(format!("catalog enumeration failed: {e}")))?;
        let snapshot = Arc::new(SearchSnapshot::new(db, index, catalog, opts.config.clone()));
        let wal = if scan.header_valid {
            Wal::open_at(dir, scan.good_len)?
        } else {
            Wal::create(dir)?
        };
        let mut durability =
            Durability::fresh(dir.to_path_buf(), wal, faults, opts.checkpoint_every);
        durability.recovery_replayed = replayed;
        Ok(Self::start_inner(
            snapshot,
            workers,
            SnapshotEpoch(epoch),
            Some(durability),
        ))
    }

    fn start_inner(
        snapshot: Arc<SearchSnapshot>,
        workers: usize,
        epoch: SnapshotEpoch,
        durability: Option<Durability>,
    ) -> Self {
        let current = Arc::new(Mutex::new(ServingState::fresh(epoch, snapshot)));
        let served = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let current = Arc::clone(&current);
                let served = Arc::clone(&served);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("keybridge-worker-{i}"))
                    .spawn(move || worker_loop(&current, &served, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        SearchService {
            current,
            writer: Mutex::new(None),
            durability,
            tx: Some(tx),
            workers,
            served,
            epoch_swaps: AtomicUsize::new(0),
            stale_evictions: AtomicUsize::new(0),
            rows_ingested: AtomicUsize::new(0),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            sessions_evicted: AtomicUsize::new(0),
            session_ttl: Mutex::new(None),
            sessions_expired: AtomicUsize::new(0),
            started_at: Instant::now(),
        }
    }

    /// The snapshot currently being served (requests already in flight may
    /// still be completing against an earlier epoch).
    pub fn snapshot(&self) -> Arc<SearchSnapshot> {
        Arc::clone(&self.current.lock().unwrap().snapshot)
    }

    /// The epoch currently being served.
    pub fn current_epoch(&self) -> SnapshotEpoch {
        self.current.lock().unwrap().epoch
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Apply one insert batch to the live store and publish the result as
    /// the next epoch. The batch is validated as a unit (arity, types,
    /// primary keys, referential integrity — intra-batch parents allowed)
    /// against the writer's copy; a rejected batch changes nothing, neither
    /// store nor epoch. Concurrent ingests serialize on the writer lock;
    /// readers are never blocked beyond the single pointer swap.
    ///
    /// On a durable service the validated batch is appended to the
    /// write-ahead log and fsynced **before** the epoch swap — an epoch a
    /// client ever observed is always recoverable. A failed append poisons
    /// the service without publishing anything; if the configured
    /// `checkpoint_every` threshold is reached, a checkpoint runs after the
    /// swap (its failure also poisons, but the batch itself — already
    /// WAL-durable — is still accepted).
    pub fn ingest(&self, batch: &RowBatch) -> Result<IngestReceipt, IngestError> {
        if let Some(d) = &self.durability {
            if d.is_poisoned() {
                return Err(IngestError::Poisoned);
            }
        }
        // Each pinned epoch is about to cost a full displaced database
        // copy; shed sessions nobody is coming back for first.
        self.expire_idle_sessions();
        let mut writer = self.writer.lock().unwrap();
        if writer.is_none() {
            // First ingest: fork the writer's mutable copy off the served
            // snapshot. From here on the writer copy is the primary.
            let state = self.current.lock().unwrap().clone();
            *writer = Some(WriterState {
                db: state.snapshot.db.clone(),
                index: state.snapshot.index.clone(),
            });
        }
        let w = writer.as_mut().expect("initialized above");
        let ids = w.db.insert_batch(batch)?;
        let inserted: Vec<(TableId, RowId)> = batch
            .iter()
            .map(|(table, _)| *table)
            .zip(ids.iter().copied())
            .collect();
        w.index.index_batch(&w.db, &inserted);

        // Publish: clone the writer copy into an immutable snapshot under
        // the next epoch with a fresh shared-cache generation. The catalog
        // is schema-derived and the schema is immutable, so it transfers.
        // The O(database) clones happen *outside* the `current` lock —
        // workers pin their state through that lock per request, so it may
        // only be held for pointer reads and the final swap. `prev` cannot
        // go stale in between: the held writer lock serializes every path
        // that replaces `current`.
        let prev = Arc::clone(&self.current.lock().unwrap());
        if let Some(d) = &self.durability {
            // WAL before swap: the record producing the next epoch must be
            // durable before any client can observe that epoch.
            if let Err(e) = d.append(prev.epoch.0 + 1, batch) {
                // The writer copy is now ahead of both the served and the
                // (known-)durable state; drop it and poison. Recovery is a
                // fresh `open`, which replays whatever the log retained.
                d.poison();
                *writer = None;
                return Err(IngestError::Durability(e));
            }
        }
        let next = ServingState::fresh(
            SnapshotEpoch(prev.epoch.0 + 1),
            Arc::new(SearchSnapshot::new(
                w.db.clone(),
                w.index.clone(),
                prev.snapshot.catalog.clone(),
                prev.snapshot.config.clone(),
            )),
        );
        let displaced = {
            let mut current = self.current.lock().unwrap();
            std::mem::replace(&mut *current, Arc::clone(&next))
        };
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        self.stale_evictions
            .fetch_add(displaced.cache_entries(), Ordering::Relaxed);
        self.rows_ingested.fetch_add(ids.len(), Ordering::Relaxed);
        if let Some(d) = &self.durability {
            let since = d.batches_since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
            if d.checkpoint_every > 0 && since >= d.checkpoint_every {
                // Auto-checkpoint under the still-held writer lock. The
                // batch is already WAL-durable, so a checkpoint failure
                // poisons future writes but does not un-accept it.
                if d.checkpoint(next.epoch.0, &w.db, &w.index).is_err() {
                    d.poison();
                }
            }
        }
        Ok(IngestReceipt {
            epoch: next.epoch,
            rows: ids.len(),
        })
    }

    /// Fold the log into a fresh `snapshot.kb` (written atomically) and
    /// truncate it. Serialized against `ingest` on the writer lock; readers
    /// are unaffected. Any failure — IO or an armed [`FaultPoint`] —
    /// poisons the service exactly as a crash at that instant would.
    pub fn checkpoint(&self) -> Result<CheckpointReceipt, DurabilityError> {
        let d = self
            .durability
            .as_ref()
            .ok_or(DurabilityError::NotDurable)?;
        if d.is_poisoned() {
            return Err(DurabilityError::Poisoned);
        }
        let _writer = self.writer.lock().unwrap();
        let state = self.current.lock().unwrap().clone();
        match d.checkpoint(state.epoch.0, &state.snapshot.db, &state.snapshot.index) {
            Ok(snapshot_bytes) => Ok(CheckpointReceipt {
                epoch: state.epoch,
                snapshot_bytes,
            }),
            Err(e) => {
                d.poison();
                Err(e)
            }
        }
    }

    /// The fault-injection plan of a durable service (the recovery suite
    /// arms kill points through this). `None` under [`Self::start`].
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.durability.as_ref().map(|d| Arc::clone(&d.faults))
    }

    /// Whether an earlier durability failure poisoned this service (reads
    /// keep working; writes are refused). Always `false` under
    /// [`Self::start`].
    pub fn is_poisoned(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(Durability::is_poisoned)
    }

    /// Enqueue a top-k *answers* request (the end-to-end hot path). The
    /// ticket resolves to `Err` when the serving worker panicked on this
    /// request (the panic is contained; the worker keeps serving).
    ///
    /// Thin wrapper over [`Request::Answers`] through the
    /// [`ServeRequests`] seam.
    pub fn submit(
        &self,
        query: KeywordQuery,
        k: usize,
    ) -> Ticket<Result<SearchReply, RequestError>> {
        ServeRequests::submit(self, query, k)
    }

    /// Enqueue a top-k *interpretations* request (no execution).
    ///
    /// Thin wrapper over [`Request::Interpretations`].
    pub fn submit_interpretations(
        &self,
        query: KeywordQuery,
        k: usize,
    ) -> Ticket<Result<InterpretationsReply, RequestError>> {
        ServeRequests::submit_interpretations(self, query, k)
    }

    /// Testing seam for the panic-containment path: a request whose serving
    /// code panics. The reply must arrive as
    /// [`RequestError::WorkerPanicked`] and the worker must survive.
    #[cfg(any(test, feature = "test-seams"))]
    #[doc(hidden)]
    pub fn submit_panicking(&self) -> Ticket<Result<SearchReply, RequestError>> {
        let (reply, rx) = channel();
        self.send(Job::Panic { reply });
        Ticket::raw(rx).expecting(reply_answers)
    }

    /// Blocking convenience: submit and wait.
    ///
    /// # Panics
    ///
    /// Panics if the request failed ([`RequestError`]) or the service shut
    /// down before replying — a failed request must never masquerade as a
    /// zero-result query. Callers that need to observe failure as a value
    /// use [`Self::submit`] + [`Ticket::wait`].
    pub fn search(&self, query: &KeywordQuery, k: usize) -> Vec<RankedAnswer> {
        self.search_versioned(query, k).answers
    }

    /// [`Self::search`] with the per-request counters.
    pub fn search_with_stats(
        &self,
        query: &KeywordQuery,
        k: usize,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        let reply = self.search_versioned(query, k);
        (reply.answers, reply.stats)
    }

    /// [`Self::search`] with the serving epoch and counters — the call the
    /// update-equivalence suites use to match a racing reply against the
    /// exact database version that produced it. Panics like [`Self::search`]
    /// when the worker died.
    pub fn search_versioned(&self, query: &KeywordQuery, k: usize) -> SearchReply {
        self.submit(query.clone(), k)
            .wait()
            .expect("SearchService shut down before replying")
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enqueue a diversified top-k request: Alg. 4.1 over the best
    /// `opts.pool` interpretations, executed through this epoch's shared
    /// caches (at most `opts.cap` JTTs each).
    ///
    /// Thin wrapper over [`Request::Diversified`].
    pub fn submit_diversified(
        &self,
        query: KeywordQuery,
        opts: DiversifyOptions,
    ) -> Ticket<Result<DiversifiedReply, RequestError>> {
        ServeRequests::submit_diversified(self, query, opts)
    }

    /// [`Self::submit`] with a worker-stamped completion instant in the
    /// reply, for open-loop load drivers that measure latency from the
    /// request's scheduled arrival time rather than from `wait`'s return.
    ///
    /// Thin wrapper over [`Request::AnswersTimed`].
    pub fn submit_timed(&self, query: KeywordQuery, k: usize) -> Ticket<TimedReply<SearchReply>> {
        ServeRequests::submit_timed(self, query, k)
    }

    /// [`Self::submit_diversified`] with a worker-stamped completion
    /// instant in the reply.
    ///
    /// Thin wrapper over [`Request::DiversifiedTimed`].
    pub fn submit_diversified_timed(
        &self,
        query: KeywordQuery,
        opts: DiversifyOptions,
    ) -> Ticket<TimedReply<DiversifiedReply>> {
        ServeRequests::submit_diversified_timed(self, query, opts)
    }

    /// Blocking diversified top-k — warm and contended, the reply is
    /// byte-identical to the cold offline `divq` oracle (pool build + Alg.
    /// 4.1 over a fresh interpreter). Panics like [`Self::search`] when the
    /// serving worker died.
    pub fn search_diversified(
        &self,
        query: &KeywordQuery,
        opts: DiversifyOptions,
    ) -> DiversifiedReply {
        self.submit_diversified(query.clone(), opts)
            .wait()
            .expect("SearchService shut down before replying")
            .unwrap_or_else(|e| panic!("{e}"))
    }

    // -----------------------------------------------------------------
    // The construction-session registry.
    // -----------------------------------------------------------------

    /// Open a construction session over the *current* epoch: generate the
    /// top-`window` complete interpretations best-first (through this
    /// epoch's shared non-emptiness cache) and register the session. The
    /// session pins the serving state it was opened on — snapshot *and*
    /// cache generation — so its window, options, and answers keep
    /// referring to the same database version even while concurrent
    /// [`Self::ingest`]s swap epochs underneath.
    pub fn open_session(
        &self,
        query: &KeywordQuery,
        window: usize,
        config: SessionConfig,
    ) -> SessionView {
        self.expire_idle_sessions();
        let state = self.current.lock().unwrap().clone();
        let interpreter = state.snapshot.interpreter();
        let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&state.nonempty));
        let (ranked, _) = interpreter.top_k_with_cache(query, window, false, &mut gen_cache);
        let session = ConstructionSession::new(&state.snapshot.catalog, &ranked, config);
        let exec_cache = ExecCache::with_shared(Arc::clone(&state.exec));
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let view = Self::view_of(id, &state, &session);
        let mut sessions = self.sessions.lock().unwrap();
        while sessions.len() >= MAX_OPEN_SESSIONS {
            let oldest = *sessions.keys().min().expect("registry non-empty");
            sessions.remove(&oldest);
            self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        }
        sessions.insert(
            id,
            Arc::new(SessionEntry {
                slot: Mutex::new(SessionSlot {
                    state,
                    session,
                    exec_cache,
                }),
                last_touch_ms: AtomicU64::new(self.clock_ms()),
            }),
        );
        view
    }

    /// Apply one user verdict to a session: accepting keeps the candidates
    /// subsuming `option`, rejecting keeps the complement. Returns the
    /// updated view (with the next proposed option), or `None` for an
    /// unknown/closed session.
    pub fn advance_session(
        &self,
        id: SessionId,
        option: &ConstructionOption,
        accepted: bool,
    ) -> Option<SessionView> {
        let entry = self.touch_session(id)?;
        let mut slot = entry.slot.lock().unwrap();
        let SessionSlot { state, session, .. } = &mut *slot;
        session.apply(&state.snapshot.catalog, option.clone(), accepted);
        Some(Self::view_of(id.0, state, session))
    }

    /// The current view of a session without advancing it.
    pub fn session_view(&self, id: SessionId) -> Option<SessionView> {
        let entry = self.touch_session(id)?;
        let slot = entry.slot.lock().unwrap();
        Some(Self::view_of(id.0, &slot.state, &slot.session))
    }

    /// Materialize the session's current query window (at most `limit` JTTs
    /// per candidate) against its *pinned* epoch, through the session's
    /// persistent execution cache (predicates intersected once across
    /// refreshes; local misses fall through to the pinned epoch's shared
    /// tier). Byte-identical to the cold offline
    /// [`ConstructionSession::window_answers`] over the pinned snapshot.
    pub fn session_answers(&self, id: SessionId, limit: usize) -> Option<SessionAnswers> {
        let entry = self.touch_session(id)?;
        let mut slot = entry.slot.lock().unwrap();
        let SessionSlot {
            state,
            session,
            exec_cache,
        } = &mut *slot;
        let interpreter = state.snapshot.interpreter();
        let mut gen_cache = NonemptyCache::new();
        let answers = QueryPipeline::new(
            &interpreter,
            ExecOptions::default(),
            &mut gen_cache,
            exec_cache,
        )
        .window(session.remaining(), limit);
        Some(SessionAnswers {
            epoch: state.epoch,
            answers,
        })
    }

    /// Drop a session from the registry (releasing its pinned epoch).
    /// Returns whether it existed.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.sessions.lock().unwrap().remove(&id.0).is_some()
    }

    /// Bound the lifetime of *abandoned* sessions: any session idle (no
    /// open/view/advance/answers call) longer than `ttl` is dropped by the
    /// next sweep, releasing the epoch it pins — snapshot and cache
    /// generation. Sweeps run inside [`Self::open_session`] and
    /// [`Self::ingest`] (the moment pinned epochs start costing a full
    /// database copy each), or explicitly via
    /// [`Self::expire_idle_sessions`]. `None` (the default) disables expiry.
    pub fn set_session_ttl(&self, ttl: Option<Duration>) {
        *self.session_ttl.lock().unwrap() = ttl;
    }

    /// Drop every session idle longer than the configured TTL, counting
    /// them in [`ServiceStats::sessions_expired`]. Returns how many were
    /// expired. A no-op without a TTL.
    pub fn expire_idle_sessions(&self) -> usize {
        let Some(ttl) = *self.session_ttl.lock().unwrap() else {
            return 0;
        };
        let now = self.clock_ms();
        let ttl_ms = ttl.as_millis() as u64;
        let mut sessions = self.sessions.lock().unwrap();
        let before = sessions.len();
        sessions
            .retain(|_, e| now.saturating_sub(e.last_touch_ms.load(Ordering::Relaxed)) <= ttl_ms);
        let expired = before - sessions.len();
        self.sessions_expired.fetch_add(expired, Ordering::Relaxed);
        expired
    }

    /// Testing seam: back-date a session's idle clock by `by`, so TTL tests
    /// need not sleep. Returns whether the session exists.
    #[doc(hidden)]
    pub fn age_session(&self, id: SessionId, by: Duration) -> bool {
        let sessions = self.sessions.lock().unwrap();
        let Some(entry) = sessions.get(&id.0) else {
            return false;
        };
        let by_ms = by.as_millis() as u64;
        let aged = entry
            .last_touch_ms
            .load(Ordering::Relaxed)
            .saturating_sub(by_ms);
        entry.last_touch_ms.store(aged, Ordering::Relaxed);
        true
    }

    /// The session idle clock: milliseconds since the service started,
    /// biased well away from zero so [`Self::age_session`] can back-date a
    /// fresh session without saturating.
    fn clock_ms(&self) -> u64 {
        const CLOCK_BIAS_MS: u64 = 1 << 40;
        CLOCK_BIAS_MS + self.started_at.elapsed().as_millis() as u64
    }

    /// Look up a session and refresh its idle clock.
    fn touch_session(&self, id: SessionId) -> Option<Arc<SessionEntry>> {
        let entry = self.sessions.lock().unwrap().get(&id.0).cloned()?;
        entry
            .last_touch_ms
            .store(self.clock_ms(), Ordering::Relaxed);
        Some(entry)
    }

    fn view_of(id: u64, state: &ServingState, session: &ConstructionSession) -> SessionView {
        let next_option = session.next_option(&state.snapshot.catalog);
        SessionView {
            id: SessionId(id),
            epoch: state.epoch,
            remaining: session.remaining().len(),
            steps: session.steps(),
            finished: session.finished_given(next_option.as_ref()),
            next_option,
        }
    }

    /// Current serving/cache counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.current.lock().unwrap().clone();
        ServiceStats {
            served: self.served.load(Ordering::Relaxed),
            epoch: state.epoch.0,
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            nonempty_entries: state.nonempty.len(),
            nonempty_hits: state.nonempty.hits(),
            predicate_entries: state.exec.predicate_count(),
            predicate_hits: state.exec.predicate_hits(),
            result_entries: state.exec.result_count(),
            result_hits: state.exec.result_hits(),
            sessions_open: self.sessions.lock().unwrap().len(),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_expired: self.sessions_expired.load(Ordering::Relaxed),
            wal_batches: self
                .durability
                .as_ref()
                .map_or(0, |d| d.wal_batches.load(Ordering::Relaxed)),
            wal_bytes: self
                .durability
                .as_ref()
                .map_or(0, |d| d.wal_bytes.load(Ordering::Relaxed)),
            checkpoints: self
                .durability
                .as_ref()
                .map_or(0, |d| d.checkpoints.load(Ordering::Relaxed)),
            recovery_replayed_batches: self.durability.as_ref().map_or(0, |d| d.recovery_replayed),
            shard_epoch_swaps: 0,
            shards_touched: 0,
            shard_rows_skipped: 0,
        }
    }

    fn send(&self, job: Job) {
        if let Some(tx) = &self.tx {
            // A send only fails when every worker is gone; the caller then
            // observes the hang-up through its ticket.
            let _ = tx.send(job);
        }
    }
}

impl Drop for SearchService {
    fn drop(&mut self) {
        self.tx.take(); // hang up: workers drain the queue, then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The unified serving seam — **Hot path 8**. One typed [`Request`] enum in,
/// one [`Ticket`] resolving to the matching [`Reply`] arm out, plus the
/// ingest/stats/epoch surface a load driver needs. [`SearchService`] and
/// [`crate::sharded::ShardedService`] both implement it, so harnesses,
/// differential suites, and examples drive either interchangeably; the
/// typed `submit_*` and blocking `search*` conveniences are provided
/// methods over `submit_request`, shared by every implementation.
pub trait ServeRequests {
    /// Enqueue one request; the ticket resolves to the matching reply arm.
    fn submit_request(&self, request: Request) -> Ticket<Reply>;

    /// Apply one insert batch and publish it as the next epoch.
    fn ingest_batch(&self, batch: &RowBatch) -> Result<IngestReceipt, ServiceError>;

    /// Current serving/cache counters.
    fn service_stats(&self) -> ServiceStats;

    /// The epoch currently being served.
    fn serving_epoch(&self) -> SnapshotEpoch;

    /// Testing seam for the open-loop harness: a request that occupies one
    /// serving worker for exactly `dur`, replying with an empty, stamped
    /// [`SearchReply`]. Injecting known service delays makes measured
    /// queueing comparable against an analytic queue model.
    #[cfg(any(test, feature = "test-seams"))]
    #[doc(hidden)]
    fn submit_sleeping(&self, dur: Duration) -> Ticket<TimedReply<SearchReply>>;

    /// Enqueue a top-k *answers* request ([`Request::Answers`]).
    fn submit(&self, query: KeywordQuery, k: usize) -> Ticket<Result<SearchReply, RequestError>> {
        self.submit_request(Request::Answers { query, k })
            .expecting(reply_answers)
    }

    /// Enqueue a top-k *interpretations* request
    /// ([`Request::Interpretations`]).
    fn submit_interpretations(
        &self,
        query: KeywordQuery,
        k: usize,
    ) -> Ticket<Result<InterpretationsReply, RequestError>> {
        self.submit_request(Request::Interpretations { query, k })
            .expecting(reply_interpretations)
    }

    /// Enqueue a diversified top-k request ([`Request::Diversified`]).
    fn submit_diversified(
        &self,
        query: KeywordQuery,
        opts: DiversifyOptions,
    ) -> Ticket<Result<DiversifiedReply, RequestError>> {
        self.submit_request(Request::Diversified { query, opts })
            .expecting(reply_diversified)
    }

    /// [`Self::submit`] with a worker-stamped completion instant
    /// ([`Request::AnswersTimed`]).
    fn submit_timed(&self, query: KeywordQuery, k: usize) -> Ticket<TimedReply<SearchReply>> {
        self.submit_request(Request::AnswersTimed { query, k })
            .expecting(reply_answers_timed)
    }

    /// [`Self::submit_diversified`] with a worker-stamped completion
    /// instant ([`Request::DiversifiedTimed`]).
    fn submit_diversified_timed(
        &self,
        query: KeywordQuery,
        opts: DiversifyOptions,
    ) -> Ticket<TimedReply<DiversifiedReply>> {
        self.submit_request(Request::DiversifiedTimed { query, opts })
            .expecting(reply_diversified_timed)
    }

    /// Blocking convenience: submit and wait.
    ///
    /// # Panics
    ///
    /// Panics if the request failed ([`RequestError`]) or the service shut
    /// down before replying — a failed request must never masquerade as a
    /// zero-result query. Callers that need to observe failure as a value
    /// use [`Self::submit`] + [`Ticket::wait`].
    fn search(&self, query: &KeywordQuery, k: usize) -> Vec<RankedAnswer> {
        self.search_versioned(query, k).answers
    }

    /// [`Self::search`] with the per-request counters.
    fn search_with_stats(
        &self,
        query: &KeywordQuery,
        k: usize,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        let reply = self.search_versioned(query, k);
        (reply.answers, reply.stats)
    }

    /// [`Self::search`] with the serving epoch and counters — the call the
    /// update-equivalence suites use to match a racing reply against the
    /// exact database version that produced it. Panics like [`Self::search`]
    /// when the worker died.
    fn search_versioned(&self, query: &KeywordQuery, k: usize) -> SearchReply {
        self.submit(query.clone(), k)
            .wait()
            .expect("service shut down before replying")
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Blocking diversified top-k. Panics like [`Self::search`] when the
    /// serving worker died.
    fn search_diversified(&self, query: &KeywordQuery, opts: DiversifyOptions) -> DiversifiedReply {
        self.submit_diversified(query.clone(), opts)
            .wait()
            .expect("service shut down before replying")
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One interactive-construction burst, as the open-loop harness issues
    /// it: open a session over a `window`-candidate query, materialize its
    /// answers (at most `limit` JTTs per candidate), and close it. Returns
    /// whether answers materialized. Services without a session registry
    /// serve the burst as a plain blocking answers request.
    fn session_burst(&self, query: &KeywordQuery, window: usize, limit: usize) -> bool {
        let _ = window;
        matches!(self.submit(query.clone(), limit).wait(), Some(Ok(_)))
    }
}

impl ServeRequests for SearchService {
    fn submit_request(&self, request: Request) -> Ticket<Reply> {
        let (reply, rx) = channel();
        self.send(Job::Serve { request, reply });
        Ticket::raw(rx)
    }

    fn ingest_batch(&self, batch: &RowBatch) -> Result<IngestReceipt, ServiceError> {
        self.ingest(batch).map_err(ServiceError::from)
    }

    fn service_stats(&self) -> ServiceStats {
        self.stats()
    }

    fn serving_epoch(&self) -> SnapshotEpoch {
        self.current_epoch()
    }

    #[cfg(any(test, feature = "test-seams"))]
    fn submit_sleeping(&self, dur: Duration) -> Ticket<TimedReply<SearchReply>> {
        let (reply, rx) = channel();
        self.send(Job::Sleep { dur, reply });
        Ticket::raw(rx).expecting(reply_answers_timed)
    }

    /// A real registry-backed burst: open, materialize, close — exactly the
    /// per-burst work the session-mode load harness used to hand-roll.
    fn session_burst(&self, query: &KeywordQuery, window: usize, limit: usize) -> bool {
        let view = self.open_session(query, window, SessionConfig::default());
        let served = self.session_answers(view.id, limit).is_some();
        self.close_session(view.id);
        served
    }
}

/// One entry point for every way to start a service — **the** constructor
/// the examples and harnesses use. Consolidates the legacy
/// [`SearchService::start`] / [`SearchService::start_durable`] /
/// [`SearchService::open`] triplet plus the sharded router behind a single
/// configured builder:
///
/// ```ignore
/// let svc = ServiceBuilder::new().workers(4).start(snapshot)?;          // in-memory
/// let svc = ServiceBuilder::new().durable(dir).start(snapshot)?;       // durable
/// let svc = ServiceBuilder::new().durable(dir).open()?;                // recover
/// let svc = ServiceBuilder::new().shards(4).start(snapshot)?;          // sharded
/// ```
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    workers: usize,
    shards: usize,
    session_ttl: Option<Duration>,
    durable_dir: Option<PathBuf>,
    durable_opts: DurableOptions,
    checkpoint_every: Option<usize>,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBuilder {
    pub fn new() -> Self {
        ServiceBuilder {
            workers: 2,
            shards: 1,
            session_ttl: None,
            durable_dir: None,
            durable_opts: DurableOptions::default(),
            checkpoint_every: None,
            fault_plan: None,
        }
    }

    /// Serving worker threads (per shard on a sharded service; at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Number of shards. `1` (the default) starts a plain [`SearchService`];
    /// anything larger starts the scatter-gather
    /// [`crate::sharded::ShardedService`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Idle TTL for abandoned construction sessions
    /// (see [`SearchService::set_session_ttl`]).
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = Some(ttl);
        self
    }

    /// Make the service durable over `dir` (WAL + checkpoints).
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Durable-store options (catalog bounds, interpreter config).
    pub fn durable_options(mut self, opts: DurableOptions) -> Self {
        self.durable_opts = opts;
        self
    }

    /// Auto-checkpoint threshold in batches, overriding
    /// [`DurableOptions::checkpoint_every`].
    pub fn checkpoint_every(mut self, batches: usize) -> Self {
        self.checkpoint_every = Some(batches);
        self
    }

    /// Fault-injection plan threaded into the durable layer (the recovery
    /// suite arms kill points through this).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    fn effective_durable_opts(&self) -> DurableOptions {
        let mut opts = self.durable_opts.clone();
        if let Some(every) = self.checkpoint_every {
            opts.checkpoint_every = every;
        }
        opts
    }

    /// Start a fresh service over `snapshot` with this configuration.
    pub fn start(&self, snapshot: Arc<SearchSnapshot>) -> Result<KeywordService, ServiceError> {
        if self.shards > 1 {
            if self.durable_dir.is_some() {
                return Err(ServiceError::Unsupported(
                    "a sharded service cannot be durable yet; drop shards() or durable()".into(),
                ));
            }
            let service =
                crate::sharded::ShardedService::start(snapshot, self.shards, self.workers);
            return Ok(KeywordService::Sharded(service));
        }
        let service = match &self.durable_dir {
            Some(dir) => {
                let faults = self
                    .fault_plan
                    .clone()
                    .unwrap_or_else(|| Arc::new(FaultPlan::new()));
                SearchService::start_durable_with_plan(
                    snapshot,
                    self.workers,
                    dir,
                    &self.effective_durable_opts(),
                    faults,
                )?
            }
            None => SearchService::start(snapshot, self.workers),
        };
        service.set_session_ttl(self.session_ttl);
        Ok(KeywordService::Single(service))
    }

    /// Recover a durable service from the configured directory.
    pub fn open(&self) -> Result<KeywordService, ServiceError> {
        if self.shards > 1 {
            return Err(ServiceError::Unsupported(
                "a sharded service cannot be durable yet; drop shards() or durable()".into(),
            ));
        }
        let dir = self.durable_dir.as_ref().ok_or_else(|| {
            ServiceError::Unsupported("open() requires durable(dir) to be configured".into())
        })?;
        let faults = self
            .fault_plan
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::new()));
        let service = SearchService::open_with_plan(
            dir,
            self.workers,
            &self.effective_durable_opts(),
            faults,
        )?;
        service.set_session_ttl(self.session_ttl);
        Ok(KeywordService::Single(service))
    }
}

/// A started service of either topology, returned by [`ServiceBuilder`].
/// Implements [`ServeRequests`] by delegation, so callers that only speak
/// the request seam never need to know which variant they hold.
// The size skew between the two handles is irrelevant: a process holds a
// handful of services, never collections of them.
#[allow(clippy::large_enum_variant)]
pub enum KeywordService {
    Single(SearchService),
    Sharded(crate::sharded::ShardedService),
}

impl KeywordService {
    /// The single-shard service, when this is one (for the session registry
    /// and the durability surface, which have no sharded counterpart yet).
    pub fn as_single(&self) -> Option<&SearchService> {
        match self {
            KeywordService::Single(s) => Some(s),
            KeywordService::Sharded(_) => None,
        }
    }

    /// The sharded service, when this is one.
    pub fn as_sharded(&self) -> Option<&crate::sharded::ShardedService> {
        match self {
            KeywordService::Single(_) => None,
            KeywordService::Sharded(s) => Some(s),
        }
    }
}

impl ServeRequests for KeywordService {
    fn submit_request(&self, request: Request) -> Ticket<Reply> {
        match self {
            KeywordService::Single(s) => s.submit_request(request),
            KeywordService::Sharded(s) => s.submit_request(request),
        }
    }

    fn ingest_batch(&self, batch: &RowBatch) -> Result<IngestReceipt, ServiceError> {
        match self {
            KeywordService::Single(s) => ServeRequests::ingest_batch(s, batch),
            KeywordService::Sharded(s) => ServeRequests::ingest_batch(s, batch),
        }
    }

    fn service_stats(&self) -> ServiceStats {
        match self {
            KeywordService::Single(s) => s.service_stats(),
            KeywordService::Sharded(s) => s.service_stats(),
        }
    }

    fn serving_epoch(&self) -> SnapshotEpoch {
        match self {
            KeywordService::Single(s) => s.serving_epoch(),
            KeywordService::Sharded(s) => s.serving_epoch(),
        }
    }

    #[cfg(any(test, feature = "test-seams"))]
    fn submit_sleeping(&self, dur: Duration) -> Ticket<TimedReply<SearchReply>> {
        match self {
            KeywordService::Single(s) => s.submit_sleeping(dur),
            KeywordService::Sharded(s) => s.submit_sleeping(dur),
        }
    }

    fn session_burst(&self, query: &KeywordQuery, window: usize, limit: usize) -> bool {
        match self {
            KeywordService::Single(s) => s.session_burst(query, window, limit),
            KeywordService::Sharded(s) => s.session_burst(query, window, limit),
        }
    }
}

fn worker_loop(
    current: &Mutex<Arc<ServingState>>,
    served: &AtomicUsize,
    rx: &Mutex<Receiver<Job>>,
) {
    loop {
        // Hold the receiver lock only for the pop, never while serving.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked mid-pop; shut down
        };
        let Ok(job) = job else { return }; // channel hung up: drained + done
                                           // Pin this request to one serving state: snapshot + the cache
                                           // generation that belongs to it. An epoch swap mid-request does not
                                           // affect us (snapshot isolation), and we can never mix epochs.
        let state = match current.lock() {
            Ok(guard) => Arc::clone(&guard),
            Err(_) => return, // writer panicked mid-swap; shut down
        };
        match job {
            Job::Serve { request, reply } => {
                let out = serve_request(&state, request);
                // Count before replying so a client that just got its answer
                // never observes a stale total.
                served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(out); // client may have given up: fine
            }
            #[cfg(any(test, feature = "test-seams"))]
            Job::Sleep { dur, reply } => {
                std::thread::sleep(dur);
                served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Reply::AnswersTimed(TimedReply {
                    completed_at: Instant::now(),
                    result: Ok(SearchReply {
                        epoch: state.epoch,
                        shard_epochs: Vec::new(),
                        answers: Vec::new(),
                        stats: AnswerStats::default(),
                    }),
                }));
            }
            #[cfg(any(test, feature = "test-seams"))]
            Job::Panic { reply } => {
                let out = catch_unwind(|| -> SearchReply {
                    panic!("injected worker panic (testing seam)");
                });
                served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Reply::Answers(out.map_err(panic_to_error)));
            }
        }
    }
}

/// Serve one [`Request`] against a pinned serving state, always producing
/// the matching [`Reply`] arm. Serving code runs under `catch_unwind`: a
/// panicking query must come back to its client as a typed
/// [`RequestError`], not as a hung-up channel — and the worker must survive
/// to take the next job. `AssertUnwindSafe` is sound here because the
/// shared caches only ever admit *complete* entries (a panic mid-query
/// cannot have published partial derived state), and everything else the
/// closure touches dies with the request.
fn serve_request(state: &ServingState, request: Request) -> Reply {
    let interpreter = state.snapshot.interpreter();
    match request {
        Request::Answers { query, k } => Reply::Answers(
            catch_unwind(AssertUnwindSafe(|| {
                answers_on_state(state, &interpreter, &query, k)
            }))
            .map_err(panic_to_error),
        ),
        Request::Interpretations { query, k } => Reply::Interpretations(
            catch_unwind(AssertUnwindSafe(|| {
                let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&state.nonempty));
                interpreter.top_k_with_cache(&query, k, true, &mut gen_cache)
            }))
            .map_err(panic_to_error),
        ),
        Request::Diversified { query, opts } => Reply::Diversified(
            catch_unwind(AssertUnwindSafe(|| {
                diversified_on_state(state, &interpreter, &query, opts)
            }))
            .map_err(panic_to_error),
        ),
        Request::AnswersTimed { query, k } => {
            let out = catch_unwind(AssertUnwindSafe(|| {
                answers_on_state(state, &interpreter, &query, k)
            }));
            Reply::AnswersTimed(TimedReply {
                completed_at: Instant::now(),
                result: out.map_err(panic_to_error),
            })
        }
        Request::DiversifiedTimed { query, opts } => {
            let out = catch_unwind(AssertUnwindSafe(|| {
                diversified_on_state(state, &interpreter, &query, opts)
            }));
            Reply::DiversifiedTimed(TimedReply {
                completed_at: Instant::now(),
                result: out.map_err(panic_to_error),
            })
        }
    }
}

fn answers_on_state(
    state: &ServingState,
    interpreter: &Interpreter<'_>,
    query: &KeywordQuery,
    k: usize,
) -> SearchReply {
    let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&state.nonempty));
    let mut exec_cache = ExecCache::with_shared(Arc::clone(&state.exec));
    let (answers, stats) = interpreter.answers_top_k_with_caches(
        query,
        k,
        ExecOptions::default(),
        &mut gen_cache,
        &mut exec_cache,
    );
    SearchReply {
        epoch: state.epoch,
        shard_epochs: Vec::new(),
        answers,
        stats,
    }
}

fn diversified_on_state(
    state: &ServingState,
    interpreter: &Interpreter<'_>,
    query: &KeywordQuery,
    opts: DiversifyOptions,
) -> DiversifiedReply {
    let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&state.nonempty));
    let mut exec_cache = ExecCache::with_shared(Arc::clone(&state.exec));
    let out = QueryPipeline::new(
        interpreter,
        ExecOptions::default(),
        &mut gen_cache,
        &mut exec_cache,
    )
    .diversified(query, opts);
    DiversifiedReply {
        epoch: state.epoch,
        shard_epochs: Vec::new(),
        answers: out.answers,
        pool: out.pool,
        stats: out.stats,
    }
}

/// Render a caught panic payload as the typed reply error. Panics raised by
/// `panic!("…")` carry `&str` or `String`; anything else gets a fixed tag.
pub(crate) fn panic_to_error(payload: Box<dyn std::any::Any + Send>) -> RequestError {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    RequestError::WorkerPanicked { message }
}

// The whole point of the snapshot/service split: everything a worker
// touches must cross threads. These bounds are checked at compile time, so
// any future interior-mutability seam (an `Rc`, a `RefCell`) in relstore,
// textindex, or core breaks the build here instead of a user's deploy.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SearchSnapshot>();
    assert_send_sync::<ServingState>();
    assert_send_sync::<SharedNonemptyCache>();
    assert_send_sync::<SharedExecCache>();
    assert_send_sync::<SearchService>();
    assert_send_sync::<Database>();
    assert_send_sync::<InvertedIndex>();
    assert_send_sync::<TemplateCatalog>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_relstore::Value;

    fn snapshot() -> Arc<SearchSnapshot> {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        Arc::new(SearchSnapshot::build(data.db, InterpreterConfig::default(), 4, 50_000).unwrap())
    }

    #[test]
    fn service_matches_direct_interpreter() {
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let direct = snap.interpreter().answers_top_k(&q, 5);
        let served = service.search(&q, 5);
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
            assert_eq!(a.keys, b.keys);
            assert!((a.log_score - b.log_score).abs() < 1e-12);
        }
        assert_eq!(service.stats().served, 1);
    }

    #[test]
    fn shared_caches_fill_and_hit_across_requests() {
        let snap = snapshot();
        let service = SearchService::start(snap, 1);
        let q = KeywordQuery::from_terms(vec!["tom".into(), "hanks".into()]);
        let (first, _) = service.search_with_stats(&q, 5);
        let stats = service.stats();
        assert!(
            stats.nonempty_entries > 0,
            "no shared verdicts after a query"
        );
        assert!(
            stats.predicate_entries > 0,
            "no shared predicates after a query"
        );
        // Replay: the second request's generation must be served from the
        // shared tier (zero fresh probes) and return identical answers.
        let (second, astats) = service.search_with_stats(&q, 5);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
        }
        assert_eq!(astats.gen.nonempty_probes, 0, "replay re-probed the index");
        let stats = service.stats();
        assert!(stats.nonempty_hits > 0);
        assert!(stats.result_hits + stats.predicate_hits > 0);
    }

    #[test]
    fn interpretations_requests_served() {
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let direct = snap.interpreter().top_k(&q, 7);
        let (served, _) = service
            .submit_interpretations(q, 7)
            .wait()
            .expect("service alive")
            .expect("request served");
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.interpretation, b.interpretation);
            assert!((a.log_score - b.log_score).abs() < 1e-12);
        }
    }

    #[test]
    fn many_tickets_in_flight() {
        let snap = snapshot();
        let service = SearchService::start(snap, 4);
        let queries = ["tom", "day", "moore", "mary"];
        let tickets: Vec<_> = (0..16)
            .map(|i| {
                let q = KeywordQuery::from_terms(vec![queries[i % queries.len()].into()]);
                (i, service.submit(q, 3))
            })
            .collect();
        for (i, t) in tickets {
            let reply = t.wait().expect("worker alive").expect("request served");
            assert!(reply.answers.len() <= 3, "request {i} overflowed k");
            assert_eq!(reply.epoch, SnapshotEpoch(0));
        }
        assert_eq!(service.stats().served, 16);
    }

    #[test]
    fn drop_joins_workers() {
        let snap = snapshot();
        let service = SearchService::start(snap, 3);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let _ = service.search(&q, 2);
        drop(service); // must not hang or leak threads
    }

    #[test]
    fn ingest_swaps_epoch_and_retires_cache_generation() {
        let snap = snapshot();
        let actor = snap.db.schema().table_id("actor").unwrap();
        let next_pk = snap.db.table(actor).len() as i64 + 1000;
        let service = SearchService::start(snap, 2);
        assert_eq!(service.current_epoch(), SnapshotEpoch(0));

        // Warm the epoch-0 cache generation, then swap.
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let before = service.search_versioned(&q, 5);
        assert_eq!(before.epoch, SnapshotEpoch(0));
        let warm = service.stats();
        assert!(warm.nonempty_entries > 0, "epoch-0 generation never filled");
        assert_eq!(warm.epoch_swaps, 0);
        assert_eq!(warm.stale_evictions, 0);

        let batch: RowBatch = vec![(actor, vec![Value::Int(next_pk), Value::text("tom newman")])];
        let receipt = service.ingest(&batch).unwrap();
        assert_eq!(
            receipt,
            IngestReceipt {
                epoch: SnapshotEpoch(1),
                rows: 1
            }
        );
        assert_eq!(service.current_epoch(), SnapshotEpoch(1));

        let stats = service.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.epoch_swaps, 1);
        assert_eq!(stats.rows_ingested, 1);
        assert_eq!(
            stats.stale_evictions,
            warm.nonempty_entries + warm.predicate_entries + warm.result_entries,
            "displaced generation's entries must all be counted stale"
        );
        // The new generation starts cold: nothing from epoch 0 leaked in.
        assert_eq!(stats.nonempty_entries, 0);
        assert_eq!(stats.predicate_entries, 0);
        assert_eq!(stats.result_entries, 0);

        // Post-swap replies report the new epoch and see the new row.
        let after = service.search_versioned(&q, 50);
        assert_eq!(after.epoch, SnapshotEpoch(1));
        assert!(
            after.answers.len() >= before.answers.len(),
            "the inserted 'tom newman' row can only add matches"
        );
    }

    #[test]
    fn diversified_matches_cold_pipeline() {
        use crate::pipeline::{DiversifyConfig, DiversifyOptions};
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let opts = DiversifyOptions {
            config: DiversifyConfig { lambda: 0.1, k: 4 },
            pool: 12,
            cap: 5,
        };
        // Cold oracle: a fresh interpreter with plain (unshared) caches.
        let interpreter = snap.interpreter();
        let mut gen_cache = NonemptyCache::new();
        let mut exec_cache = ExecCache::new();
        let cold = QueryPipeline::new(
            &interpreter,
            ExecOptions::default(),
            &mut gen_cache,
            &mut exec_cache,
        )
        .diversified(&q, opts);
        // Twice through the warm service: second run is cache-served.
        for pass in 0..2 {
            let reply = service.search_diversified(&q, opts);
            assert_eq!(reply.epoch, SnapshotEpoch(0));
            assert_eq!(reply.pool, cold.pool, "pass {pass}");
            assert_eq!(reply.answers.len(), cold.answers.len(), "pass {pass}");
            for (a, b) in reply.answers.iter().zip(&cold.answers) {
                assert_eq!(a.interpretation, b.interpretation, "pass {pass}");
                assert_eq!(a.relevance.to_bits(), b.relevance.to_bits(), "pass {pass}");
                assert_eq!(a.atoms, b.atoms, "pass {pass}");
                assert_eq!(a.keys, b.keys, "pass {pass}");
                assert_eq!(a.pool_rank, b.pool_rank, "pass {pass}");
            }
        }
        assert_eq!(service.stats().served, 2);
    }

    #[test]
    fn session_lifecycle_and_pinned_epoch_across_ingest() {
        let snap = snapshot();
        let actor = snap.db.schema().table_id("actor").unwrap();
        let next_pk = snap.db.table(actor).len() as i64 + 5000;
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);

        let opened = service.open_session(&q, 10, SessionConfig::default());
        assert_eq!(opened.epoch, SnapshotEpoch(0));
        assert_eq!(opened.steps, 0);
        assert!(opened.remaining > 0);
        assert_eq!(service.stats().sessions_open, 1);

        // The pinned-epoch oracle: a cold offline session over the same
        // snapshot must propose the same option and yield byte-identical
        // window answers.
        let interpreter = snap.interpreter();
        let mut oracle =
            ConstructionSession::for_query(&interpreter, &q, 10, SessionConfig::default());
        assert_eq!(oracle.remaining().len(), opened.remaining);
        assert_eq!(oracle.next_option(&snap.catalog), opened.next_option);

        // Ingest swaps the epoch; the session keeps answering from epoch 0.
        let batch: RowBatch = vec![(
            actor,
            vec![Value::Int(next_pk), Value::text("tom sessions")],
        )];
        let receipt = service.ingest(&batch).unwrap();
        assert_eq!(receipt.epoch, SnapshotEpoch(1));

        let answers = service.session_answers(opened.id, 3).expect("session open");
        assert_eq!(answers.epoch, SnapshotEpoch(0), "session must stay pinned");
        let cold = oracle.window_answers(&snap.db, &snap.index, &snap.catalog, 3);
        assert_eq!(answers.answers.len(), cold.len());
        for ((si, sr), (ci, cr)) in answers.answers.iter().zip(&cold) {
            assert_eq!(si, ci);
            assert_eq!(sr.jtts, cr.jtts);
            assert_eq!(sr.keys, cr.keys);
        }

        // Advance both with the same verdict; the views stay in lockstep.
        if let Some(option) = opened.next_option.clone() {
            let view = service
                .advance_session(opened.id, &option, true)
                .expect("session open");
            oracle.apply(&snap.catalog, option, true);
            assert_eq!(view.remaining, oracle.remaining().len());
            assert_eq!(view.steps, 1);
            assert_eq!(view.epoch, SnapshotEpoch(0));
            assert_eq!(view.next_option, oracle.next_option(&snap.catalog));
        }

        // A session opened *now* pins the new epoch.
        let fresh = service.open_session(&q, 10, SessionConfig::default());
        assert_eq!(fresh.epoch, SnapshotEpoch(1));
        assert_eq!(service.stats().sessions_open, 2);

        assert!(service.close_session(opened.id));
        assert!(!service.close_session(opened.id), "double close");
        assert!(service.session_answers(opened.id, 3).is_none());
        assert_eq!(service.stats().sessions_open, 1);
        assert!(service.close_session(fresh.id));
    }

    #[test]
    fn session_registry_evicts_oldest_at_the_bound() {
        let snap = snapshot();
        let service = SearchService::start(snap, 1);
        // Empty queries open cheap (zero-candidate) sessions — enough to
        // exercise the bound without generation cost.
        let q = KeywordQuery::from_terms(vec![]);
        let overflow = 6;
        let ids: Vec<SessionId> = (0..MAX_OPEN_SESSIONS + overflow)
            .map(|_| service.open_session(&q, 5, SessionConfig::default()).id)
            .collect();
        let stats = service.stats();
        assert_eq!(stats.sessions_open, MAX_OPEN_SESSIONS);
        assert_eq!(stats.sessions_evicted, overflow);
        // The oldest ids were displaced; the newest still answer.
        for id in &ids[..overflow] {
            assert!(service.session_view(*id).is_none(), "{id:?} survived");
        }
        for id in &ids[ids.len() - 2..] {
            assert!(service.session_view(*id).is_some(), "{id:?} evicted");
        }
        // Explicit closes are not evictions.
        assert!(service.close_session(*ids.last().unwrap()));
        assert_eq!(service.stats().sessions_evicted, overflow);
    }

    #[test]
    fn idle_session_expires_and_frees_its_pinned_epoch() {
        let snap = snapshot();
        let actor = snap.db.schema().table_id("actor").unwrap();
        let next_pk = snap.db.table(actor).len() as i64 + 9000;
        let service = SearchService::start(snap, 1);
        service.set_session_ttl(Some(Duration::from_secs(3600)));
        let q = KeywordQuery::from_terms(vec!["tom".into()]);

        // Session A pins epoch 0.
        let a = service.open_session(&q, 8, SessionConfig::default());
        assert_eq!(a.epoch, SnapshotEpoch(0));
        let epoch0 = Arc::downgrade(&*service.current.lock().unwrap());

        // Ingest displaces epoch 0; only A's pin keeps it alive now.
        let batch: RowBatch = vec![(actor, vec![Value::Int(next_pk), Value::text("tom idle")])];
        service.ingest(&batch).unwrap();
        assert!(epoch0.upgrade().is_some(), "A's pin must hold epoch 0");

        // Session B is live on epoch 1; keep its answers for later.
        let b = service.open_session(&q, 8, SessionConfig::default());
        assert_eq!(b.epoch, SnapshotEpoch(1));
        let b_before = service.session_answers(b.id, 3).expect("b open");

        // A has been idle for two hours (back-dated); B was just touched.
        assert!(service.age_session(a.id, Duration::from_secs(7200)));
        assert_eq!(service.expire_idle_sessions(), 1);

        // The expired session is gone and its whole epoch — snapshot plus
        // cache generation — has been freed.
        assert!(service.session_view(a.id).is_none());
        assert!(epoch0.upgrade().is_none(), "expired session leaked epoch 0");
        let stats = service.stats();
        assert_eq!(stats.sessions_expired, 1);
        assert_eq!(stats.sessions_open, 1);
        assert_eq!(stats.sessions_evicted, 0, "expiry is not an eviction");

        // The live session still answers, identically, from its epoch.
        let b_after = service.session_answers(b.id, 3).expect("b still open");
        assert_eq!(b_after.epoch, SnapshotEpoch(1));
        assert_eq!(b_after.answers.len(), b_before.answers.len());
        for ((i1, r1), (i2, r2)) in b_before.answers.iter().zip(&b_after.answers) {
            assert_eq!(i1, i2);
            assert_eq!(r1.jtts, r2.jtts);
            assert_eq!(r1.keys, r2.keys);
        }
    }

    #[test]
    fn open_session_sweeps_expired_sessions() {
        let snap = snapshot();
        let service = SearchService::start(snap, 1);
        service.set_session_ttl(Some(Duration::from_secs(3600)));
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let a = service.open_session(&q, 5, SessionConfig::default());
        assert!(service.age_session(a.id, Duration::from_secs(7200)));
        // No explicit sweep: the next open must reap the idle session.
        let b = service.open_session(&q, 5, SessionConfig::default());
        assert!(service.session_view(a.id).is_none());
        assert!(service.session_view(b.id).is_some());
        assert_eq!(service.stats().sessions_expired, 1);
        // A touch resets the idle clock: an aged-then-viewed session stays.
        service.age_session(b.id, Duration::from_secs(7200));
        assert!(service.session_view(b.id).is_some());
        assert_eq!(service.expire_idle_sessions(), 0);
        // Without a TTL the sweep is a no-op regardless of idleness.
        service.set_session_ttl(None);
        service.age_session(b.id, Duration::from_secs(100_000));
        assert_eq!(service.expire_idle_sessions(), 0);
        assert!(service.session_view(b.id).is_some());
    }

    #[test]
    fn timed_submits_stamp_completion_and_match_untimed() {
        let snap = snapshot();
        let service = SearchService::start(Arc::clone(&snap), 2);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let before = Instant::now();
        let plain = service.search(&q, 5);
        let timed = service
            .submit_timed(q.clone(), 5)
            .wait()
            .expect("service alive");
        assert!(timed.completed_at >= before);
        assert!(timed.completed_at <= Instant::now());
        let reply = timed.result.expect("request served");
        assert_eq!(reply.epoch, SnapshotEpoch(0));
        assert_eq!(reply.answers.len(), plain.len());
        for (a, b) in plain.iter().zip(&reply.answers) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
        }

        let opts = DiversifyOptions::default();
        let div_plain = service.search_diversified(&q, opts);
        let div_timed = service
            .submit_diversified_timed(q, opts)
            .wait()
            .expect("service alive");
        let div_reply = div_timed.result.expect("request served");
        assert_eq!(div_reply.pool, div_plain.pool);
        assert_eq!(div_reply.answers.len(), div_plain.answers.len());

        // The sleeping seam holds the worker and stamps afterwards.
        let t0 = Instant::now();
        let slept = service
            .submit_sleeping(Duration::from_millis(20))
            .wait()
            .expect("service alive");
        assert!(slept.completed_at.duration_since(t0) >= Duration::from_millis(20));
        assert!(slept.result.is_ok());
    }

    #[test]
    fn panic_is_contained_and_worker_survives() {
        let snap = snapshot();
        // One worker: if the panic killed it, nothing could serve afterward.
        let service = SearchService::start(snap, 1);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let before = service.search(&q, 3);

        let err = service
            .submit_panicking()
            .wait()
            .expect("channel alive: a contained panic still replies")
            .expect_err("injected panic must surface as an error");
        let RequestError::WorkerPanicked { message } = &err;
        assert!(message.contains("injected worker panic"), "{message}");
        assert_eq!(
            err.to_string(),
            format!("serving worker panicked: {message}")
        );

        // The same (sole) worker keeps serving identical answers.
        let after = service.search(&q, 3);
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
        }
        assert_eq!(service.stats().served, 3, "panicked request still counted");
    }

    #[test]
    fn durable_service_checkpoints_and_reopens() {
        let dir =
            std::env::temp_dir().join(format!("keybridge-service-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let snap = snapshot();
        let actor = snap.db.schema().table_id("actor").unwrap();
        let base_pk = snap.db.table(actor).len() as i64 + 7000;
        let opts = DurableOptions {
            max_joins: 4,
            ..DurableOptions::default()
        };
        let q = KeywordQuery::from_terms(vec!["tom".into()]);

        let service = SearchService::start_durable(Arc::clone(&snap), 2, &dir, &opts).unwrap();
        assert!(service.fault_plan().is_some());
        assert!(!service.is_poisoned());
        // A second start on the same directory must refuse, not clobber.
        assert!(matches!(
            SearchService::start_durable(Arc::clone(&snap), 1, &dir, &opts),
            Err(DurabilityError::Corrupt(_))
        ));

        for i in 0..2 {
            let batch: RowBatch = vec![(
                actor,
                vec![
                    Value::Int(base_pk + i),
                    Value::text(format!("tom durable{i}")),
                ],
            )];
            service.ingest(&batch).unwrap();
        }
        let receipt = service.checkpoint().unwrap();
        assert_eq!(receipt.epoch, SnapshotEpoch(2));
        assert!(receipt.snapshot_bytes > 0);
        // One more batch after the checkpoint: recovery must replay it.
        let batch: RowBatch = vec![(
            actor,
            vec![Value::Int(base_pk + 2), Value::text("tom durable2")],
        )];
        service.ingest(&batch).unwrap();
        let stats = service.stats();
        assert_eq!(stats.wal_batches, 3);
        assert!(stats.wal_bytes > 0);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.recovery_replayed_batches, 0);
        let expected = service.search_versioned(&q, 10);
        drop(service);

        let recovered = SearchService::open(&dir, 2, &opts).unwrap();
        assert_eq!(recovered.current_epoch(), SnapshotEpoch(3));
        assert_eq!(recovered.stats().recovery_replayed_batches, 1);
        let got = recovered.search_versioned(&q, 10);
        assert_eq!(got.epoch, expected.epoch);
        assert_eq!(got.answers.len(), expected.answers.len());
        for (a, b) in got.answers.iter().zip(&expected.answers) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.jtt, b.jtt);
            assert_eq!(a.keys, b.keys);
            assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
        }
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_durable_service_refuses_checkpoint() {
        let service = SearchService::start(snapshot(), 1);
        assert!(matches!(
            service.checkpoint(),
            Err(DurabilityError::NotDurable)
        ));
        assert!(service.fault_plan().is_none());
        let stats = service.stats();
        assert_eq!(stats.wal_batches, 0);
        assert_eq!(stats.recovery_replayed_batches, 0);
    }

    #[test]
    fn session_view_reports_without_advancing() {
        let snap = snapshot();
        let service = SearchService::start(snap, 1);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let opened = service.open_session(&q, 8, SessionConfig::default());
        let view = service.session_view(opened.id).expect("open");
        assert_eq!(view.remaining, opened.remaining);
        assert_eq!(view.steps, 0);
        assert_eq!(view.next_option, opened.next_option);
        assert!(service.session_view(SessionId(999)).is_none());
    }

    #[test]
    fn ingest_rejects_bad_batch_without_swapping() {
        let snap = snapshot();
        let acts = snap.db.schema().table_id("acts").unwrap();
        let service = SearchService::start(snap, 1);
        // Orphan foreign key: rejected atomically, epoch unchanged.
        let batch: RowBatch = vec![(
            acts,
            vec![
                Value::Int(999_999),
                Value::Int(777_777),
                Value::Int(888_888),
                Value::text("ghost role"),
            ],
        )];
        assert!(service.ingest(&batch).is_err());
        assert_eq!(service.current_epoch(), SnapshotEpoch(0));
        let stats = service.stats();
        assert_eq!(stats.epoch_swaps, 0);
        assert_eq!(stats.rows_ingested, 0);
    }

    #[test]
    fn successive_ingests_accumulate() {
        let snap = snapshot();
        let actor = snap.db.schema().table_id("actor").unwrap();
        let base_pk = snap.db.table(actor).len() as i64 + 2000;
        let service = SearchService::start(snap, 2);
        for i in 0..3 {
            let batch: RowBatch = vec![(
                actor,
                vec![
                    Value::Int(base_pk + i),
                    Value::text(format!("fresh name{i}")),
                ],
            )];
            let receipt = service.ingest(&batch).unwrap();
            assert_eq!(receipt.epoch, SnapshotEpoch(i as u64 + 1));
        }
        let stats = service.stats();
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.epoch_swaps, 3);
        assert_eq!(stats.rows_ingested, 3);
        // All three rows are visible to the served snapshot.
        let snap_now = service.snapshot();
        for i in 0..3 {
            assert!(snap_now.db.table(actor).by_pk(base_pk + i).is_some());
        }
        snap_now.db.validate().unwrap();
    }
}
