//! Interpretation generation (§3.5.2): compose keyword interpretations with
//! query templates into complete, minimal query interpretations.

use crate::interp::{BindingTarget, KeywordBinding, QueryInterpretation};
use crate::keyword::KeywordQuery;
use crate::prob::{ProbabilityConfig, ProbabilityModel, TemplatePrior};
use crate::template::TemplateCatalog;
use keybridge_index::{InvertedIndex, SchemaTarget};
use keybridge_relstore::{AttrRef, Database};
use std::collections::{HashMap, HashSet};

/// Generation and scoring knobs.
#[derive(Debug, Clone)]
pub struct InterpreterConfig {
    /// Hard cap on generated interpretations per query (the interpretation
    /// space grows polynomially with schema size and exponentially with
    /// query length; §3.8.5).
    pub max_interpretations: usize,
    /// Require every value predicate to match at least one row (the DivQ
    /// non-empty-result necessary condition, §4.4.1).
    pub require_nonempty_predicates: bool,
    /// Allow keywords to be interpreted as table/attribute names.
    pub allow_schema_bindings: bool,
    /// Probability model knobs.
    pub prob: ProbabilityConfig,
    /// Template prior.
    pub prior: TemplatePrior,
}

impl Default for InterpreterConfig {
    fn default() -> Self {
        InterpreterConfig {
            max_interpretations: 20_000,
            require_nonempty_predicates: true,
            allow_schema_bindings: true,
            prob: ProbabilityConfig::default(),
            prior: TemplatePrior::Uniform,
        }
    }
}

/// An interpretation with its score under the probability model.
#[derive(Debug, Clone)]
pub struct ScoredInterpretation {
    pub interpretation: QueryInterpretation,
    /// `ln P(Q|K)` up to the per-query constant.
    pub log_score: f64,
    /// Probability normalized over the generated candidate set.
    pub probability: f64,
}

/// One candidate target for a single keyword, before template localization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermCandidate {
    Value(AttrRef),
    TableName(keybridge_relstore::TableId),
    AttrName(AttrRef),
}

/// The interpretation generator.
pub struct Interpreter<'a> {
    db: &'a Database,
    index: &'a InvertedIndex,
    catalog: &'a TemplateCatalog,
    config: InterpreterConfig,
}

impl<'a> Interpreter<'a> {
    pub fn new(
        db: &'a Database,
        index: &'a InvertedIndex,
        catalog: &'a TemplateCatalog,
        config: InterpreterConfig,
    ) -> Self {
        Interpreter {
            db,
            index,
            catalog,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InterpreterConfig {
        &self.config
    }

    /// The template catalog in use.
    pub fn catalog(&self) -> &TemplateCatalog {
        self.catalog
    }

    /// Candidate interpretations of each distinct term, schema-level.
    fn term_candidates(&self, query: &KeywordQuery) -> HashMap<String, Vec<TermCandidate>> {
        let mut out = HashMap::new();
        for term in query.distinct_terms() {
            let mut cands = Vec::new();
            for attr in self.index.attrs_containing(term) {
                cands.push(TermCandidate::Value(attr));
            }
            if self.config.allow_schema_bindings {
                for m in self.index.schema_matches(term) {
                    match m {
                        SchemaTarget::Table(t) => cands.push(TermCandidate::TableName(*t)),
                        SchemaTarget::Attribute(a) => cands.push(TermCandidate::AttrName(*a)),
                    }
                }
            }
            // Deterministic order.
            cands.sort_by_key(|c| match c {
                TermCandidate::Value(a) => (0u8, a.table.0, a.attr.0),
                TermCandidate::AttrName(a) => (1, a.table.0, a.attr.0),
                TermCandidate::TableName(t) => (2, t.0, 0),
            });
            cands.dedup();
            out.insert(term.to_owned(), cands);
        }
        out
    }

    /// Enumerate complete, minimal interpretations of `query` (Def. 3.5.4),
    /// capped at `max_interpretations`.
    pub fn enumerate_interpretations(&self, query: &KeywordQuery) -> Vec<QueryInterpretation> {
        if query.is_empty() {
            return Vec::new();
        }
        let candidates = self.term_candidates(query);
        let terms = query.terms();
        let mut results: HashSet<QueryInterpretation> = HashSet::new();

        'template: for tpl in self.catalog.iter() {
            // Localize candidates to template nodes.
            let mut local: Vec<Vec<BindingTarget>> = Vec::with_capacity(terms.len());
            for term in terms {
                let mut targets = Vec::new();
                for cand in &candidates[term.as_str()] {
                    match cand {
                        TermCandidate::Value(a) => {
                            for node in tpl.nodes_of_table(a.table) {
                                targets.push(BindingTarget::Value { node, attr: a.attr });
                            }
                        }
                        TermCandidate::TableName(t) => {
                            for node in tpl.nodes_of_table(*t) {
                                targets.push(BindingTarget::TableName { node });
                            }
                        }
                        TermCandidate::AttrName(a) => {
                            for node in tpl.nodes_of_table(a.table) {
                                targets.push(BindingTarget::AttrName { node, attr: a.attr });
                            }
                        }
                    }
                }
                if targets.is_empty() {
                    continue 'template; // term uninterpretable here
                }
                local.push(targets);
            }

            // DFS over per-term targets.
            let mut assignment: Vec<BindingTarget> = Vec::with_capacity(terms.len());
            self.dfs(tpl, terms, &local, &mut assignment, &mut results);
            if results.len() >= self.config.max_interpretations {
                break;
            }
        }

        let mut v: Vec<QueryInterpretation> = results.into_iter().collect();
        // Deterministic output order (callers re-rank anyway).
        v.sort_by(|a, b| {
            a.template
                .cmp(&b.template)
                .then_with(|| a.bindings.cmp(&b.bindings))
        });
        v.truncate(self.config.max_interpretations);
        v
    }

    fn dfs(
        &self,
        tpl: &crate::template::QueryTemplate,
        terms: &[String],
        local: &[Vec<BindingTarget>],
        assignment: &mut Vec<BindingTarget>,
        results: &mut HashSet<QueryInterpretation>,
    ) {
        if results.len() >= self.config.max_interpretations {
            return;
        }
        let i = assignment.len();
        if i == terms.len() {
            // Group terms by target into bindings.
            let mut groups: HashMap<BindingTarget, Vec<String>> = HashMap::new();
            for (t, target) in terms.iter().zip(assignment.iter()) {
                groups.entry(target.clone()).or_default().push(t.clone());
            }
            let bindings: Vec<KeywordBinding> = groups
                .into_iter()
                .map(|(target, keywords)| KeywordBinding { keywords, target })
                .collect();
            let interp = QueryInterpretation::new(tpl.id, bindings);
            if !interp.is_minimal(self.catalog) {
                return;
            }
            if self.config.require_nonempty_predicates && !self.predicates_nonempty(tpl, &interp)
            {
                return;
            }
            results.insert(interp);
            return;
        }
        for target in &local[i] {
            assignment.push(target.clone());
            self.dfs(tpl, terms, local, assignment, results);
            assignment.pop();
            if results.len() >= self.config.max_interpretations {
                return;
            }
        }
    }

    /// Necessary non-emptiness condition: each value-bag predicate matches
    /// at least one row of its attribute.
    fn predicates_nonempty(
        &self,
        tpl: &crate::template::QueryTemplate,
        interp: &QueryInterpretation,
    ) -> bool {
        for b in &interp.bindings {
            if let BindingTarget::Value { node, attr } = b.target {
                let aref = AttrRef {
                    table: tpl.tree.nodes[node],
                    attr,
                };
                if self.index.rows_with_all(&b.keywords, aref).is_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerate, score, normalize, and sort interpretations, best first.
    /// Ties break on canonical interpretation order for determinism.
    pub fn ranked_interpretations(&self, query: &KeywordQuery) -> Vec<ScoredInterpretation> {
        let interps = self.enumerate_interpretations(query);
        self.rank(query, interps)
    }

    /// Like [`Self::ranked_interpretations`], but the candidate space also
    /// contains *partial* interpretations — interpretations of every
    /// non-empty keyword subset, charged `P_u` per unmapped keyword
    /// (Eq. 3.6 / §4.4.2). This is the DivQ candidate pool: partial
    /// interpretations interleave with complete ones and their results
    /// overlap, which is exactly the redundancy diversification removes
    /// (Table 4.1's "A director CHRISTOPHER GUEST" at rank 2).
    ///
    /// Queries longer than 12 keywords fall back to complete-only ranking
    /// (the subset lattice would explode).
    pub fn ranked_with_partials(&self, query: &KeywordQuery) -> Vec<ScoredInterpretation> {
        let n = query.len();
        if n == 0 || n > 12 {
            return self.ranked_interpretations(query);
        }
        let terms = query.terms();
        let mut all: HashSet<QueryInterpretation> = HashSet::new();
        for mask in 1u32..(1u32 << n) {
            let subset: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| terms[i].clone())
                .collect();
            let sub = KeywordQuery::from_terms(subset);
            all.extend(self.enumerate_interpretations(&sub));
            if all.len() >= self.config.max_interpretations {
                break;
            }
        }
        let mut v: Vec<QueryInterpretation> = all.into_iter().collect();
        v.sort_by(|a, b| {
            a.template
                .cmp(&b.template)
                .then_with(|| a.bindings.cmp(&b.bindings))
        });
        v.truncate(self.config.max_interpretations);
        self.rank(query, v)
    }

    /// Score and sort a pre-enumerated interpretation list.
    pub fn rank(
        &self,
        query: &KeywordQuery,
        interps: Vec<QueryInterpretation>,
    ) -> Vec<ScoredInterpretation> {
        let model = ProbabilityModel::new(
            self.db,
            self.index,
            self.catalog,
            self.config.prior.clone(),
            self.config.prob,
        );
        let logs: Vec<f64> = interps
            .iter()
            .map(|i| model.log_score(i, query.len()))
            .collect();
        let probs = ProbabilityModel::normalize(&logs);
        let mut scored: Vec<ScoredInterpretation> = interps
            .into_iter()
            .zip(logs)
            .zip(probs)
            .map(|((interpretation, log_score), probability)| ScoredInterpretation {
                interpretation,
                log_score,
                probability,
            })
            .collect();
        scored.sort_by(|a, b| {
            b.log_score
                .partial_cmp(&a.log_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.interpretation.template.cmp(&b.interpretation.template))
                .then_with(|| a.interpretation.bindings.cmp(&b.interpretation.bindings))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::Tokenizer;

    struct Fixture {
        data: ImdbDataset,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            data,
            index,
            catalog,
        }
    }

    fn first_actor_tokens(f: &Fixture) -> (String, String) {
        let row = f.data.db.table(f.data.actor).row(keybridge_relstore::RowId(0));
        let name = row[1].as_text().unwrap();
        let toks = Tokenizer::new().tokenize(name);
        (toks[0].clone(), toks[1].clone())
    }

    #[test]
    fn generates_complete_minimal_interpretations() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let all = interp.enumerate_interpretations(&q);
        assert!(!all.is_empty());
        for i in &all {
            assert!(i.is_complete(&q), "incomplete: {i:?}");
            assert!(i.is_minimal(&f.catalog), "non-minimal: {i:?}");
        }
    }

    #[test]
    fn ranked_prefers_cooccurring_name() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first.clone(), last.clone()]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let ranked = interp.ranked_interpretations(&q);
        assert!(!ranked.is_empty());
        // The top interpretation should put both tokens in one person-name
        // attribute (actor or director), thanks to the joint-ATF boost.
        let top = &ranked[0];
        let tpl = f.catalog.get(top.interpretation.template);
        let together = top.interpretation.bindings.iter().any(|b| {
            b.keywords.len() == 2
                && matches!(b.target, BindingTarget::Value { node, attr }
                    if f.data.db.schema().table(tpl.tree.nodes[node]).attr(attr).name == "name")
        });
        assert!(together, "top: {:?}", top.interpretation);
        // Probabilities normalized.
        let sum: f64 = ranked.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].log_score >= w[1].log_score);
        }
    }

    #[test]
    fn empty_query_yields_nothing() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        assert!(interp
            .enumerate_interpretations(&KeywordQuery::from_terms(vec![]))
            .is_empty());
    }

    #[test]
    fn unknown_keyword_yields_nothing() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["zzzzqqqq".into()]);
        assert!(interp.enumerate_interpretations(&q).is_empty());
    }

    #[test]
    fn schema_keyword_binds_table_name() {
        let f = fixture();
        let (_, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec!["actor".into(), last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let all = interp.enumerate_interpretations(&q);
        assert!(all.iter().any(|i| i
            .bindings
            .iter()
            .any(|b| matches!(b.target, BindingTarget::TableName { .. }))));
    }

    #[test]
    fn cap_respected() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let cfg = InterpreterConfig {
            max_interpretations: 3,
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        assert!(interp.enumerate_interpretations(&q).len() <= 3);
    }

    #[test]
    fn partials_extend_the_complete_space() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let cfg = InterpreterConfig {
            prob: keybridge_core_test_unmapped(),
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        let complete = interp.ranked_interpretations(&q);
        let with_partials = interp.ranked_with_partials(&q);
        assert!(with_partials.len() > complete.len());
        // Partials are incomplete; completes still present and minimal.
        let n_complete = with_partials
            .iter()
            .filter(|s| s.interpretation.is_complete(&q))
            .count();
        assert_eq!(n_complete, complete.len());
        // Probabilities remain a distribution.
        let sum: f64 = with_partials.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// A `P_u` large enough for partials to be visible in rankings.
    fn keybridge_core_test_unmapped() -> crate::ProbabilityConfig {
        crate::ProbabilityConfig {
            unmapped_prob: 1e-4,
            ..Default::default()
        }
    }

    #[test]
    fn space_grows_with_query_length() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                require_nonempty_predicates: false,
                ..Default::default()
            },
        );
        let q1 = KeywordQuery::from_terms(vec![last.clone()]);
        let q2 = KeywordQuery::from_terms(vec![first, last]);
        let n1 = interp.enumerate_interpretations(&q1).len();
        let n2 = interp.enumerate_interpretations(&q2).len();
        assert!(n1 > 0);
        assert!(n2 >= n1, "space should not shrink with more keywords: {n1} vs {n2}");
    }
}
