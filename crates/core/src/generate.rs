//! Interpretation generation (§3.5.2): compose keyword interpretations with
//! query templates into complete, minimal query interpretations.

use crate::exec::{bound_nodes, ExecCache, ExecutedResult, ResultKey};
use crate::interp::{BindingTarget, KeywordBinding, QueryInterpretation};
use crate::keyword::KeywordQuery;
use crate::prob::{IncrementalScorer, ProbabilityConfig, ProbabilityModel, TemplatePrior};
use crate::template::TemplateCatalog;
use keybridge_index::{InvertedIndex, SchemaTarget, TermIndex};
use keybridge_relstore::{AttrRef, Database, ExecOptions, ExecStats, JoinedRow, TableId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, RwLock};

/// How the interpreter produces its ranked candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenerationStrategy {
    /// Score-guided best-first search emitting interpretations best-first
    /// and stopping once the k-th best is provably found. The default.
    #[default]
    BestFirst,
    /// Enumerate every interpretation, score all, sort — the original
    /// exhaustive pipeline, retained as the correctness oracle.
    Exhaustive,
}

/// Generation and scoring knobs.
#[derive(Debug, Clone)]
pub struct InterpreterConfig {
    /// Hard cap on generated interpretations per query (the interpretation
    /// space grows polynomially with schema size and exponentially with
    /// query length; §3.8.5).
    pub max_interpretations: usize,
    /// Require every value predicate to match at least one row (the DivQ
    /// non-empty-result necessary condition, §4.4.1).
    pub require_nonempty_predicates: bool,
    /// Allow keywords to be interpreted as table/attribute names.
    pub allow_schema_bindings: bool,
    /// Probability model knobs.
    pub prob: ProbabilityConfig,
    /// Template prior.
    pub prior: TemplatePrior,
    /// Candidate-generation strategy for the `top_k` entry points.
    pub strategy: GenerationStrategy,
}

impl Default for InterpreterConfig {
    fn default() -> Self {
        InterpreterConfig {
            max_interpretations: 20_000,
            require_nonempty_predicates: true,
            allow_schema_bindings: true,
            prob: ProbabilityConfig::default(),
            prior: TemplatePrior::Uniform,
            strategy: GenerationStrategy::default(),
        }
    }
}

/// Counters describing one generation run, for benches and regression
/// assertions (the exhaustive pipeline materializes the whole candidate
/// space; best-first should materialize barely more than `k`).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenerationStats {
    /// Complete interpretations actually constructed (grouped, hashed).
    pub materialized: usize,
    /// Search states expanded (popped with unassigned occurrences left).
    pub expanded: usize,
    /// Search states pushed onto the frontier.
    pub pushed: usize,
    /// Children cut by the k-th-best bound before being pushed.
    pub pruned: usize,
    /// Non-emptiness probes issued against the index.
    pub nonempty_probes: usize,
    /// Probes answered by the memo cache.
    pub nonempty_cache_hits: usize,
    /// Probes answered by the process-wide shared cache (another query's
    /// work, possibly on another thread).
    pub nonempty_shared_hits: usize,
    /// Interpretations returned.
    pub emitted: usize,
}

/// An interpretation with its score under the probability model.
#[derive(Debug, Clone)]
pub struct ScoredInterpretation {
    pub interpretation: QueryInterpretation,
    /// `ln P(Q|K)` up to the per-query constant.
    pub log_score: f64,
    /// Probability normalized over the generated candidate set.
    pub probability: f64,
}

/// The generator's memoized non-emptiness probes, keyed by keyword
/// occurrence bitmask and attribute, extracted so it can persist across
/// repeated `top_k` calls for the *same* keyword query (occurrence masks are
/// positional — the cache remembers its term sequence and self-clears when
/// handed a different query, so stale verdicts can never leak).
/// [`Interpreter::answers_top_k`] threads one cache through its generation
/// waves and seeds it from the executor's materialized predicate row sets.
///
/// A cache can additionally be backed by a [`SharedNonemptyCache`], whose
/// verdicts are keyed by the *sorted keyword bag* instead of the positional
/// mask and therefore survive across queries (and threads): local misses
/// consult the shared map before probing the index, and fresh verdicts are
/// published back.
#[derive(Debug, Default)]
pub struct NonemptyCache {
    map: HashMap<(u64, AttrRef), bool>,
    terms: Vec<String>,
    shared: Option<Arc<SharedNonemptyCache>>,
}

impl NonemptyCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A per-query cache whose misses fall through to `shared`.
    pub fn with_shared(shared: Arc<SharedNonemptyCache>) -> Self {
        NonemptyCache {
            shared: Some(shared),
            ..Default::default()
        }
    }

    /// Number of memoized probes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Process-wide non-emptiness verdicts shared by every worker of a
/// [`crate::SearchService`]: a lock-striped map of `(sorted keyword bag,
/// attribute) → bool`. Verdicts are pure facts about the indexed database,
/// so concurrent readers never observe anything stale; striping keeps
/// writer contention away from the read-mostly fast path. Valid only for
/// the index it was populated against.
#[derive(Debug)]
pub struct SharedNonemptyCache {
    shards: Vec<BagShard>,
    hits: AtomicUsize,
}

/// A shared verdict's identity: sorted keyword bag + attribute.
type BagKey = (Vec<String>, AttrRef);
/// One lock stripe of the shared verdict map.
type BagShard = RwLock<HashMap<BagKey, bool>>;

/// Per-shard admission cap, mirroring the bounded shared tiers of
/// `exec.rs`: a full shard stops admitting (existing verdicts keep serving
/// hits; fresh probes just hit the index) so a long-lived service cannot
/// grow without bound.
const VERDICT_SHARD_CAP: usize = 65_536;

impl Default for SharedNonemptyCache {
    fn default() -> Self {
        SharedNonemptyCache {
            shards: (0..crate::exec::STRIPES)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicUsize::new(0),
        }
    }
}

impl SharedNonemptyCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Verdicts currently shared.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cross-query hits served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(AtomicOrdering::Relaxed)
    }

    /// The shared verdict for a *sorted* keyword bag, if any.
    fn get(&self, key: &BagKey) -> Option<bool> {
        let hit = self.shards[crate::exec::stripe_of(key)]
            .read()
            .unwrap()
            .get(key)
            .copied();
        if hit.is_some() {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
        }
        hit
    }

    fn insert(&self, key: BagKey, verdict: bool) {
        let mut shard = self.shards[crate::exec::stripe_of(&key)].write().unwrap();
        if shard.len() < VERDICT_SHARD_CAP {
            shard.entry(key).or_insert(verdict);
        }
    }
}

/// One ranked end-to-end answer: a joining tuple tree of the interpretation
/// it came from, ordered best-interpretation-first.
#[derive(Debug, Clone)]
pub struct RankedAnswer {
    /// The interpretation this answer instantiates.
    pub interpretation: QueryInterpretation,
    /// The interpretation's `ln P(Q|K)` (answers inherit their
    /// interpretation's score; JTTs of one interpretation tie).
    pub log_score: f64,
    /// One row id per template node.
    pub jtt: JoinedRow,
    /// The answer's identifying tuples: `ResultKey`s of the value-bound
    /// nodes, sorted and deduplicated.
    pub keys: Vec<ResultKey>,
}

/// Counters describing one [`Interpreter::answers_top_k`] run.
#[derive(Debug, Clone, Default)]
pub struct AnswerStats {
    /// Interpretations pulled from the generator in the final wave.
    pub generated: usize,
    /// Distinct interpretations actually executed (cache misses).
    pub executed: usize,
    /// Executed interpretations with at least one JTT.
    pub nonempty: usize,
    /// Executions that errored (e.g. intermediate-blowup guard) and were
    /// skipped.
    pub exec_errors: usize,
    /// Generation waves run (k grows geometrically until enough answers).
    pub waves: usize,
    /// Answers returned.
    pub answers: usize,
    /// Predicate row sets served from the execution cache.
    pub predicate_cache_hits: usize,
    /// Whole executions served from the cache (wave replays).
    pub result_cache_hits: usize,
    /// Generator non-emptiness entries seeded from executor predicates.
    pub nonempty_seeded: usize,
    /// Final wave's generation counters.
    pub gen: GenerationStats,
    /// Executor counters aggregated over all fresh executions.
    pub exec: ExecStats,
}

/// One candidate target for a single keyword, before template localization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TermCandidate {
    Value(AttrRef),
    TableName(keybridge_relstore::TableId),
    AttrName(AttrRef),
}

/// The interpretation generator. Generic over the [`TermIndex`] the
/// generation side reads (defaulting to the single-store
/// [`InvertedIndex`]), so a sharded coordinator can run the identical
/// best-first search over a merged multi-shard view; the execution-side
/// methods (`answers_top_k*`) exist only for the concrete inverted index,
/// which is what the executor's candidate harvest needs.
pub struct Interpreter<'a, I = InvertedIndex> {
    db: &'a Database,
    index: &'a I,
    catalog: &'a TemplateCatalog,
    config: InterpreterConfig,
}

impl<'a, I: TermIndex> Interpreter<'a, I> {
    pub fn new(
        db: &'a Database,
        index: &'a I,
        catalog: &'a TemplateCatalog,
        config: InterpreterConfig,
    ) -> Self {
        Interpreter {
            db,
            index,
            catalog,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InterpreterConfig {
        &self.config
    }

    /// The template catalog in use (borrowed for the catalog's own
    /// lifetime, so results can outlive the interpreter).
    pub fn catalog(&self) -> &'a TemplateCatalog {
        self.catalog
    }

    /// The database being interpreted over.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The term index in use.
    pub fn index(&self) -> &'a I {
        self.index
    }

    /// Candidate interpretations of each distinct term, schema-level.
    fn term_candidates(&self, query: &KeywordQuery) -> HashMap<String, Vec<TermCandidate>> {
        let mut out = HashMap::new();
        for term in query.distinct_terms() {
            let mut cands = Vec::new();
            for attr in self.index.attrs_containing(term) {
                cands.push(TermCandidate::Value(*attr));
            }
            if self.config.allow_schema_bindings {
                for m in self.index.schema_matches(term) {
                    match m {
                        SchemaTarget::Table(t) => cands.push(TermCandidate::TableName(*t)),
                        SchemaTarget::Attribute(a) => cands.push(TermCandidate::AttrName(*a)),
                    }
                }
            }
            // Deterministic order.
            cands.sort_by_key(|c| match c {
                TermCandidate::Value(a) => (0u8, a.table.0, a.attr.0),
                TermCandidate::AttrName(a) => (1, a.table.0, a.attr.0),
                TermCandidate::TableName(t) => (2, t.0, 0),
            });
            cands.dedup();
            out.insert(term.to_owned(), cands);
        }
        out
    }

    /// Enumerate complete, minimal interpretations of `query` (Def. 3.5.4),
    /// capped at `max_interpretations`.
    pub fn enumerate_interpretations(&self, query: &KeywordQuery) -> Vec<QueryInterpretation> {
        if query.is_empty() {
            return Vec::new();
        }
        let candidates = self.term_candidates(query);
        let terms = query.terms();
        let mut results: HashSet<QueryInterpretation> = HashSet::new();

        'template: for tpl in self.catalog.iter() {
            // Localize candidates to template nodes.
            let mut local: Vec<Vec<BindingTarget>> = Vec::with_capacity(terms.len());
            for term in terms {
                let targets = localize_candidates(&candidates[term.as_str()], tpl);
                if targets.is_empty() {
                    continue 'template; // term uninterpretable here
                }
                local.push(targets);
            }

            // DFS over per-term targets.
            let mut assignment: Vec<BindingTarget> = Vec::with_capacity(terms.len());
            self.dfs(tpl, terms, &local, &mut assignment, &mut results);
            if results.len() >= self.config.max_interpretations {
                break;
            }
        }

        let mut v: Vec<QueryInterpretation> = results.into_iter().collect();
        // Deterministic output order (callers re-rank anyway).
        v.sort_by(|a, b| {
            a.template
                .cmp(&b.template)
                .then_with(|| a.bindings.cmp(&b.bindings))
        });
        v.truncate(self.config.max_interpretations);
        v
    }

    fn dfs(
        &self,
        tpl: &crate::template::QueryTemplate,
        terms: &[String],
        local: &[Vec<BindingTarget>],
        assignment: &mut Vec<BindingTarget>,
        results: &mut HashSet<QueryInterpretation>,
    ) {
        if results.len() >= self.config.max_interpretations {
            return;
        }
        let i = assignment.len();
        if i == terms.len() {
            // Group terms by target into bindings.
            let mut groups: HashMap<BindingTarget, Vec<String>> = HashMap::new();
            for (t, target) in terms.iter().zip(assignment.iter()) {
                groups.entry(*target).or_default().push(t.clone());
            }
            let bindings: Vec<KeywordBinding> = groups
                .into_iter()
                .map(|(target, keywords)| KeywordBinding { keywords, target })
                .collect();
            let interp = QueryInterpretation::new(tpl.id, bindings);
            if !interp.is_minimal(self.catalog) {
                return;
            }
            if self.config.require_nonempty_predicates && !self.predicates_nonempty(tpl, &interp) {
                return;
            }
            results.insert(interp);
            return;
        }
        for target in &local[i] {
            assignment.push(*target);
            self.dfs(tpl, terms, local, assignment, results);
            assignment.pop();
            if results.len() >= self.config.max_interpretations {
                return;
            }
        }
    }

    /// Necessary non-emptiness condition: each value-bag predicate matches
    /// at least one row of its attribute.
    fn predicates_nonempty(
        &self,
        tpl: &crate::template::QueryTemplate,
        interp: &QueryInterpretation,
    ) -> bool {
        for b in &interp.bindings {
            if let BindingTarget::Value { node, attr } = b.target {
                let aref = AttrRef {
                    table: tpl.tree.nodes[node],
                    attr,
                };
                if !self.index.has_row_with_all(&b.keywords, aref) {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerate, score, normalize, and sort interpretations, best first.
    /// Ties break on canonical interpretation order for determinism.
    pub fn ranked_interpretations(&self, query: &KeywordQuery) -> Vec<ScoredInterpretation> {
        let interps = self.enumerate_interpretations(query);
        self.rank(query, interps)
    }

    /// Like [`Self::ranked_interpretations`], but the candidate space also
    /// contains *partial* interpretations — interpretations of every
    /// non-empty keyword subset, charged `P_u` per unmapped keyword
    /// (Eq. 3.6 / §4.4.2). This is the DivQ candidate pool: partial
    /// interpretations interleave with complete ones and their results
    /// overlap, which is exactly the redundancy diversification removes
    /// (Table 4.1's "A director CHRISTOPHER GUEST" at rank 2).
    ///
    /// Queries longer than 12 keywords fall back to complete-only ranking
    /// (the subset lattice would explode).
    pub fn ranked_with_partials(&self, query: &KeywordQuery) -> Vec<ScoredInterpretation> {
        let n = query.len();
        if n == 0 || n > 12 {
            return self.ranked_interpretations(query);
        }
        let terms = query.terms();
        let mut all: HashSet<QueryInterpretation> = HashSet::new();
        for mask in 1u32..(1u32 << n) {
            let subset: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| terms[i].clone())
                .collect();
            let sub = KeywordQuery::from_terms(subset);
            all.extend(self.enumerate_interpretations(&sub));
            if all.len() >= self.config.max_interpretations {
                break;
            }
        }
        let mut v: Vec<QueryInterpretation> = all.into_iter().collect();
        v.sort_by(|a, b| {
            a.template
                .cmp(&b.template)
                .then_with(|| a.bindings.cmp(&b.bindings))
        });
        v.truncate(self.config.max_interpretations);
        self.rank(query, v)
    }

    /// Score and sort a pre-enumerated interpretation list.
    pub fn rank(
        &self,
        query: &KeywordQuery,
        interps: Vec<QueryInterpretation>,
    ) -> Vec<ScoredInterpretation> {
        let model = ProbabilityModel::new(
            self.db,
            self.index,
            self.catalog,
            self.config.prior.clone(),
            self.config.prob,
        );
        let logs: Vec<f64> = interps
            .iter()
            .map(|i| model.log_score(i, query.len()))
            .collect();
        let probs = ProbabilityModel::normalize(&logs);
        let mut scored: Vec<ScoredInterpretation> = interps
            .into_iter()
            .zip(logs)
            .zip(probs)
            .map(
                |((interpretation, log_score), probability)| ScoredInterpretation {
                    interpretation,
                    log_score,
                    probability,
                },
            )
            .collect();
        scored.sort_by(|a, b| {
            b.log_score
                .partial_cmp(&a.log_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.interpretation.template.cmp(&b.interpretation.template))
                .then_with(|| a.interpretation.bindings.cmp(&b.interpretation.bindings))
        });
        scored
    }

    // -----------------------------------------------------------------
    // Score-guided top-k generation.
    // -----------------------------------------------------------------

    /// The top `k` interpretations of `query` — complete *and* partial, the
    /// DivQ candidate pool — identical in content, score, and order to the
    /// first `k` of [`Self::ranked_with_partials`], but produced by
    /// best-first search over partial keyword assignments instead of
    /// enumerate-all-then-sort. Probabilities are normalized over the
    /// returned list (the exhaustive paths normalize over the whole
    /// candidate space, which `top_k` never materializes).
    ///
    /// Unlike `ranked_with_partials`, there is no query-length ceiling: the
    /// partials lattice is folded into the search as an extra "unmapped
    /// (charged `P_u`)" branch per keyword, not a `2^n` subset sweep.
    pub fn top_k(&self, query: &KeywordQuery, k: usize) -> Vec<ScoredInterpretation> {
        self.top_k_with_stats(query, k, true).0
    }

    /// The top `k` *complete* interpretations — the first `k` of
    /// [`Self::ranked_interpretations`], best-first.
    pub fn top_k_complete(&self, query: &KeywordQuery, k: usize) -> Vec<ScoredInterpretation> {
        self.top_k_with_stats(query, k, false).0
    }

    /// [`Self::top_k`] / [`Self::top_k_complete`] with search counters.
    /// Obeys `config.strategy`: under
    /// [`GenerationStrategy::Exhaustive`] the original pipeline runs and is
    /// truncated, serving as the correctness oracle for the best-first path.
    pub fn top_k_with_stats(
        &self,
        query: &KeywordQuery,
        k: usize,
        include_partials: bool,
    ) -> (Vec<ScoredInterpretation>, GenerationStats) {
        if k == 0 || query.is_empty() {
            return (Vec::new(), GenerationStats::default());
        }
        match self.config.strategy {
            GenerationStrategy::Exhaustive => {
                let ranked = if include_partials {
                    self.ranked_with_partials(query)
                } else {
                    self.ranked_interpretations(query)
                };
                let stats = GenerationStats {
                    materialized: ranked.len(),
                    emitted: ranked.len().min(k),
                    ..Default::default()
                };
                (Self::renormalized_prefix(ranked, k), stats)
            }
            GenerationStrategy::BestFirst => {
                self.best_first_top_k(query, k, include_partials, None)
            }
        }
    }

    /// Like [`Self::top_k_with_stats`], but the non-emptiness memo persists
    /// in `cache` across calls — the repeated-`top_k`-with-growing-`k`
    /// pattern of [`Self::answers_top_k`]. Occurrence masks are positional,
    /// so a cache handed a different keyword sequence resets itself first.
    /// Ignored under the exhaustive strategy.
    pub fn top_k_with_cache(
        &self,
        query: &KeywordQuery,
        k: usize,
        include_partials: bool,
        cache: &mut NonemptyCache,
    ) -> (Vec<ScoredInterpretation>, GenerationStats) {
        if k == 0 || query.is_empty() {
            return (Vec::new(), GenerationStats::default());
        }
        if cache.terms.as_slice() != query.terms() {
            cache.map.clear();
            cache.terms = query.terms().to_vec();
        }
        match self.config.strategy {
            GenerationStrategy::Exhaustive => self.top_k_with_stats(query, k, include_partials),
            GenerationStrategy::BestFirst => {
                self.best_first_top_k(query, k, include_partials, Some(cache))
            }
        }
    }

    /// Truncate a ranked list to `k` and renormalize probabilities over the
    /// survivors, so both strategies report the same distribution shape.
    fn renormalized_prefix(
        mut ranked: Vec<ScoredInterpretation>,
        k: usize,
    ) -> Vec<ScoredInterpretation> {
        ranked.truncate(k);
        let logs: Vec<f64> = ranked.iter().map(|s| s.log_score).collect();
        let probs = ProbabilityModel::normalize(&logs);
        for (s, p) in ranked.iter_mut().zip(probs) {
            s.probability = p;
        }
        ranked
    }

    fn best_first_top_k(
        &self,
        query: &KeywordQuery,
        k: usize,
        include_partials: bool,
        cache: Option<&mut NonemptyCache>,
    ) -> (Vec<ScoredInterpretation>, GenerationStats) {
        let terms = query.terms();
        let n = terms.len();
        if n > 63 {
            // Occurrence bitmasks are u64; queries this long are beyond any
            // workload in the paper. Fall back to the exhaustive pipeline.
            let ranked = self.ranked_interpretations(query);
            let stats = GenerationStats {
                materialized: ranked.len(),
                emitted: ranked.len().min(k),
                ..Default::default()
            };
            return (Self::renormalized_prefix(ranked, k), stats);
        }
        let candidates = self.term_candidates(query);
        // Per-occurrence candidate views for the incremental scorer.
        let mut value_attrs: Vec<Vec<AttrRef>> = Vec::with_capacity(n);
        let mut name_tables: Vec<Vec<TableId>> = Vec::with_capacity(n);
        for t in terms {
            let cands = &candidates[t.as_str()];
            value_attrs.push(
                cands
                    .iter()
                    .filter_map(|c| match c {
                        TermCandidate::Value(a) => Some(*a),
                        _ => None,
                    })
                    .collect(),
            );
            let mut tabs: Vec<TableId> = cands
                .iter()
                .filter_map(|c| match c {
                    TermCandidate::TableName(t) => Some(*t),
                    TermCandidate::AttrName(a) => Some(a.table),
                    TermCandidate::Value(_) => None,
                })
                .collect();
            tabs.sort();
            tabs.dedup();
            name_tables.push(tabs);
        }
        let model = ProbabilityModel::new(
            self.db,
            self.index,
            self.catalog,
            self.config.prior.clone(),
            self.config.prob,
        );
        let scorer = model.incremental(terms, &value_attrs, &name_tables, include_partials);

        let mut cache = cache;
        let shared = cache.as_deref().and_then(|c| c.shared.clone());
        let nonempty = cache
            .as_deref_mut()
            .map(|c| std::mem::take(&mut c.map))
            .unwrap_or_default();
        let mut search = BestFirstSearch {
            interpreter: self,
            model: &model,
            scorer: &scorer,
            terms,
            candidates: &candidates,
            k,
            heap: BinaryHeap::new(),
            tpls: HashMap::new(),
            emitted: HashSet::new(),
            buffer: Vec::new(),
            top_scores: BinaryHeap::new(),
            nonempty,
            shared,
            stats: GenerationStats::default(),
        };
        search.seed_roots();
        search.run();
        if let Some(c) = cache {
            c.map = std::mem::take(&mut search.nonempty);
        }
        search.finish()
    }
}

// ---------------------------------------------------------------------
// End-to-end streaming answers — execution needs the concrete inverted
// index (candidate row sets), so these live on the default instantiation.
// ---------------------------------------------------------------------

impl<'a> Interpreter<'a> {
    /// The top `k` *answers* of `query`: joining tuple trees, ordered by
    /// their interpretation's rank (the §2.2.6 results the user actually
    /// wants, not query forms). Generation and execution interleave:
    /// interpretations are pulled best-first in geometrically growing waves,
    /// executed lazily with `limit` set to the answers still missing (the
    /// batched executor then streams instead of materializing full joins),
    /// and empty interpretations are skipped — replays across waves are
    /// served from the execution cache.
    pub fn answers_top_k(&self, query: &KeywordQuery, k: usize) -> Vec<RankedAnswer> {
        self.answers_top_k_with_opts(query, k, ExecOptions::default())
            .0
    }

    /// [`Self::answers_top_k`] with counters.
    pub fn answers_top_k_with_stats(
        &self,
        query: &KeywordQuery,
        k: usize,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        self.answers_top_k_with_opts(query, k, ExecOptions::default())
    }

    /// [`Self::answers_top_k`] under explicit base execution options —
    /// `strategy` and `max_intermediate` are honored, `limit` and
    /// `count_only` are managed by the streaming loop.
    pub fn answers_top_k_with_opts(
        &self,
        query: &KeywordQuery,
        k: usize,
        base: ExecOptions,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        let mut exec_cache = ExecCache::new();
        let mut gen_cache = NonemptyCache::new();
        self.answers_top_k_with_caches(query, k, base, &mut gen_cache, &mut exec_cache)
    }

    /// [`Self::answers_top_k_with_opts`] with *explicit cache handles* — the
    /// seam the concurrent [`crate::SearchService`] drives. The caller owns
    /// both per-query caches (usually constructed with
    /// [`NonemptyCache::with_shared`] / [`ExecCache::with_shared`] so misses
    /// fall through to the process-wide maps); all the interior state that
    /// used to be created ad hoc inside this method now lives in them.
    /// Cache-hit counters in the returned stats are cumulative over the
    /// handed-in caches' lifetimes.
    ///
    /// This is the plain top-k mode of the [`crate::QueryPipeline`]; the
    /// diversified and session-window modes compose the same stages
    /// differently.
    pub fn answers_top_k_with_caches(
        &self,
        query: &KeywordQuery,
        k: usize,
        base: ExecOptions,
        gen_cache: &mut NonemptyCache,
        exec_cache: &mut ExecCache,
    ) -> (Vec<RankedAnswer>, AnswerStats) {
        crate::pipeline::QueryPipeline::new(self, base, gen_cache, exec_cache).answers(query, k)
    }

    /// Turn up to `remaining` JTTs of one executed interpretation into
    /// [`RankedAnswer`]s.
    pub(crate) fn collect_answers(
        &self,
        s: &ScoredInterpretation,
        res: &ExecutedResult,
        remaining: usize,
        answers: &mut Vec<RankedAnswer>,
    ) {
        let tpl = self.catalog.get(s.interpretation.template);
        let bound = bound_nodes(&s.interpretation, tpl.tree.nodes.len());
        for jtt in res.jtts.iter().take(remaining) {
            let mut keys: Vec<ResultKey> = jtt
                .iter()
                .enumerate()
                .filter(|(node, _)| bound[*node])
                .map(|(node, row)| {
                    let table = tpl.tree.nodes[node];
                    ResultKey {
                        table,
                        pk: self.db.pk_value(table, *row),
                    }
                })
                .collect();
            keys.sort();
            keys.dedup();
            answers.push(RankedAnswer {
                interpretation: s.interpretation.clone(),
                log_score: s.log_score,
                jtt: jtt.clone(),
                keys,
            });
        }
    }
    /// Seed the generator's mask-keyed non-emptiness cache from the
    /// predicate row sets the executor materialized for `interp`. Each
    /// keyword bag maps back to a canonical occurrence mask (first unused
    /// occurrence per term), which covers the common no-duplicate case
    /// exactly.
    pub(crate) fn seed_nonempty_from_execution(
        &self,
        terms: &[String],
        interp: &QueryInterpretation,
        exec_cache: &ExecCache,
        gen_cache: &mut NonemptyCache,
    ) -> usize {
        if terms.len() > 63 {
            return 0; // occurrence masks are u64; long queries skip seeding
        }
        let tpl = self.catalog.get(interp.template);
        let mut seeded = 0;
        'binding: for b in &interp.bindings {
            let BindingTarget::Value { node, attr } = b.target else {
                continue;
            };
            let mut mask = 0u64;
            for kw in &b.keywords {
                let Some(pos) = (0..terms.len()).find(|&i| terms[i] == *kw && mask & (1 << i) == 0)
                else {
                    continue 'binding;
                };
                mask |= 1 << pos;
            }
            let aref = AttrRef {
                table: tpl.tree.nodes[node],
                attr,
            };
            let Some(nonempty) = exec_cache.predicate_nonempty(&b.keywords, aref) else {
                continue;
            };
            if let std::collections::hash_map::Entry::Vacant(e) = gen_cache.map.entry((mask, aref))
            {
                e.insert(nonempty);
                seeded += 1;
            }
            if let Some(shared) = &gen_cache.shared {
                let mut bag = b.keywords.clone();
                bag.sort();
                shared.insert((bag, aref), nonempty);
            }
        }
        seeded
    }
}

/// Localize schema-level term candidates to the node occurrences of one
/// template — the single definition of binding semantics, shared by the
/// exhaustive enumerator and the best-first search so the two strategies
/// cannot drift apart.
fn localize_candidates(
    candidates: &[TermCandidate],
    tpl: &crate::template::QueryTemplate,
) -> Vec<BindingTarget> {
    let mut targets = Vec::new();
    for cand in candidates {
        match cand {
            TermCandidate::Value(a) => {
                for &node in tpl.nodes_of_table(a.table) {
                    targets.push(BindingTarget::Value { node, attr: a.attr });
                }
            }
            TermCandidate::TableName(t) => {
                for &node in tpl.nodes_of_table(*t) {
                    targets.push(BindingTarget::TableName { node });
                }
            }
            TermCandidate::AttrName(a) => {
                for &node in tpl.nodes_of_table(a.table) {
                    targets.push(BindingTarget::AttrName { node, attr: a.attr });
                }
            }
        }
    }
    targets
}

/// Float-tolerance margin absorbing associativity drift between the
/// incrementally maintained prefix score and the freshly computed
/// `log_score` of an emitted interpretation.
const SCORE_EPS: f64 = 1e-9;

/// A frontier state: template, the targets assigned to the first
/// `assign.len()` keyword occurrences (`UNMAPPED` or an index into the
/// template's per-occurrence target list), the exact prefix log-score of
/// that assignment, and the admissible upper bound `ub` on any completion.
#[derive(Debug, Clone)]
struct SearchNode {
    ub: f64,
    prefix: f64,
    tpl: crate::template::TemplateId,
    assign: Vec<i32>,
}

const UNMAPPED: i32 = -1;

impl PartialEq for SearchNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SearchNode {}
impl PartialOrd for SearchNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SearchNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on the bound; ties break deterministically, preferring
        // deeper states (drives completions out early) then canonical ids.
        self.ub
            .total_cmp(&other.ub)
            .then_with(|| self.assign.len().cmp(&other.assign.len()))
            .then_with(|| other.tpl.cmp(&self.tpl))
            .then_with(|| other.assign.cmp(&self.assign))
    }
}

/// Localized search data of one template: per-occurrence binding targets
/// and suffix bound sums.
/// One child of a frontier expansion: the target index assigned to the next
/// occurrence (`UNMAPPED` for the partials branch), its score delta, and the
/// value-group identity to non-emptiness-check, if any.
type ChildDelta = (i32, f64, Option<(u64, AttrRef)>);

struct TplData {
    targets: Vec<Vec<BindingTarget>>,
    suffix: Vec<f64>,
}

/// `f64` with total order, for the k-th-best min-heap.
#[derive(PartialEq)]
struct Score(f64);
impl Eq for Score {}
impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct BestFirstSearch<'s, 'a, I> {
    interpreter: &'s Interpreter<'a, I>,
    model: &'s ProbabilityModel<'a, I>,
    scorer: &'s IncrementalScorer<'a, 's, I>,
    terms: &'s [String],
    candidates: &'s HashMap<String, Vec<TermCandidate>>,
    k: usize,
    heap: BinaryHeap<SearchNode>,
    tpls: HashMap<crate::template::TemplateId, TplData>,
    emitted: HashSet<QueryInterpretation>,
    buffer: Vec<(QueryInterpretation, f64)>,
    /// Min-heap of the k best exact scores seen so far.
    top_scores: BinaryHeap<std::cmp::Reverse<Score>>,
    /// Memoized non-emptiness probes of a keyword bag against an
    /// attribute. The bag is encoded as its occurrence bitmask (fixed
    /// per query), so cache hits are allocation-free; duplicate keywords
    /// at different positions probe the index once each, which is the
    /// only sharing the mask encoding gives up.
    nonempty: HashMap<(u64, AttrRef), bool>,
    /// Cross-query verdicts (bag-keyed), consulted on local misses.
    shared: Option<Arc<SharedNonemptyCache>>,
    stats: GenerationStats,
}

impl<'s, 'a, I: TermIndex> BestFirstSearch<'s, 'a, I> {
    /// The k-th best exact score buffered so far (`-inf` until `k` found):
    /// the prune threshold.
    fn threshold(&self) -> f64 {
        if self.top_scores.len() >= self.k {
            self.top_scores
                .peek()
                .map(|r| r.0 .0)
                .unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Push one root state per template that can interpret the query.
    fn seed_roots(&mut self) {
        let n = self.terms.len();
        let partials = self.scorer.allows_unmapped();
        for tpl in self.interpreter.catalog.iter() {
            // More leaves than keywords can never satisfy minimality
            // (every leaf needs a binding; each keyword binds one node).
            if tpl.leaves().len() > n {
                continue;
            }
            let mut bound_sum = 0.0;
            let mut targetable = 0usize;
            for i in 0..n {
                let b = self.scorer.term_bound(tpl, i);
                bound_sum += b;
                if self.scorer.has_target_in(tpl, i) {
                    targetable += 1;
                }
            }
            // A template is viable when every occurrence has a route and at
            // least one can actually bind (all-unmapped emits nothing).
            if !bound_sum.is_finite() || targetable == 0 {
                continue;
            }
            if !partials && targetable < n {
                continue;
            }
            let prior = self.scorer.ln_prior(tpl);
            self.stats.pushed += 1;
            self.heap.push(SearchNode {
                ub: prior + bound_sum,
                prefix: prior,
                tpl: tpl.id,
                assign: Vec::new(),
            });
        }
    }

    /// Localize term candidates to `tpl`'s nodes (memoized per template).
    fn ensure_tpl_data(&mut self, id: crate::template::TemplateId) {
        if self.tpls.contains_key(&id) {
            return;
        }
        let tpl = self.interpreter.catalog.get(id);
        let targets: Vec<Vec<BindingTarget>> = self
            .terms
            .iter()
            .map(|term| localize_candidates(&self.candidates[term.as_str()], tpl))
            .collect();
        let suffix = self.scorer.suffix_bounds(tpl);
        self.tpls.insert(id, TplData { targets, suffix });
    }

    /// Resolve the value-group mask of `target` within `assign` (bits of
    /// earlier occurrences already bound to the same target).
    fn group_mask(&self, data: &TplData, assign: &[i32], target: &BindingTarget) -> u64 {
        let mut mask = 0u64;
        for (p, &t) in assign.iter().enumerate() {
            if t != UNMAPPED && &data.targets[p][t as usize] == target {
                mask |= 1 << p;
            }
        }
        mask
    }

    /// Memoized non-emptiness of a value group (keyword bag ⊂ attr).
    /// Misses consult the cross-query shared cache (bag-keyed) before
    /// probing the index; fresh verdicts are published back so every other
    /// query — on any thread — skips the probe.
    fn group_nonempty(&mut self, mask: u64, aref: AttrRef) -> bool {
        if let Some(&hit) = self.nonempty.get(&(mask, aref)) {
            self.stats.nonempty_cache_hits += 1;
            return hit;
        }
        let kws: Vec<String> = (0..self.terms.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.terms[i].clone())
            .collect();
        if let Some(shared) = &self.shared {
            let mut bag = kws.clone();
            bag.sort();
            let key = (bag, aref);
            if let Some(ok) = shared.get(&key) {
                self.stats.nonempty_shared_hits += 1;
                self.nonempty.insert((mask, aref), ok);
                return ok;
            }
            self.stats.nonempty_probes += 1;
            let ok = self.interpreter.index.has_row_with_all(&kws, aref);
            shared.insert(key, ok);
            self.nonempty.insert((mask, aref), ok);
            return ok;
        }
        self.stats.nonempty_probes += 1;
        let ok = self.interpreter.index.has_row_with_all(&kws, aref);
        self.nonempty.insert((mask, aref), ok);
        ok
    }

    /// Pop-expand until the k-th best is provably found.
    fn run(&mut self) {
        let n = self.terms.len();
        while let Some(node) = self.heap.pop() {
            if self.buffer.len() >= self.k && node.ub < self.threshold() - SCORE_EPS {
                break;
            }
            if self.buffer.len() >= self.interpreter.config.max_interpretations {
                break;
            }
            let depth = node.assign.len();
            if depth == n {
                self.materialize(&node);
                continue;
            }
            self.expand(node);
        }
    }

    /// Expand one frontier state over every option for the next occurrence.
    fn expand(&mut self, node: SearchNode) {
        self.stats.expanded += 1;
        self.ensure_tpl_data(node.tpl);
        let i = node.assign.len();
        let n = self.terms.len();
        let tpl = self.interpreter.catalog.get(node.tpl);
        let require_nonempty = self.interpreter.config.require_nonempty_predicates;
        // Bitmask of template nodes already carrying a binding, for the
        // minimality-feasibility prune. Template trees are tiny in
        // practice; the rare > 64-node template skips the prune (sound —
        // it is only an optimization, minimality is checked at emission).
        let prunable = tpl.tree.nodes.len() <= 64;
        let bound_nodes: u64 = if prunable {
            let data = &self.tpls[&node.tpl];
            node.assign
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t != UNMAPPED)
                .map(|(p, &t)| 1u64 << data.targets[p][t as usize].node())
                .fold(0, |acc, b| acc | b)
        } else {
            0
        };
        // A child is viable only if the leaves still unbound after it can
        // all be covered by the occurrences that remain.
        let remaining_after = n - i - 1;
        let feasible = |nodes_mask: u64| {
            !prunable
                || tpl
                    .leaves()
                    .iter()
                    .filter(|&&l| nodes_mask & (1u64 << l) == 0)
                    .count()
                    <= remaining_after
        };
        // Collect child deltas first: the non-emptiness probes need
        // `&mut self` while the template data stays borrowed otherwise.
        let mut children: Vec<ChildDelta> = Vec::new();
        {
            let data = &self.tpls[&node.tpl];
            for (ti, target) in data.targets[i].iter().enumerate() {
                if !feasible(bound_nodes | (1u64 << (target.node() & 63))) {
                    self.stats.pruned += 1;
                    continue;
                }
                let (delta, group) = match target {
                    BindingTarget::Value { node: tnode, attr } => {
                        let aref = AttrRef {
                            table: tpl.tree.nodes[*tnode],
                            attr: *attr,
                        };
                        let old_mask = self.group_mask(data, &node.assign, target);
                        let new_mask = old_mask | (1 << i);
                        let old_ln = if old_mask == 0 {
                            0.0
                        } else {
                            self.scorer.value_group_ln(old_mask, aref)
                        };
                        (
                            self.scorer.value_group_ln(new_mask, aref) - old_ln,
                            Some((new_mask, aref)),
                        )
                    }
                    BindingTarget::TableName { .. } | BindingTarget::AttrName { .. } => {
                        (self.scorer.name_ln(), None)
                    }
                };
                children.push((ti as i32, delta, group));
            }
        }
        if self.scorer.allows_unmapped() && feasible(bound_nodes) {
            children.push((UNMAPPED, self.scorer.unmapped_ln(), None));
        }
        for (ti, delta, group) in children {
            // Prune empty value groups: every extension keeps the group,
            // so no descendant can satisfy the non-emptiness condition.
            if require_nonempty {
                if let Some((mask, aref)) = group {
                    if !self.group_nonempty(mask, aref) {
                        continue;
                    }
                }
            }
            let prefix = node.prefix + delta;
            let data = &self.tpls[&node.tpl];
            let ub = prefix + data.suffix[i + 1];
            if self.buffer.len() >= self.k && ub < self.threshold() - SCORE_EPS {
                self.stats.pruned += 1;
                continue;
            }
            let mut assign = node.assign.clone();
            assign.push(ti);
            self.stats.pushed += 1;
            self.heap.push(SearchNode {
                ub,
                prefix,
                tpl: node.tpl,
                assign,
            });
        }
    }

    /// Turn a fully assigned state into a `QueryInterpretation`, apply the
    /// emission filters (some binding, minimality, novelty), and buffer it
    /// with its exact model score.
    fn materialize(&mut self, node: &SearchNode) {
        let data = &self.tpls[&node.tpl];
        let mut groups: HashMap<BindingTarget, Vec<String>> = HashMap::new();
        for (p, &t) in node.assign.iter().enumerate() {
            if t != UNMAPPED {
                groups
                    .entry(data.targets[p][t as usize])
                    .or_default()
                    .push(self.terms[p].clone());
            }
        }
        if groups.is_empty() {
            return; // all-unmapped: not an interpretation of any subset
        }
        self.stats.materialized += 1;
        let bindings: Vec<KeywordBinding> = groups
            .into_iter()
            .map(|(target, keywords)| KeywordBinding { keywords, target })
            .collect();
        let interp = QueryInterpretation::new(node.tpl, bindings);
        if !interp.is_minimal(self.interpreter.catalog) {
            return;
        }
        if self.emitted.contains(&interp) {
            return; // duplicate via permuted identical keywords
        }
        let exact = self.model.log_score(&interp, self.terms.len());
        self.emitted.insert(interp.clone());
        self.buffer.push((interp, exact));
        self.top_scores.push(std::cmp::Reverse(Score(exact)));
        if self.top_scores.len() > self.k {
            self.top_scores.pop();
        }
    }

    /// Sort the buffered candidates with the oracle's comparator, truncate
    /// to `k`, and normalize probabilities over the survivors.
    fn finish(mut self) -> (Vec<ScoredInterpretation>, GenerationStats) {
        self.buffer.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.template.cmp(&b.0.template))
                .then_with(|| a.0.bindings.cmp(&b.0.bindings))
        });
        self.buffer.truncate(self.k);
        let logs: Vec<f64> = self.buffer.iter().map(|(_, l)| *l).collect();
        let probs = ProbabilityModel::normalize(&logs);
        let out: Vec<ScoredInterpretation> = self
            .buffer
            .into_iter()
            .zip(probs)
            .map(
                |((interpretation, log_score), probability)| ScoredInterpretation {
                    interpretation,
                    log_score,
                    probability,
                },
            )
            .collect();
        self.stats.emitted = out.len();
        (out, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::Tokenizer;

    struct Fixture {
        data: ImdbDataset,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            data,
            index,
            catalog,
        }
    }

    fn first_actor_tokens(f: &Fixture) -> (String, String) {
        let row = f
            .data
            .db
            .table(f.data.actor)
            .row(keybridge_relstore::RowId(0));
        let name = row[1].as_text().unwrap();
        let toks = Tokenizer::new().tokenize(name);
        (toks[0].clone(), toks[1].clone())
    }

    #[test]
    fn generates_complete_minimal_interpretations() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let all = interp.enumerate_interpretations(&q);
        assert!(!all.is_empty());
        for i in &all {
            assert!(i.is_complete(&q), "incomplete: {i:?}");
            assert!(i.is_minimal(&f.catalog), "non-minimal: {i:?}");
        }
    }

    #[test]
    fn ranked_prefers_cooccurring_name() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first.clone(), last.clone()]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let ranked = interp.ranked_interpretations(&q);
        assert!(!ranked.is_empty());
        // The top interpretation should put both tokens in one person-name
        // attribute (actor or director), thanks to the joint-ATF boost.
        let top = &ranked[0];
        let tpl = f.catalog.get(top.interpretation.template);
        let together = top.interpretation.bindings.iter().any(|b| {
            b.keywords.len() == 2
                && matches!(b.target, BindingTarget::Value { node, attr }
                    if f.data.db.schema().table(tpl.tree.nodes[node]).attr(attr).name == "name")
        });
        assert!(together, "top: {:?}", top.interpretation);
        // Probabilities normalized.
        let sum: f64 = ranked.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].log_score >= w[1].log_score);
        }
    }

    #[test]
    fn empty_query_yields_nothing() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        assert!(interp
            .enumerate_interpretations(&KeywordQuery::from_terms(vec![]))
            .is_empty());
    }

    #[test]
    fn unknown_keyword_yields_nothing() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q = KeywordQuery::from_terms(vec!["zzzzqqqq".into()]);
        assert!(interp.enumerate_interpretations(&q).is_empty());
    }

    #[test]
    fn schema_keyword_binds_table_name() {
        let f = fixture();
        let (_, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec!["actor".into(), last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let all = interp.enumerate_interpretations(&q);
        assert!(all.iter().any(|i| i
            .bindings
            .iter()
            .any(|b| matches!(b.target, BindingTarget::TableName { .. }))));
    }

    #[test]
    fn cap_respected() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let cfg = InterpreterConfig {
            max_interpretations: 3,
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        assert!(interp.enumerate_interpretations(&q).len() <= 3);
    }

    #[test]
    fn partials_extend_the_complete_space() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let cfg = InterpreterConfig {
            prob: keybridge_core_test_unmapped(),
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        let complete = interp.ranked_interpretations(&q);
        let with_partials = interp.ranked_with_partials(&q);
        assert!(with_partials.len() > complete.len());
        // Partials are incomplete; completes still present and minimal.
        let n_complete = with_partials
            .iter()
            .filter(|s| s.interpretation.is_complete(&q))
            .count();
        assert_eq!(n_complete, complete.len());
        // Probabilities remain a distribution.
        let sum: f64 = with_partials.iter().map(|s| s.probability).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// A `P_u` large enough for partials to be visible in rankings.
    fn keybridge_core_test_unmapped() -> crate::ProbabilityConfig {
        crate::ProbabilityConfig {
            unmapped_prob: 1e-4,
            ..Default::default()
        }
    }

    /// Compare a top-k result against the first `k` of an exhaustive
    /// ranking: same interpretations, same order, same log-scores.
    fn assert_matches_oracle(
        got: &[ScoredInterpretation],
        oracle: &[ScoredInterpretation],
        k: usize,
        context: &str,
    ) {
        let want: Vec<_> = oracle.iter().take(k).collect();
        assert_eq!(got.len(), want.len(), "{context}: length");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.interpretation, w.interpretation,
                "{context}: interpretation at rank {i}"
            );
            assert!(
                (g.log_score - w.log_score).abs() < 1e-12,
                "{context}: score at rank {i}: {} vs {}",
                g.log_score,
                w.log_score
            );
        }
    }

    #[test]
    fn top_k_matches_exhaustive_with_partials() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let cfg = InterpreterConfig {
            prob: keybridge_core_test_unmapped(),
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        let oracle = interp.ranked_with_partials(&q);
        assert!(!oracle.is_empty());
        for k in [1, 3, 10, oracle.len(), oracle.len() + 50] {
            let got = interp.top_k(&q, k);
            assert_matches_oracle(&got, &oracle, k, &format!("partials k={k}"));
        }
    }

    #[test]
    fn top_k_complete_matches_exhaustive() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let oracle = interp.ranked_interpretations(&q);
        assert!(!oracle.is_empty());
        for k in [1, 5, oracle.len()] {
            let got = interp.top_k_complete(&q, k);
            assert_matches_oracle(&got, &oracle, k, &format!("complete k={k}"));
        }
    }

    #[test]
    fn top_k_matches_oracle_with_schema_bindings_and_duplicates() {
        let f = fixture();
        let (_, last) = first_actor_tokens(&f);
        // "actor" binds as a table name; duplicated keyword exercises the
        // permutation dedup in the lattice.
        let q = KeywordQuery::from_terms(vec!["actor".into(), last.clone(), last]);
        let cfg = InterpreterConfig {
            prob: keybridge_core_test_unmapped(),
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        let oracle = interp.ranked_with_partials(&q);
        let got = interp.top_k(&q, 15);
        assert_matches_oracle(&got, &oracle, 15, "schema+dup");
    }

    #[test]
    fn top_k_materializes_far_fewer_than_exhaustive() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        // Four keywords: the partials lattice is 2^4 subsets for the
        // oracle but a single pass for the search.
        let q = KeywordQuery::from_terms(vec![first, last, "actor".into(), "movie".into()]);
        let cfg = InterpreterConfig {
            prob: keybridge_core_test_unmapped(),
            ..Default::default()
        };
        let interp = Interpreter::new(&f.data.db, &f.index, &f.catalog, cfg);
        let exhaustive = interp.ranked_with_partials(&q);
        let (got, stats) = interp.top_k_with_stats(&q, 10, true);
        assert_matches_oracle(&got, &exhaustive, 10, "4-keyword partials");
        assert!(
            stats.materialized * 5 <= exhaustive.len(),
            "best-first materialized {} of {} exhaustive candidates",
            stats.materialized,
            exhaustive.len()
        );
        assert!(stats.nonempty_cache_hits > 0, "memo cache never hit");
        assert!(stats.pruned > 0, "bound never pruned");
    }

    #[test]
    fn exhaustive_strategy_flag_is_the_oracle() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let best = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let exhaustive = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                strategy: GenerationStrategy::Exhaustive,
                ..Default::default()
            },
        );
        let a = best.top_k(&q, 7);
        let b = exhaustive.top_k(&q, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interpretation, y.interpretation);
            assert!((x.log_score - y.log_score).abs() < 1e-12);
            assert!((x.probability - y.probability).abs() < 1e-9);
        }
    }

    #[test]
    fn top_k_edge_cases() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        assert!(interp
            .top_k(&KeywordQuery::from_terms(vec![]), 5)
            .is_empty());
        let (_, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![last]);
        assert!(interp.top_k(&q, 0).is_empty());
        assert!(interp
            .top_k(&KeywordQuery::from_terms(vec!["zzzzqqqq".into()]), 5)
            .is_empty());
        // Probabilities over the returned list form a distribution.
        let got = interp.top_k(&q, 5);
        if !got.is_empty() {
            let sum: f64 = got.iter().map(|s| s.probability).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn answers_top_k_streams_ranked_results() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let k = 12;
        let (answers, stats) = interp.answers_top_k_with_stats(&q, k);
        assert!(!answers.is_empty());
        assert!(answers.len() <= k);
        assert_eq!(stats.answers, answers.len());
        // Ordered by interpretation score, best first.
        for w in answers.windows(2) {
            assert!(w[0].log_score >= w[1].log_score);
        }
        for a in &answers {
            assert!(!a.keys.is_empty(), "answer without identifying keys");
            assert!(a.keys.windows(2).all(|w| w[0] < w[1]), "keys sorted+dedup");
            let tpl = f.catalog.get(a.interpretation.template);
            assert_eq!(a.jtt.len(), tpl.tree.nodes.len());
        }
        assert!(stats.executed > 0);
        assert!(stats.nonempty > 0);
        assert!(stats.exec.probes > 0 || stats.exec.intermediate_bindings > 0);
    }

    #[test]
    fn answers_agree_across_strategies() {
        // BestFirst generation + hash-join execution must produce the same
        // answer keys and scores as exhaustive generation + naive execution.
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![first, last]);
        let fast = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let oracle = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                strategy: GenerationStrategy::Exhaustive,
                ..Default::default()
            },
        );
        let k = 10;
        let a = fast.answers_top_k(&q, k);
        let b = oracle.answers_top_k_with_opts(
            &q,
            k,
            keybridge_relstore::ExecOptions {
                strategy: keybridge_relstore::ExecStrategy::Naive,
                ..Default::default()
            },
        );
        let b = b.0;
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interpretation, y.interpretation);
            assert!((x.log_score - y.log_score).abs() < 1e-12);
            // JTT order within one interpretation is strategy-defined; keys
            // of the multiset must still agree pairwise after sorting.
        }
        let mut ka: Vec<_> = a.iter().map(|x| x.keys.clone()).collect();
        let mut kb: Vec<_> = b.iter().map(|x| x.keys.clone()).collect();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
    }

    #[test]
    fn nonempty_cache_resets_across_queries() {
        // Reusing one cache for a *different* query must not leak positional
        // verdicts: results equal a fresh top_k run.
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        let q1 = KeywordQuery::from_terms(vec![first.clone(), last.clone()]);
        let q2 = KeywordQuery::from_terms(vec![last, "actor".into()]);
        let mut cache = NonemptyCache::new();
        let _ = interp.top_k_with_cache(&q1, 5, true, &mut cache);
        let (reused, _) = interp.top_k_with_cache(&q2, 5, true, &mut cache);
        let fresh = interp.top_k(&q2, 5);
        assert_eq!(reused.len(), fresh.len());
        for (a, b) in reused.iter().zip(&fresh) {
            assert_eq!(a.interpretation, b.interpretation);
            assert!((a.log_score - b.log_score).abs() < 1e-12);
        }
    }

    #[test]
    fn answers_top_k_edge_cases() {
        let f = fixture();
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig::default(),
        );
        assert!(interp
            .answers_top_k(&KeywordQuery::from_terms(vec![]), 5)
            .is_empty());
        let (_, last) = first_actor_tokens(&f);
        let q = KeywordQuery::from_terms(vec![last]);
        assert!(interp.answers_top_k(&q, 0).is_empty());
        assert!(interp
            .answers_top_k(&KeywordQuery::from_terms(vec!["zzzzqqqq".into()]), 5)
            .is_empty());
        // Some answers delivered, never more than k.
        let answers = interp.answers_top_k(&q, 3);
        assert!(!answers.is_empty() && answers.len() <= 3);
    }

    #[test]
    fn space_grows_with_query_length() {
        let f = fixture();
        let (first, last) = first_actor_tokens(&f);
        let interp = Interpreter::new(
            &f.data.db,
            &f.index,
            &f.catalog,
            InterpreterConfig {
                require_nonempty_predicates: false,
                ..Default::default()
            },
        );
        let q1 = KeywordQuery::from_terms(vec![last.clone()]);
        let q2 = KeywordQuery::from_terms(vec![first, last]);
        let n1 = interp.enumerate_interpretations(&q1).len();
        let n2 = interp.enumerate_interpretations(&q2).len();
        assert!(n1 > 0);
        assert!(
            n2 >= n1,
            "space should not shrink with more keywords: {n1} vs {n2}"
        );
    }
}
