//! Materializing the results of a query interpretation (§2.2.6): translate
//! the interpretation's value predicates into candidate row sets via the
//! inverted index, run the template's join tree, and collect joining tuple
//! trees with their primary keys (the "information nuggets" of Chapter 4).
//!
//! [`ExecCache`] makes repeated execution cheap across a candidate list:
//! predicate row sets are computed once per distinct `(keyword bag, attr)`
//! pair — the same probe the generator's non-emptiness cache answers — and
//! whole [`ExecutedResult`]s are memoized per interpretation, which is what
//! lets [`crate::Interpreter::answers_top_k`] replay its ranked prefix in
//! successive generation waves for free.
//!
//! An `ExecCache` can additionally be backed by a process-wide
//! [`SharedExecCache`] (see [`crate::SearchService`]): predicate row sets
//! and completed results then outlive the query that computed them, so one
//! user's intersections prune every other user's executions. Whole-result
//! hits are shared (`Arc`) and cost no copying on any thread; a predicate
//! hit skips the index intersection but still copies its row list out of
//! the `Arc` when an execution consumes it (the join-tree `Candidates` API
//! takes owned vectors).

use crate::interp::BindingTarget;
use crate::template::TemplateCatalog;
use crate::QueryInterpretation;
use keybridge_index::InvertedIndex;
use keybridge_relstore::{
    execute_join_tree_with_stats_in, AttrRef, BatchArena, Candidates, Database, ExecOptions,
    ExecStats, JoinedRow, RelResult, RowId, TableId,
};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A tuple identifier: table plus primary-key value. The unit of result
/// overlap in DivQ's metrics (one `ResultKey` = one information nugget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResultKey {
    pub table: TableId,
    pub pk: i64,
}

/// Materialized results of one interpretation.
#[derive(Debug, Clone)]
pub struct ExecutedResult {
    /// Joining tuple trees: one row per template node, aligned with the
    /// template's node order.
    pub jtts: Vec<JoinedRow>,
    /// The distinct *answer* tuples: rows of the non-free nodes (those
    /// carrying a keyword predicate). These are the information nuggets /
    /// subtopics of Chapter 4 — connector rows of free tables join the
    /// answer together but do not identify it.
    pub keys: BTreeSet<ResultKey>,
    /// All distinct tuples appearing in any JTT, free nodes included.
    pub all_keys: BTreeSet<ResultKey>,
    /// Executor counters of this run (batches, probes, semi-join reduction).
    pub stats: ExecStats,
}

impl ExecutedResult {
    /// Number of JTTs.
    pub fn len(&self) -> usize {
        self.jtts.len()
    }

    /// Whether the interpretation returned no results.
    pub fn is_empty(&self) -> bool {
        self.jtts.is_empty()
    }
}

/// One memoized execution: the options it ran under plus its result.
#[derive(Debug, Clone)]
struct CachedExecution {
    limit: usize,
    max_intermediate: usize,
    count_only: bool,
    strategy: keybridge_relstore::ExecStrategy,
    result: Arc<ExecutedResult>,
}

impl CachedExecution {
    /// Whether this cached run can stand in for a request under `opts`: it
    /// ran in the same mode (strategy and `count_only` match, the cached run
    /// was at least as strict about `max_intermediate`) and its limit was
    /// not the binding constraint (it either completed below its limit or
    /// had at least the requested one).
    fn satisfies(&self, opts: &ExecOptions) -> bool {
        let complete = !self.count_only && self.result.jtts.len() < self.limit;
        self.strategy == opts.strategy
            && self.count_only == opts.count_only
            && self.max_intermediate <= opts.max_intermediate
            && (complete || self.limit >= opts.limit)
    }

    /// Whether the run finished below its limit, i.e. holds the *full*
    /// result set. Only complete runs may enter the shared cache: a prefix
    /// of a complete result is byte-identical to a fresh limited run
    /// (post-reduction truncation preserves enumeration order), so serving
    /// them cross-query cannot change what any caller observes.
    fn is_complete(&self) -> bool {
        !self.count_only && self.result.jtts.len() < self.limit
    }
}

/// Number of lock stripes in the shared caches (here and in
/// `SharedNonemptyCache`). Power of two; small enough to stay
/// cache-friendly, large enough that 8 workers rarely collide.
pub(crate) const STRIPES: usize = 16;

/// The stripe a key hashes to — the one stripe-pick routine every shared
/// cache in the crate uses.
pub(crate) fn stripe_of<K: Hash>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (STRIPES - 1)
}

/// Per-shard admission caps: the shared tiers are bounded, not evicting —
/// a full shard stops admitting new entries (existing ones keep serving
/// hits; fresh work just re-computes), so a long-lived service under a
/// diverse or adversarial query stream cannot grow without bound.
const PREDICATE_SHARD_CAP: usize = 4096;
const RESULT_SHARD_CAP: usize = 1024;

/// A predicate's cache identity: sorted keyword bag + attribute.
type PredicateKey = (Vec<String>, AttrRef);
/// One lock stripe of the shared predicate map.
type PredicateShard = RwLock<HashMap<PredicateKey, Arc<Vec<RowId>>>>;
/// One lock stripe of the shared (complete-only) result map.
type ResultShard = RwLock<HashMap<QueryInterpretation, CachedExecution>>;

/// Process-wide execution cache shared by every worker of a
/// [`crate::SearchService`]: lock-striped maps of predicate row sets and
/// *complete* memoized results, keyed exactly like [`ExecCache`]. All maps
/// are valid only for the snapshot (database + index + catalog) they were
/// populated against — the service owns both, so the pairing is structural.
#[derive(Debug)]
pub struct SharedExecCache {
    predicates: Vec<PredicateShard>,
    results: Vec<ResultShard>,
    predicate_hits: AtomicUsize,
    result_hits: AtomicUsize,
}

impl Default for SharedExecCache {
    fn default() -> Self {
        SharedExecCache {
            predicates: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            results: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            predicate_hits: AtomicUsize::new(0),
            result_hits: AtomicUsize::new(0),
        }
    }
}

impl SharedExecCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct predicate row sets currently shared.
    pub fn predicate_count(&self) -> usize {
        self.predicates
            .iter()
            .map(|s| s.read().unwrap().len())
            .sum()
    }

    /// Complete executions currently shared.
    pub fn result_count(&self) -> usize {
        self.results.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Cross-query predicate hits served so far.
    pub fn predicate_hits(&self) -> usize {
        self.predicate_hits.load(Ordering::Relaxed)
    }

    /// Cross-query result hits served so far.
    pub fn result_hits(&self) -> usize {
        self.result_hits.load(Ordering::Relaxed)
    }

    fn get_predicate(&self, key: &PredicateKey) -> Option<Arc<Vec<RowId>>> {
        let hit = self.predicates[stripe_of(key)]
            .read()
            .unwrap()
            .get(key)
            .cloned();
        if hit.is_some() {
            self.predicate_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn put_predicate(&self, key: PredicateKey, rows: Arc<Vec<RowId>>) {
        let mut shard = self.predicates[stripe_of(&key)].write().unwrap();
        if shard.len() < PREDICATE_SHARD_CAP {
            shard.entry(key).or_insert(rows);
        }
    }

    fn get_result(
        &self,
        interp: &QueryInterpretation,
        opts: &ExecOptions,
    ) -> Option<Arc<ExecutedResult>> {
        let shard = self.results[stripe_of(interp)].read().unwrap();
        let c = shard.get(interp)?;
        if c.satisfies(opts) {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            Some(Arc::clone(&c.result))
        } else {
            None
        }
    }

    fn put_result(&self, interp: &QueryInterpretation, cached: &CachedExecution) {
        if !cached.is_complete() {
            return;
        }
        let mut shard = self.results[stripe_of(interp)].write().unwrap();
        if shard.len() < RESULT_SHARD_CAP {
            shard
                .entry(interp.clone())
                .or_insert_with(|| cached.clone());
        }
    }
}

/// Shared execution state across many interpretations of one query:
/// predicate row sets keyed by `(sorted keyword bag, attribute)` and
/// memoized per-interpretation results. Optionally backed by a
/// [`SharedExecCache`], in which case local misses consult (and local
/// fills feed) the process-wide maps.
#[derive(Debug, Default)]
pub struct ExecCache {
    predicate_rows: HashMap<PredicateKey, Arc<Vec<RowId>>>,
    results: HashMap<QueryInterpretation, CachedExecution>,
    shared: Option<Arc<SharedExecCache>>,
    /// Columnar batch arena reused by every execution routed through this
    /// cache: one query's capacity growth pays for the whole candidate
    /// list's joins (the `batch_allocs` counter measures exactly this).
    pub(crate) arena: BatchArena,
    /// Predicate row sets served from the cache (local or shared).
    pub predicate_hits: usize,
    /// Whole executions served from the cache (local or shared).
    pub result_hits: usize,
}

impl ExecCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A per-query cache whose misses fall through to `shared`.
    pub fn with_shared(shared: Arc<SharedExecCache>) -> Self {
        ExecCache {
            shared: Some(shared),
            ..Default::default()
        }
    }

    /// Whether a cached predicate is known (non-)empty — the executor-side
    /// twin of the generator's non-emptiness probe. `None` when the bag was
    /// never materialized.
    pub fn predicate_nonempty(&self, keywords: &[String], attr: AttrRef) -> Option<bool> {
        let mut key = keywords.to_vec();
        key.sort();
        self.predicate_rows.get(&(key, attr)).map(|r| !r.is_empty())
    }

    /// Number of distinct predicates materialized so far.
    pub fn predicate_count(&self) -> usize {
        self.predicate_rows.len()
    }

    /// Number of memoized executions.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Rows of `attr` containing all of `keywords`, from the local cache,
    /// the shared cache, or freshly intersected (and then cached in both).
    pub(crate) fn rows(
        &mut self,
        index: &InvertedIndex,
        keywords: &[String],
        attr: AttrRef,
    ) -> Arc<Vec<RowId>> {
        let mut sorted = keywords.to_vec();
        sorted.sort();
        let key = (sorted, attr);
        if let Some(rows) = self.predicate_rows.get(&key) {
            self.predicate_hits += 1;
            return Arc::clone(rows);
        }
        if let Some(shared) = &self.shared {
            if let Some(rows) = shared.get_predicate(&key) {
                self.predicate_hits += 1;
                self.predicate_rows.insert(key, Arc::clone(&rows));
                return rows;
            }
        }
        let rows = Arc::new(index.rows_with_all(keywords, attr));
        if let Some(shared) = &self.shared {
            shared.put_predicate(key.clone(), Arc::clone(&rows));
        }
        self.predicate_rows.insert(key, Arc::clone(&rows));
        rows
    }
}

/// Intersect two sorted row lists in place (`prev ∩= other`), two-pointer
/// merge — the sorted-merge path replacing the old per-binding `HashSet`.
pub(crate) fn intersect_sorted(prev: &mut Vec<RowId>, other: &[RowId]) {
    let mut out_i = 0;
    let mut j = 0;
    for i in 0..prev.len() {
        let r = prev[i];
        while j < other.len() && other[j] < r {
            j += 1;
        }
        if j < other.len() && other[j] == r {
            prev[out_i] = r;
            out_i += 1;
            j += 1;
        }
    }
    prev.truncate(out_i);
}

/// Node indexes of `interp` carrying a value predicate (the "bound" nodes
/// whose rows identify an answer).
pub fn bound_nodes(interp: &QueryInterpretation, node_count: usize) -> Vec<bool> {
    let mut bound = vec![false; node_count];
    for b in &interp.bindings {
        if matches!(b.target, BindingTarget::Value { .. }) {
            bound[b.target.node()] = true;
        }
    }
    bound
}

/// Execute `interp` over `db`.
pub fn execute_interpretation(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    opts: ExecOptions,
) -> RelResult<ExecutedResult> {
    execute_inner(db, index, catalog, interp, opts, &mut None)
}

/// Execute `interp`, sharing predicate row sets and memoized results through
/// `cache`. A cached result is reused only when it ran in the same mode
/// (strategy and `count_only` match, the cached run was at least as strict
/// about `max_intermediate`) and its limit was not the binding constraint
/// (it either completed below its limit or had at least the requested one).
/// When `cache` is backed by a [`SharedExecCache`], local result misses fall
/// through to the *complete* runs other queries have shared, and fresh
/// complete runs are published back.
///
/// Results are shared (`Arc`) so cache hits cost no copying. Note a cache
/// hit on a *complete* cached result may carry more than `opts.limit` JTTs;
/// callers that need an exact cap must truncate themselves (the streaming
/// answer loop takes only what it still needs).
pub fn execute_interpretation_cached(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    opts: ExecOptions,
    cache: &mut ExecCache,
) -> RelResult<Arc<ExecutedResult>> {
    with_result_cache(cache, interp, opts, |c| {
        execute_inner(db, index, catalog, interp, opts, &mut Some(c))
    })
}

/// The result-memoization spine of [`execute_interpretation_cached`] with the
/// actual execution abstracted out: check the local then shared caches under
/// the `satisfies` rule, otherwise run `compute` and publish its (complete)
/// result to both tiers. The sharded coordinator routes its scatter-gather
/// executions through this same path so single-shard and sharded serving
/// share one caching semantics.
pub(crate) fn with_result_cache(
    cache: &mut ExecCache,
    interp: &QueryInterpretation,
    opts: ExecOptions,
    compute: impl FnOnce(&mut ExecCache) -> RelResult<ExecutedResult>,
) -> RelResult<Arc<ExecutedResult>> {
    if let Some(c) = cache.results.get(interp) {
        if c.satisfies(&opts) {
            cache.result_hits += 1;
            return Ok(Arc::clone(&c.result));
        }
    }
    if let Some(shared) = &cache.shared {
        if let Some(result) = shared.get_result(interp, &opts) {
            cache.result_hits += 1;
            // Shared entries are complete; remember locally under a limit
            // that marks them complete for any follow-up request.
            cache.results.insert(
                interp.clone(),
                CachedExecution {
                    limit: result.jtts.len() + 1,
                    max_intermediate: opts.max_intermediate,
                    count_only: opts.count_only,
                    strategy: opts.strategy,
                    result: Arc::clone(&result),
                },
            );
            return Ok(result);
        }
    }
    let result = Arc::new(compute(cache)?);
    let cached = CachedExecution {
        limit: opts.limit,
        max_intermediate: opts.max_intermediate,
        count_only: opts.count_only,
        strategy: opts.strategy,
        result: Arc::clone(&result),
    };
    if let Some(shared) = &cache.shared {
        shared.put_result(interp, &cached);
    }
    cache.results.insert(interp.clone(), cached);
    Ok(result)
}

/// The answer/all keys of a JTT slice under one interpretation's bound-node
/// projection — the single definition both fresh executions and prefix
/// truncations use, so the two can never drift apart.
fn collect_result_keys(
    db: &Database,
    nodes: &[TableId],
    bound: &[bool],
    jtts: &[JoinedRow],
) -> (BTreeSet<ResultKey>, BTreeSet<ResultKey>) {
    let mut keys = BTreeSet::new();
    let mut all_keys = BTreeSet::new();
    for jtt in jtts {
        for (node, row) in jtt.iter().enumerate() {
            let table = nodes[node];
            let key = ResultKey {
                table,
                pk: db.pk_value(table, *row),
            };
            all_keys.insert(key);
            if bound[node] {
                keys.insert(key);
            }
        }
    }
    (keys, all_keys)
}

/// `res` truncated to at most `cap` JTTs, keys recomputed over the prefix —
/// the *answer content* (`jtts`, `keys`, `all_keys`) is byte-identical to a
/// fresh run under `limit = cap`. A *complete* cached result may carry more
/// JTTs than a limited request asked for; since post-reduction truncation
/// preserves enumeration order, its prefix is exactly what the fresh
/// limited run would have returned, which is what lets warm shared-cache
/// hits serve limit-sensitive callers (session windows, diversification
/// pools) without breaking oracle equality. The `stats` field is the one
/// deliberate exception: it keeps the cached run's counters (`result_count`
/// etc. describe the complete execution, not a hypothetical re-run) — cache
/// hits cost no executor work, so fabricating fresh-run counters would
/// misreport what actually happened.
pub fn truncate_result(
    db: &Database,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    res: &Arc<ExecutedResult>,
    cap: usize,
) -> Arc<ExecutedResult> {
    if res.jtts.len() <= cap {
        return Arc::clone(res);
    }
    let tpl = catalog.get(interp.template);
    let bound = bound_nodes(interp, tpl.tree.nodes.len());
    let jtts: Vec<JoinedRow> = res.jtts[..cap].to_vec();
    let (keys, all_keys) = collect_result_keys(db, &tpl.tree.nodes, &bound, &jtts);
    Arc::new(ExecutedResult {
        jtts,
        keys,
        all_keys,
        stats: res.stats,
    })
}

/// The answer keys of `res`'s first `cap` JTTs — [`truncate_result`]'s
/// keys-only fast path for stages that never look at the tuple trees.
pub(crate) fn prefix_keys(
    db: &Database,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    res: &ExecutedResult,
    cap: usize,
) -> BTreeSet<ResultKey> {
    if res.jtts.len() <= cap {
        return res.keys.clone();
    }
    let tpl = catalog.get(interp.template);
    let bound = bound_nodes(interp, tpl.tree.nodes.len());
    collect_result_keys(db, &tpl.tree.nodes, &bound, &res.jtts[..cap]).0
}

fn execute_inner(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    opts: ExecOptions,
    cache: &mut Option<&mut ExecCache>,
) -> RelResult<ExecutedResult> {
    let tpl = catalog.get(interp.template);
    let n = tpl.tree.nodes.len();
    let mut per_node: Vec<Option<Vec<RowId>>> = vec![None; n];
    let mut scratch = Vec::new();

    for b in &interp.bindings {
        if let BindingTarget::Value { node, attr } = b.target {
            let aref = AttrRef {
                table: tpl.tree.nodes[node],
                attr,
            };
            let rows = match cache.as_deref_mut() {
                Some(c) => (*c.rows(index, &b.keywords, aref)).clone(),
                None => {
                    let mut out = Vec::new();
                    index.rows_with_all_into(&b.keywords, aref, &mut out, &mut scratch);
                    out
                }
            };
            per_node[node] = Some(match per_node[node].take() {
                // Two predicates on the same node: sorted-merge intersection
                // (both lists come out of the index sorted).
                Some(mut prev) => {
                    intersect_sorted(&mut prev, &rows);
                    prev
                }
                None => rows,
            });
        }
    }

    let bound = bound_nodes(interp, n);
    let candidates = Candidates { per_node };
    // Cached executions share the cache's arena across the whole candidate
    // list; uncached one-shot executions pay for a fresh one.
    let outcome = match cache.as_deref_mut() {
        Some(c) => execute_join_tree_with_stats_in(db, &tpl.tree, &candidates, opts, &mut c.arena)?,
        None => execute_join_tree_with_stats_in(
            db,
            &tpl.tree,
            &candidates,
            opts,
            &mut BatchArena::new(),
        )?,
    };
    let (keys, all_keys) = collect_result_keys(db, &tpl.tree.nodes, &bound, &outcome.rows);
    Ok(ExecutedResult {
        jtts: outcome.rows,
        keys,
        all_keys,
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KeywordBinding;
    use crate::template::TemplateCatalog;
    use keybridge_relstore::{ExecStrategy, SchemaBuilder, TableKind, Value};

    fn setup() -> (Database, InvertedIndex, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        for (id, n) in [(1, "tom hanks"), (2, "tom cruise")] {
            db.insert(actor, vec![Value::Int(id), Value::text(n)])
                .unwrap();
        }
        for (id, t) in [(10, "the terminal"), (11, "top gun")] {
            db.insert(movie, vec![Value::Int(id), Value::text(t)])
                .unwrap();
        }
        for (id, a, m) in [(100, 1, 10), (101, 2, 11)] {
            db.insert(acts, vec![Value::Int(id), Value::Int(a), Value::Int(m)])
                .unwrap();
        }
        let idx = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, idx, catalog)
    }

    fn hanks_terminal(db: &Database, catalog: &TemplateCatalog) -> QueryInterpretation {
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        let tpl = catalog.iter().find(|t| t.signature(db) == sig).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let actor_node = tpl.nodes_of_table(actor)[0];
        let movie_node = tpl.nodes_of_table(movie)[0];
        QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: actor_node,
                        attr: db.schema().resolve("actor", "name").unwrap().attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: movie_node,
                        attr: db.schema().resolve("movie", "title").unwrap().attr,
                    },
                },
            ],
        )
    }

    #[test]
    fn executes_and_collects_keys() {
        let (db, idx, catalog) = setup();
        let interp = hanks_terminal(&db, &catalog);
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 1);
        assert!(!res.is_empty());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        assert!(res.keys.contains(&ResultKey {
            table: actor,
            pk: 1
        }));
        assert!(res.keys.contains(&ResultKey {
            table: movie,
            pk: 10
        }));
        assert_eq!(res.keys.len(), 2); // the bound actor + movie tuples
        assert_eq!(res.all_keys.len(), 3); // plus the free acts tuple
        assert!(res.stats.probes > 0);
    }

    #[test]
    fn mismatched_predicates_yield_empty() {
        let (db, idx, catalog) = setup();
        // "cruise" + "terminal" never join.
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        let tpl = catalog.iter().find(|t| t.signature(&db) == sig).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["cruise".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(actor)[0],
                        attr: db.schema().resolve("actor", "name").unwrap().attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(movie)[0],
                        attr: db.schema().resolve("movie", "title").unwrap().attr,
                    },
                },
            ],
        );
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn single_table_execution() {
        let (db, idx, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![KeywordBinding {
                keywords: vec!["tom".into()],
                target: BindingTarget::Value {
                    node: 0,
                    attr: db.schema().resolve("actor", "name").unwrap().attr,
                },
            }],
        );
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 2); // both toms
        assert_eq!(res.keys.len(), 2);
    }

    #[test]
    fn same_node_predicates_intersect_by_merge() {
        let (db, idx, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let name = db.schema().resolve("actor", "name").unwrap().attr;
        // Two separate predicates on the same node: "tom" ∩ "hanks".
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["tom".into()],
                    target: BindingTarget::Value {
                        node: 0,
                        attr: name,
                    },
                },
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: 0,
                        attr: name,
                    },
                },
            ],
        );
        for strategy in [ExecStrategy::HashJoin, ExecStrategy::Naive] {
            let res = execute_interpretation(
                &db,
                &idx,
                &catalog,
                &interp,
                ExecOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(res.len(), 1, "{strategy:?}");
            assert!(res.keys.contains(&ResultKey {
                table: actor,
                pk: 1
            }));
        }
    }

    #[test]
    fn cache_reuses_predicates_and_results() {
        let (db, idx, catalog) = setup();
        let interp = hanks_terminal(&db, &catalog);
        let mut cache = ExecCache::new();
        let a = execute_interpretation_cached(
            &db,
            &idx,
            &catalog,
            &interp,
            ExecOptions::default(),
            &mut cache,
        )
        .unwrap();
        assert_eq!(cache.result_hits, 0);
        assert_eq!(cache.predicate_count(), 2);
        let b = execute_interpretation_cached(
            &db,
            &idx,
            &catalog,
            &interp,
            ExecOptions::default(),
            &mut cache,
        )
        .unwrap();
        assert_eq!(cache.result_hits, 1);
        assert_eq!(a.jtts, b.jtts);
        assert_eq!(a.keys, b.keys);
        // The predicate sets answer non-emptiness without re-probing.
        let name = db.schema().resolve("actor", "name").unwrap();
        assert_eq!(
            cache.predicate_nonempty(&["hanks".into()], name),
            Some(true)
        );
        assert_eq!(cache.predicate_nonempty(&["zzz".into()], name), None);
    }

    #[test]
    fn cached_result_not_reused_when_limit_grows() {
        let (db, idx, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![KeywordBinding {
                keywords: vec!["tom".into()],
                target: BindingTarget::Value {
                    node: 0,
                    attr: db.schema().resolve("actor", "name").unwrap().attr,
                },
            }],
        );
        let mut cache = ExecCache::new();
        let small = ExecOptions {
            limit: 1,
            ..Default::default()
        };
        let r1 =
            execute_interpretation_cached(&db, &idx, &catalog, &interp, small, &mut cache).unwrap();
        assert_eq!(r1.len(), 1); // truncated: cached entry hit its limit
        let big = ExecOptions {
            limit: 10,
            ..Default::default()
        };
        let r2 =
            execute_interpretation_cached(&db, &idx, &catalog, &interp, big, &mut cache).unwrap();
        assert_eq!(
            cache.result_hits, 0,
            "limited result must not satisfy a larger limit"
        );
        assert_eq!(r2.len(), 2);
        // And now the bigger (complete) result satisfies smaller requests.
        let r3 =
            execute_interpretation_cached(&db, &idx, &catalog, &interp, small, &mut cache).unwrap();
        assert_eq!(cache.result_hits, 1);
        assert_eq!(r3.len(), 2); // cached complete result, caller sees ≥ limit
    }

    #[test]
    fn intersect_sorted_basics() {
        let mut a = vec![RowId(1), RowId(3), RowId(5), RowId(9)];
        intersect_sorted(&mut a, &[RowId(0), RowId(3), RowId(4), RowId(9), RowId(11)]);
        assert_eq!(a, vec![RowId(3), RowId(9)]);
        let mut b: Vec<RowId> = vec![];
        intersect_sorted(&mut b, &[RowId(1)]);
        assert!(b.is_empty());
        let mut c = vec![RowId(2)];
        intersect_sorted(&mut c, &[]);
        assert!(c.is_empty());
    }
}
