//! Materializing the results of a query interpretation (§2.2.6): translate
//! the interpretation's value predicates into candidate row sets via the
//! inverted index, run the template's join tree, and collect joining tuple
//! trees with their primary keys (the "information nuggets" of Chapter 4).

use crate::interp::BindingTarget;
use crate::template::TemplateCatalog;
use crate::QueryInterpretation;
use keybridge_index::InvertedIndex;
use keybridge_relstore::{
    execute_join_tree, AttrRef, Candidates, Database, ExecOptions, JoinedRow, RelResult, RowId,
    TableId,
};
use std::collections::BTreeSet;

/// A tuple identifier: table plus primary-key value. The unit of result
/// overlap in DivQ's metrics (one `ResultKey` = one information nugget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResultKey {
    pub table: TableId,
    pub pk: i64,
}

/// Materialized results of one interpretation.
#[derive(Debug, Clone)]
pub struct ExecutedResult {
    /// Joining tuple trees: one row per template node, aligned with the
    /// template's node order.
    pub jtts: Vec<JoinedRow>,
    /// The distinct *answer* tuples: rows of the non-free nodes (those
    /// carrying a keyword predicate). These are the information nuggets /
    /// subtopics of Chapter 4 — connector rows of free tables join the
    /// answer together but do not identify it.
    pub keys: BTreeSet<ResultKey>,
    /// All distinct tuples appearing in any JTT, free nodes included.
    pub all_keys: BTreeSet<ResultKey>,
}

impl ExecutedResult {
    /// Number of JTTs.
    pub fn len(&self) -> usize {
        self.jtts.len()
    }

    /// Whether the interpretation returned no results.
    pub fn is_empty(&self) -> bool {
        self.jtts.is_empty()
    }
}

/// Execute `interp` over `db`.
pub fn execute_interpretation(
    db: &Database,
    index: &InvertedIndex,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
    opts: ExecOptions,
) -> RelResult<ExecutedResult> {
    let tpl = catalog.get(interp.template);
    let n = tpl.tree.nodes.len();
    let mut per_node: Vec<Option<Vec<RowId>>> = vec![None; n];

    for b in &interp.bindings {
        if let BindingTarget::Value { node, attr } = b.target {
            let aref = AttrRef {
                table: tpl.tree.nodes[node],
                attr,
            };
            let rows = index.rows_with_all(&b.keywords, aref);
            per_node[node] = Some(match per_node[node].take() {
                // Two predicates on the same node: intersect.
                Some(prev) => {
                    let set: std::collections::HashSet<RowId> = rows.into_iter().collect();
                    prev.into_iter().filter(|r| set.contains(r)).collect()
                }
                None => rows,
            });
        }
    }

    let mut bound = vec![false; n];
    for b in &interp.bindings {
        if matches!(b.target, BindingTarget::Value { .. }) {
            bound[b.target.node()] = true;
        }
    }

    let candidates = Candidates { per_node };
    let jtts = execute_join_tree(db, &tpl.tree, &candidates, opts)?;
    let mut keys = BTreeSet::new();
    let mut all_keys = BTreeSet::new();
    for jtt in &jtts {
        for (node, row) in jtt.iter().enumerate() {
            let table = tpl.tree.nodes[node];
            let key = ResultKey {
                table,
                pk: db.pk_value(table, *row),
            };
            all_keys.insert(key);
            if bound[node] {
                keys.insert(key);
            }
        }
    }
    Ok(ExecutedResult {
        jtts,
        keys,
        all_keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KeywordBinding;
    use crate::template::TemplateCatalog;
    use keybridge_relstore::{SchemaBuilder, TableKind, Value};

    fn setup() -> (Database, InvertedIndex, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity).pk("id").text_attr("name");
        b.table("movie", TableKind::Entity).pk("id").text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let acts = db.schema().table_id("acts").unwrap();
        for (id, n) in [(1, "tom hanks"), (2, "tom cruise")] {
            db.insert(actor, vec![Value::Int(id), Value::text(n)]).unwrap();
        }
        for (id, t) in [(10, "the terminal"), (11, "top gun")] {
            db.insert(movie, vec![Value::Int(id), Value::text(t)]).unwrap();
        }
        for (id, a, m) in [(100, 1, 10), (101, 2, 11)] {
            db.insert(acts, vec![Value::Int(id), Value::Int(a), Value::Int(m)])
                .unwrap();
        }
        let idx = InvertedIndex::build(&db);
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, idx, catalog)
    }

    fn hanks_terminal(db: &Database, catalog: &TemplateCatalog) -> QueryInterpretation {
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        let tpl = catalog.iter().find(|t| t.signature(db) == sig).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let actor_node = tpl.nodes_of_table(actor)[0];
        let movie_node = tpl.nodes_of_table(movie)[0];
        QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: actor_node,
                        attr: db.schema().resolve("actor", "name").unwrap().attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: movie_node,
                        attr: db.schema().resolve("movie", "title").unwrap().attr,
                    },
                },
            ],
        )
    }

    #[test]
    fn executes_and_collects_keys() {
        let (db, idx, catalog) = setup();
        let interp = hanks_terminal(&db, &catalog);
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 1);
        assert!(!res.is_empty());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        assert!(res.keys.contains(&ResultKey { table: actor, pk: 1 }));
        assert!(res.keys.contains(&ResultKey { table: movie, pk: 10 }));
        assert_eq!(res.keys.len(), 2); // the bound actor + movie tuples
        assert_eq!(res.all_keys.len(), 3); // plus the free acts tuple
    }

    #[test]
    fn mismatched_predicates_yield_empty() {
        let (db, idx, catalog) = setup();
        // "cruise" + "terminal" never join.
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        let tpl = catalog.iter().find(|t| t.signature(&db) == sig).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["cruise".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(actor)[0],
                        attr: db.schema().resolve("actor", "name").unwrap().attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(movie)[0],
                        attr: db.schema().resolve("movie", "title").unwrap().attr,
                    },
                },
            ],
        );
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn single_table_execution() {
        let (db, idx, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let interp = QueryInterpretation::new(
            tpl.id,
            vec![KeywordBinding {
                keywords: vec!["tom".into()],
                target: BindingTarget::Value {
                    node: 0,
                    attr: db.schema().resolve("actor", "name").unwrap().attr,
                },
            }],
        );
        let res =
            execute_interpretation(&db, &idx, &catalog, &interp, ExecOptions::default()).unwrap();
        assert_eq!(res.len(), 2); // both toms
        assert_eq!(res.keys.len(), 2);
    }
}
