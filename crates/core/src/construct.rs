//! Incremental query construction (Alg. 3.2): construction options, their
//! subsumption semantics (Defs. 3.5.7–3.5.8), and the information-gain
//! session over a materialized candidate window.
//!
//! This machinery historically lived in `keybridge-iqp`; it moved into the
//! core so the concurrent [`crate::SearchService`] can manage construction
//! sessions as a first-class request mode (each session pinned to the
//! [`crate::SnapshotEpoch`] it was opened on). `keybridge-iqp` re-exports
//! everything here and keeps the evaluation harness (simulated users,
//! construction plans, the §3.8.5 scalability simulation) on top of it.
//!
//! The session is deliberately catalog-free state: methods that need
//! template structure take the [`TemplateCatalog`] as an argument, so a
//! session can outlive any particular borrow of the snapshot that created
//! it — exactly what a service-held session registry requires.

use crate::exec::{ExecCache, ExecutedResult};
use crate::generate::{Interpreter, InterpreterConfig, NonemptyCache, ScoredInterpretation};
use crate::interp::{BindingAtom, BindingAtomKind, QueryInterpretation};
use crate::keyword::KeywordQuery;
use crate::pipeline::QueryPipeline;
use crate::template::{TemplateCatalog, TemplateId};
use keybridge_index::InvertedIndex;
use keybridge_relstore::{Database, ExecOptions, TableId};
use std::sync::Arc;

/// A query construction option (an item of Fig. 3.1's construction panel).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstructionOption {
    /// "Keyword `k` is a value of / names attribute A" — the workhorse
    /// option ("Is London a person?").
    Atom(BindingAtom),
    /// "The result involves table X" (e.g. "Are you looking for a movie?").
    UsesTable(TableId),
    /// "The query has exactly this structure" — the most specific option;
    /// corresponds to showing a full structured query in the query window.
    Template(TemplateId),
}

impl ConstructionOption {
    /// Whether `interp` subsumes this option.
    pub fn subsumed_by(&self, interp: &QueryInterpretation, catalog: &TemplateCatalog) -> bool {
        match self {
            ConstructionOption::Atom(atom) => interp.contains_atom(catalog, atom),
            ConstructionOption::UsesTable(t) => catalog.get(interp.template).tree.nodes.contains(t),
            ConstructionOption::Template(t) => interp.template == *t,
        }
    }

    /// Human-readable rendering (the text shown in the construction panel).
    pub fn describe(&self, db: &Database, catalog: &TemplateCatalog) -> String {
        match self {
            ConstructionOption::Atom(a) => {
                let table = db.schema().table(a.attr.table);
                match a.kind {
                    BindingAtomKind::Value => format!(
                        "\"{}\" is a value of {}.{}",
                        a.keyword,
                        table.name,
                        table.attr(a.attr.attr).name
                    ),
                    BindingAtomKind::TableName => {
                        format!("\"{}\" names the table {}", a.keyword, table.name)
                    }
                    BindingAtomKind::AttrName => format!(
                        "\"{}\" names the attribute {}.{}",
                        a.keyword,
                        table.name,
                        table.attr(a.attr.attr).name
                    ),
                }
            }
            ConstructionOption::UsesTable(t) => {
                format!("the result involves {}", db.schema().table(*t).name)
            }
            ConstructionOption::Template(t) => {
                let sig = catalog.get(*t).signature(db);
                format!("the query joins exactly: {}", sig.join(" ⋈ "))
            }
        }
    }

    /// All options derivable from a candidate set: every distinct binding
    /// atom, every table used by some candidate, and every candidate
    /// template. Options subsumed by *all* candidates carry no information
    /// and are omitted.
    pub fn derive(
        candidates: &[QueryInterpretation],
        catalog: &TemplateCatalog,
    ) -> Vec<ConstructionOption> {
        use std::collections::BTreeSet;
        let mut atoms: BTreeSet<BindingAtom> = BTreeSet::new();
        let mut tables: BTreeSet<TableId> = BTreeSet::new();
        let mut templates: BTreeSet<TemplateId> = BTreeSet::new();
        for c in candidates {
            for a in c.atoms(catalog) {
                atoms.insert(a);
            }
            for t in &catalog.get(c.template).tree.nodes {
                tables.insert(*t);
            }
            templates.insert(c.template);
        }
        let mut out: Vec<ConstructionOption> = atoms
            .into_iter()
            .map(ConstructionOption::Atom)
            .chain(tables.into_iter().map(ConstructionOption::UsesTable))
            .chain(templates.into_iter().map(ConstructionOption::Template))
            .collect();
        out.retain(|o| {
            let n = candidates
                .iter()
                .filter(|c| o.subsumed_by(c, catalog))
                .count();
            n > 0 && n < candidates.len()
        });
        out
    }
}

/// Session tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Stop when at most this many candidates remain ("the process of query
    /// construction stops when less than five complete query interpretations
    /// are left in the query window", §3.8.2).
    pub stop_at: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { stop_at: 5 }
    }
}

/// Shannon entropy of a normalized distribution (Eq. 3.12 shape).
fn entropy(probs: impl Iterator<Item = f64>) -> f64 {
    let mut h = 0.0;
    for p in probs {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of a weight vector after normalization; zero-sum yields 0.
fn entropy_of_weights(weights: &[f64]) -> f64 {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    entropy(weights.iter().map(|w| w / sum))
}

/// An in-progress construction session over a materialized candidate set.
///
/// Atom sets are cached per candidate so the per-step information-gain scan
/// is `O(#options · #candidates)` set lookups rather than repeated atom
/// extraction. The session holds no catalog borrow — methods that consult
/// template structure take it as an argument — so it can be stored (e.g. in
/// a [`crate::SearchService`] session registry) independently of the
/// snapshot that created it.
pub struct ConstructionSession {
    candidates: Vec<(QueryInterpretation, f64)>,
    /// Sorted atom list per candidate (parallel to `candidates`).
    atom_cache: Vec<Vec<BindingAtom>>,
    asked: Vec<ConstructionOption>,
    steps: usize,
    config: SessionConfig,
}

impl ConstructionSession {
    /// Start a session from ranked interpretations (probabilities are reused
    /// as plan weights).
    pub fn new(
        catalog: &TemplateCatalog,
        ranked: &[ScoredInterpretation],
        config: SessionConfig,
    ) -> Self {
        let candidates: Vec<(QueryInterpretation, f64)> = ranked
            .iter()
            .map(|s| (s.interpretation.clone(), s.probability.max(1e-12)))
            .collect();
        let atom_cache = candidates.iter().map(|(c, _)| c.atoms(catalog)).collect();
        ConstructionSession {
            candidates,
            atom_cache,
            asked: Vec::new(),
            steps: 0,
            config,
        }
    }

    /// Start a session directly from a keyword query: the candidate window
    /// is the interpreter's best-first `top_k_complete` — construction
    /// never needs the exhaustive space, only the window the user will
    /// actually winnow (probabilities are normalized within it).
    pub fn for_query(
        interpreter: &Interpreter<'_>,
        query: &KeywordQuery,
        window: usize,
        config: SessionConfig,
    ) -> Self {
        let ranked = interpreter.top_k_complete(query, window);
        Self::new(interpreter.catalog(), &ranked, config)
    }

    /// Remaining candidates, best first.
    pub fn remaining(&self) -> &[(QueryInterpretation, f64)] {
        &self.candidates
    }

    /// Options evaluated so far (the interaction cost).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The session's tuning knobs.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Whether the session should stop (few enough candidates, or no further
    /// discriminating option exists).
    pub fn finished(&self, catalog: &TemplateCatalog) -> bool {
        self.finished_given(self.next_option(catalog).as_ref())
    }

    /// [`Self::finished`] against an already-computed next option — the one
    /// definition of the stop rule, shared with callers (like the service's
    /// session views) that have the option in hand and must not pay a
    /// second information-gain scan.
    pub fn finished_given(&self, next_option: Option<&ConstructionOption>) -> bool {
        self.candidates.len() <= self.config.stop_at || next_option.is_none()
    }

    /// Subsumption against the cached atoms of candidate `i`.
    fn subsumes_cached(&self, catalog: &TemplateCatalog, i: usize, o: &ConstructionOption) -> bool {
        match o {
            ConstructionOption::Atom(a) => self.atom_cache[i].binary_search(a).is_ok(),
            ConstructionOption::UsesTable(t) => catalog
                .get(self.candidates[i].0.template)
                .tree
                .nodes
                .contains(t),
            ConstructionOption::Template(t) => self.candidates[i].0.template == *t,
        }
    }

    /// The next option to present: the one maximizing information gain
    /// `IG(I|O) = H(I) − [P(O)·H(I|accept) + P(¬O)·H(I|reject)]`.
    ///
    /// (Eq. 3.13 computes `H(I|O)` over the subsumed side only; we use the
    /// standard expectation over both sides, which is what "maximize the
    /// information revealed" requires and what makes the baseline degrade to
    /// binary splitting under uniform probabilities.)
    pub fn next_option(&self, catalog: &TemplateCatalog) -> Option<ConstructionOption> {
        // Derive candidate options from the cached atoms.
        use std::collections::BTreeSet;
        let mut opts: BTreeSet<ConstructionOption> = BTreeSet::new();
        for (i, (c, _)) in self.candidates.iter().enumerate() {
            for a in &self.atom_cache[i] {
                opts.insert(ConstructionOption::Atom(a.clone()));
            }
            for t in &catalog.get(c.template).tree.nodes {
                opts.insert(ConstructionOption::UsesTable(*t));
            }
            opts.insert(ConstructionOption::Template(c.template));
        }
        let h = entropy_of_weights(&self.candidates.iter().map(|(_, p)| *p).collect::<Vec<_>>());
        let total: f64 = self.candidates.iter().map(|(_, p)| *p).sum();
        let mut best: Option<(f64, ConstructionOption)> = None;
        let mut acc: Vec<f64> = Vec::with_capacity(self.candidates.len());
        let mut rej: Vec<f64> = Vec::with_capacity(self.candidates.len());
        for o in opts {
            if self.asked.contains(&o) {
                continue;
            }
            acc.clear();
            rej.clear();
            for (i, (_, p)) in self.candidates.iter().enumerate() {
                if self.subsumes_cached(catalog, i, &o) {
                    acc.push(*p);
                } else {
                    rej.push(*p);
                }
            }
            if acc.is_empty() || rej.is_empty() {
                continue; // non-discriminating
            }
            let p_acc: f64 = acc.iter().sum::<f64>() / total;
            let cond = p_acc * entropy_of_weights(&acc) + (1.0 - p_acc) * entropy_of_weights(&rej);
            let ig = h - cond;
            let better = match &best {
                None => true,
                Some((b, bo)) => ig > *b + 1e-12 || (ig > *b - 1e-12 && o < *bo),
            };
            if better {
                best = Some((ig, o));
            }
        }
        best.map(|(_, o)| o)
    }

    /// Materialize the answers of the current query window through the
    /// [`QueryPipeline`]: every remaining candidate is executed by the
    /// batched hash-join engine (at most `limit` JTTs each) over a fresh
    /// [`ExecCache`]. Returns `(candidate index, result)` pairs for the
    /// non-empty candidates, in window (probability) order — the "results,
    /// not query forms" the user is ultimately after.
    pub fn window_answers(
        &self,
        db: &Database,
        index: &InvertedIndex,
        catalog: &TemplateCatalog,
        limit: usize,
    ) -> Vec<(usize, Arc<ExecutedResult>)> {
        let mut cache = ExecCache::new();
        self.window_answers_with_cache(db, index, catalog, limit, &mut cache)
    }

    /// [`Self::window_answers`] over an explicit [`ExecCache`] — the cached
    /// executor seam. Repeated window refreshes through one cache stop
    /// recomputing predicate row sets (and replay memoized executions), and
    /// a cache built with [`ExecCache::with_shared`] falls through to a
    /// service's process-wide tier while staying byte-identical to the cold
    /// path (complete shared hits are truncated back to `limit`).
    pub fn window_answers_with_cache(
        &self,
        db: &Database,
        index: &InvertedIndex,
        catalog: &TemplateCatalog,
        limit: usize,
        exec_cache: &mut ExecCache,
    ) -> Vec<(usize, Arc<ExecutedResult>)> {
        let interpreter = Interpreter::new(db, index, catalog, InterpreterConfig::default());
        let mut gen_cache = NonemptyCache::new();
        QueryPipeline::new(
            &interpreter,
            ExecOptions::default(),
            &mut gen_cache,
            exec_cache,
        )
        .window(&self.candidates, limit)
    }

    /// Apply the user's verdict on `option`, shrinking the candidate set.
    pub fn apply(&mut self, catalog: &TemplateCatalog, option: ConstructionOption, accepted: bool) {
        self.steps += 1;
        let keep: Vec<bool> = (0..self.candidates.len())
            .map(|i| self.subsumes_cached(catalog, i, &option) == accepted)
            .collect();
        let mut it = keep.iter();
        self.candidates.retain(|_| *it.next().expect("parallel"));
        let mut it = keep.iter();
        self.atom_cache.retain(|_| *it.next().expect("parallel"));
        self.asked.push(option);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_of_weights(&[]), 0.0);
        assert_eq!(entropy_of_weights(&[1.0]), 0.0);
        assert!((entropy_of_weights(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!(entropy_of_weights(&[0.9, 0.1]) < 1.0);
    }
}
