//! Rendering query interpretations for humans (the query window of Fig. 3.1)
//! and for databases (the SQL a candidate network compiles to, §2.2.3).

use crate::interp::BindingTarget;
use crate::template::TemplateCatalog;
use crate::QueryInterpretation;
use keybridge_relstore::Database;
use std::fmt::Write as _;

/// Algebra-style one-liner, e.g.
/// `σ{hanks}⊂name(actor) ⋈ acts ⋈ σ{terminal}⊂title(movie)`.
pub fn render_natural(
    db: &Database,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
) -> String {
    let tpl = catalog.get(interp.template);
    let mut parts = Vec::with_capacity(tpl.tree.nodes.len());
    for (node, &table) in tpl.tree.nodes.iter().enumerate() {
        let tdef = db.schema().table(table);
        let mut preds = Vec::new();
        let mut named = false;
        for b in &interp.bindings {
            if b.target.node() != node {
                continue;
            }
            match b.target {
                BindingTarget::Value { attr, .. } => {
                    preds.push(format!(
                        "{{{}}}⊂{}",
                        b.keywords.join(","),
                        tdef.attr(attr).name
                    ));
                }
                BindingTarget::TableName { .. } => named = true,
                BindingTarget::AttrName { attr, .. } => {
                    preds.push(format!("≈{}", tdef.attr(attr).name));
                }
            }
        }
        let mut s = String::new();
        if preds.is_empty() {
            let _ = write!(s, "{}", tdef.name);
        } else {
            let _ = write!(s, "σ{}({})", preds.join("∩"), tdef.name);
        }
        if named {
            let _ = write!(s, "*");
        }
        parts.push(s);
    }
    parts.join(" ⋈ ")
}

/// SQL rendering: every node becomes an aliased table, edges become join
/// predicates, and value bags become one `LIKE` conjunct per keyword
/// (`SELECT *`, matching the paper's current IQP implementation, §3.5.1).
pub fn render_sql(
    db: &Database,
    catalog: &TemplateCatalog,
    interp: &QueryInterpretation,
) -> String {
    let tpl = catalog.get(interp.template);
    let alias = |i: usize| format!("t{i}");
    let mut sql = String::from("SELECT * FROM ");
    for (i, &table) in tpl.tree.nodes.iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        let _ = write!(sql, "{} {}", db.schema().table(table).name, alias(i));
    }
    let mut conds = Vec::new();
    for e in &tpl.tree.edges {
        let fk = db.schema().fk(e.fk);
        // Orient: the endpoint whose table matches fk.from holds the column.
        let (from_node, to_node) = if tpl.tree.nodes[e.a] == fk.from.table {
            (e.a, e.b)
        } else {
            (e.b, e.a)
        };
        let from_def = db.schema().table(fk.from.table);
        let to_def = db.schema().table(fk.to.table);
        conds.push(format!(
            "{}.{} = {}.{}",
            alias(from_node),
            from_def.attr(fk.from.attr).name,
            alias(to_node),
            to_def.attr(fk.to.attr).name,
        ));
    }
    for b in &interp.bindings {
        if let BindingTarget::Value { node, attr } = b.target {
            let tdef = db.schema().table(tpl.tree.nodes[node]);
            for k in &b.keywords {
                conds.push(format!(
                    "{}.{} LIKE '%{}%'",
                    alias(node),
                    tdef.attr(attr).name,
                    k.replace('\'', "''"),
                ));
            }
        }
    }
    if !conds.is_empty() {
        let _ = write!(sql, " WHERE {}", conds.join(" AND "));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KeywordBinding;
    use keybridge_relstore::{SchemaBuilder, TableKind};

    fn setup() -> (Database, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let db = Database::new(b.finish().unwrap());
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, catalog)
    }

    fn interp(db: &Database, catalog: &TemplateCatalog) -> QueryInterpretation {
        let sig = vec!["actor".to_owned(), "acts".to_owned(), "movie".to_owned()];
        let tpl = catalog.iter().find(|t| t.signature(db) == sig).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        QueryInterpretation::new(
            tpl.id,
            vec![
                KeywordBinding {
                    keywords: vec!["hanks".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(actor)[0],
                        attr: db.schema().resolve("actor", "name").unwrap().attr,
                    },
                },
                KeywordBinding {
                    keywords: vec!["terminal".into()],
                    target: BindingTarget::Value {
                        node: tpl.nodes_of_table(movie)[0],
                        attr: db.schema().resolve("movie", "title").unwrap().attr,
                    },
                },
            ],
        )
    }

    #[test]
    fn natural_rendering_mentions_all_parts() {
        let (db, catalog) = setup();
        let s = render_natural(&db, &catalog, &interp(&db, &catalog));
        assert!(s.contains("hanks"), "{s}");
        assert!(s.contains("terminal"), "{s}");
        assert!(s.contains("acts"), "{s}");
        assert!(s.contains('⋈'), "{s}");
    }

    #[test]
    fn sql_rendering_joins_and_predicates() {
        let (db, catalog) = setup();
        let sql = render_sql(&db, &catalog, &interp(&db, &catalog));
        assert!(sql.starts_with("SELECT * FROM "), "{sql}");
        assert!(sql.contains("actor_id"), "{sql}");
        assert!(sql.contains("movie_id"), "{sql}");
        assert!(sql.contains("LIKE '%hanks%'"), "{sql}");
        assert!(sql.contains("LIKE '%terminal%'"), "{sql}");
        // Two join predicates + two LIKEs.
        assert_eq!(sql.matches(" = ").count(), 2, "{sql}");
    }

    #[test]
    fn sql_escapes_quotes() {
        let (db, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let i = QueryInterpretation::new(
            tpl.id,
            vec![KeywordBinding {
                keywords: vec!["o'hara".into()],
                target: BindingTarget::Value {
                    node: 0,
                    attr: db.schema().resolve("actor", "name").unwrap().attr,
                },
            }],
        );
        let sql = render_sql(&db, &catalog, &i);
        assert!(sql.contains("o''hara"), "{sql}");
    }

    #[test]
    fn metadata_binding_rendered_with_marker() {
        let (db, catalog) = setup();
        let actor = db.schema().table_id("actor").unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![actor])
            .unwrap();
        let i = QueryInterpretation::new(
            tpl.id,
            vec![KeywordBinding {
                keywords: vec!["actor".into()],
                target: BindingTarget::TableName { node: 0 },
            }],
        );
        let s = render_natural(&db, &catalog, &i);
        assert!(s.contains("actor*"), "{s}");
    }
}
