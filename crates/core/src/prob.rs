//! The probabilistic query interpretation model (§3.6, Eqs. 3.5–3.8) with the
//! DivQ refinements (§4.4.2, Eq. 4.2).
//!
//! `P(Q|K) ∝ P(T) · Π_i P(A_i : k_i | T ∩ A_i)` where
//!
//! * `P(T)` is the template prior — uniform without a query log, maximum
//!   likelihood with additive smoothing over log usage otherwise (Eq. 3.7);
//! * value bindings are scored by attribute term frequency (Eq. 3.8), or by
//!   *joint* ATF over the keyword bag when the DivQ co-occurrence refinement
//!   is enabled (Eq. 4.2);
//! * schema-name bindings get an empirical constant (§3.6.2: "our system can
//!   use some empirical values set by domain experts");
//! * keywords left unmapped by a partial interpretation are charged the
//!   smoothing constant `P_u` (§4.4.2).
//!
//! Scores are computed in log space; the public API normalizes within a
//! candidate set, which is sound because `P(K)` is constant per query.

use crate::interp::{BindingTarget, QueryInterpretation};
use crate::template::TemplateCatalog;
use keybridge_index::{InvertedIndex, TermIndex};
use keybridge_relstore::{AttrRef, Database};
use std::collections::HashMap;

/// Floor for probabilities entering `ln` so scores stay finite.
const MIN_PROB: f64 = 1e-300;

/// Prior over query templates.
#[derive(Debug, Clone)]
pub enum TemplatePrior {
    /// All templates equally likely (no query log; the `Tequal` runs).
    Uniform,
    /// Maximum-likelihood frequencies from a query log, keyed by template
    /// signature (sorted table-name multiset), additively smoothed (Eq. 3.7;
    /// the `TLog` runs).
    Usage {
        counts: HashMap<Vec<String>, f64>,
        total: f64,
    },
}

impl TemplatePrior {
    /// Build a usage prior from `(signature, count)` records.
    pub fn from_usage(records: impl IntoIterator<Item = (Vec<String>, usize)>) -> Self {
        let mut counts = HashMap::new();
        let mut total = 0.0;
        for (sig, c) in records {
            *counts.entry(sig).or_insert(0.0) += c as f64;
            total += c as f64;
        }
        TemplatePrior::Usage { counts, total }
    }

    /// `P(T)` for a template with `signature`, among `n_templates` templates.
    pub fn prob(&self, signature: &[String], n_templates: usize) -> f64 {
        let n = n_templates.max(1) as f64;
        match self {
            TemplatePrior::Uniform => 1.0 / n,
            TemplatePrior::Usage { counts, total } => {
                // Eq. 3.7 with α = 1.
                let c = counts.get(signature).copied().unwrap_or(0.0);
                (c + 1.0) / (total + n)
            }
        }
    }
}

/// Knobs of the probability model.
#[derive(Debug, Clone, Copy)]
pub struct ProbabilityConfig {
    /// Additive smoothing for ATF (Eq. 3.8's α).
    pub alpha: f64,
    /// Use joint (co-occurrence) ATF for multi-keyword value bags (Eq. 4.2)
    /// instead of the independence product of Eq. 3.5.
    pub use_joint_atf: bool,
    /// `P_u`: probability charged per unmapped keyword in a partial
    /// interpretation; must undercut every real keyword interpretation so
    /// complete interpretations outrank partial ones (§4.4.2).
    pub unmapped_prob: f64,
    /// Probability of a keyword naming a schema element it matches.
    pub name_match_prob: f64,
    /// When `true`, all value bindings are scored 1.0 — the "base line"
    /// of §3.8.2 that assumes all interpretations equally likely.
    pub uniform_keywords: bool,
}

impl Default for ProbabilityConfig {
    fn default() -> Self {
        ProbabilityConfig {
            alpha: 1.0,
            use_joint_atf: true,
            unmapped_prob: 1e-8,
            name_match_prob: 0.5,
            uniform_keywords: false,
        }
    }
}

impl ProbabilityConfig {
    /// The §3.8.2 baseline: every interpretation equally likely.
    pub fn baseline() -> Self {
        ProbabilityConfig {
            uniform_keywords: true,
            ..Self::default()
        }
    }

    /// ATF scoring with independence (the TKDE model, Eq. 3.5).
    pub fn atf_independent() -> Self {
        ProbabilityConfig {
            use_joint_atf: false,
            ..Self::default()
        }
    }
}

/// The assembled model. Borrows the index and catalog; owns its prior.
/// Generic over the [`TermIndex`] it reads frequencies from (defaulting to
/// the single-store [`InvertedIndex`]), so a sharded coordinator can score
/// against a merged multi-shard view with the exact same arithmetic.
#[derive(Debug, Clone)]
pub struct ProbabilityModel<'a, I = InvertedIndex> {
    db: &'a Database,
    index: &'a I,
    catalog: &'a TemplateCatalog,
    prior: TemplatePrior,
    config: ProbabilityConfig,
}

impl<'a, I: TermIndex> ProbabilityModel<'a, I> {
    pub fn new(
        db: &'a Database,
        index: &'a I,
        catalog: &'a TemplateCatalog,
        prior: TemplatePrior,
        config: ProbabilityConfig,
    ) -> Self {
        ProbabilityModel {
            db,
            index,
            catalog,
            prior,
            config,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ProbabilityConfig {
        &self.config
    }

    /// `ln P(Q|K)` up to the per-query constant `-ln P(K)`. `query_len` is
    /// the keyword count of the full query so partial interpretations get
    /// charged `P_u` per unmapped keyword (Eq. 3.6 / §4.4.2).
    pub fn log_score(&self, interp: &QueryInterpretation, query_len: usize) -> f64 {
        let tpl = self.catalog.get(interp.template);
        let sig = tpl.signature(self.db);
        let mut lp = self.prior.prob(&sig, self.catalog.len()).max(MIN_PROB).ln();
        for b in &interp.bindings {
            let p = match b.target {
                BindingTarget::Value { node, attr } => {
                    if self.config.uniform_keywords {
                        1.0
                    } else {
                        let aref = AttrRef {
                            table: tpl.tree.nodes[node],
                            attr,
                        };
                        if self.config.use_joint_atf {
                            self.index.joint_atf(&b.keywords, aref, self.config.alpha)
                        } else {
                            b.keywords
                                .iter()
                                .map(|k| self.index.atf(k, aref, self.config.alpha))
                                .product()
                        }
                    }
                }
                BindingTarget::TableName { .. } | BindingTarget::AttrName { .. } => {
                    if self.config.uniform_keywords {
                        1.0
                    } else {
                        self.config.name_match_prob.powi(b.keywords.len() as i32)
                    }
                }
            };
            lp += p.max(MIN_PROB).ln();
        }
        let unmapped = query_len.saturating_sub(interp.keyword_count());
        if unmapped > 0 {
            lp += unmapped as f64 * self.config.unmapped_prob.max(MIN_PROB).ln();
        }
        lp
    }

    /// Build the incremental scorer driving best-first top-k generation.
    ///
    /// `terms` are the query's keyword occurrences in order; `value_attrs[i]`
    /// are the attributes where occurrence `i` matches as a value;
    /// `name_tables[i]` the tables on which it matches a schema name (table
    /// or attribute); `allow_unmapped` enables the partial-interpretation
    /// branch charged `P_u`.
    pub fn incremental<'q>(
        &'q self,
        terms: &[String],
        value_attrs: &[Vec<AttrRef>],
        name_tables: &[Vec<keybridge_relstore::TableId>],
        allow_unmapped: bool,
    ) -> IncrementalScorer<'a, 'q, I> {
        IncrementalScorer::new(self, terms, value_attrs, name_tables, allow_unmapped)
    }
}

impl ProbabilityModel<'_> {
    /// Normalize a slice of log scores into linear probabilities summing
    /// to 1 (softmax with max-shift for stability). Empty input yields an
    /// empty vector. (Pure float math — lives on the default-index model so
    /// `ProbabilityModel::normalize(..)` keeps resolving without a type
    /// annotation.)
    pub fn normalize(log_scores: &[f64]) -> Vec<f64> {
        if log_scores.is_empty() {
            return Vec::new();
        }
        let m = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = log_scores.iter().map(|&l| (l - m).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }
}

// ---------------------------------------------------------------------------
// Incremental scoring (best-first top-k generation).
// ---------------------------------------------------------------------------

use crate::template::QueryTemplate;
use keybridge_relstore::TableId;
use std::cell::RefCell;

/// Incremental evaluation of the probability model over *partial keyword
/// assignments*, for the best-first top-k generator.
///
/// The search assigns keyword occurrences left to right; a search state's
/// score splits into
///
/// * a **prefix log-score** — `ln P(T)` plus the contribution of every
///   binding formed so far, maintained incrementally: when occurrence `i`
///   joins an existing value group `g` on attribute `A`, the prefix changes
///   by `ln P(A : g ∪ {kᵢ}) − ln P(A : g)`; and
/// * an admissible **remaining-term bound** — for each unassigned
///   occurrence, the best contribution it could still make:
///
///   | route | bound | why admissible |
///   |---|---|---|
///   | unmapped | `ln P_u` | exact |
///   | schema name | `ln P_name` | exact per keyword |
///   | value, new group | `max_A ln ATF(k, A)` over `A` in the template | exact best case |
///   | value, join group | `0` | joint ATF is non-increasing in the bag, so the join delta is `≤ 0` |
///
/// Prefix + bound never underestimates the score of any completion (up to
/// float association error, which the search absorbs with an ε margin), so
/// popping states best-first and cutting when the bound drops below the
/// k-th best emitted score yields the exact top k.
///
/// Group scores are cached per `(occurrence set, attribute)` — shared
/// across all templates, since the score of a value bag depends only on the
/// underlying attribute, not on which template node carries it.
pub struct IncrementalScorer<'a, 'q, I = InvertedIndex> {
    model: &'q ProbabilityModel<'a, I>,
    terms: Vec<String>,
    /// Per occurrence: candidate value attrs with their floored `ln ATF`,
    /// sorted by attr.
    value_ln: Vec<Vec<(AttrRef, f64)>>,
    /// Per occurrence: best `ln ATF` per candidate table.
    value_best_table: Vec<HashMap<TableId, f64>>,
    /// Per occurrence: tables on which a value join with another occurrence
    /// is possible (shared candidate attribute).
    join_tables: Vec<std::collections::HashSet<TableId>>,
    /// Per occurrence: tables carrying a schema-name match.
    name_tables: Vec<Vec<TableId>>,
    /// `ln` of a group's probability, keyed by (occurrence bitmask, attr).
    group_cache: RefCell<HashMap<(u64, AttrRef), f64>>,
    ln_pu: f64,
    ln_name: f64,
    allow_unmapped: bool,
    uniform: bool,
}

impl<'a, 'q, I: TermIndex> IncrementalScorer<'a, 'q, I> {
    fn new(
        model: &'q ProbabilityModel<'a, I>,
        terms: &[String],
        value_attrs: &[Vec<AttrRef>],
        name_tables: &[Vec<TableId>],
        allow_unmapped: bool,
    ) -> Self {
        let cfg = model.config;
        let uniform = cfg.uniform_keywords;
        let mut value_ln = Vec::with_capacity(terms.len());
        let mut value_best_table = Vec::with_capacity(terms.len());
        for (i, attrs) in value_attrs.iter().enumerate() {
            let mut lns: Vec<(AttrRef, f64)> = attrs
                .iter()
                .map(|&a| {
                    let ln = if uniform {
                        0.0
                    } else {
                        model.index.atf(&terms[i], a, cfg.alpha).max(MIN_PROB).ln()
                    };
                    (a, ln)
                })
                .collect();
            lns.sort_by_key(|&(a, _)| a);
            let mut best: HashMap<TableId, f64> = HashMap::new();
            for &(a, ln) in &lns {
                let e = best.entry(a.table).or_insert(f64::NEG_INFINITY);
                if ln > *e {
                    *e = ln;
                }
            }
            value_ln.push(lns);
            value_best_table.push(best);
        }
        // Tables on which occurrence i shares a candidate attribute with
        // some other occurrence — the only places a value join can happen.
        let mut join_tables: Vec<std::collections::HashSet<TableId>> =
            vec![Default::default(); terms.len()];
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                for &(a, _) in &value_ln[i] {
                    if value_ln[j].binary_search_by_key(&a, |&(x, _)| x).is_ok() {
                        join_tables[i].insert(a.table);
                        join_tables[j].insert(a.table);
                    }
                }
            }
        }
        IncrementalScorer {
            model,
            terms: terms.to_vec(),
            value_ln,
            value_best_table,
            join_tables,
            name_tables: name_tables.to_vec(),
            group_cache: RefCell::new(HashMap::new()),
            ln_pu: cfg.unmapped_prob.max(MIN_PROB).ln(),
            ln_name: if uniform {
                0.0
            } else {
                cfg.name_match_prob.max(MIN_PROB).ln()
            },
            allow_unmapped,
            uniform,
        }
    }

    /// Number of keyword occurrences.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no occurrences.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// `ln P(T)` of a template.
    pub fn ln_prior(&self, tpl: &QueryTemplate) -> f64 {
        let sig = tpl.signature(self.model.db);
        self.model
            .prior
            .prob(&sig, self.model.catalog.len())
            .max(MIN_PROB)
            .ln()
    }

    /// `ln P_u`, the charge per unmapped keyword.
    pub fn unmapped_ln(&self) -> f64 {
        self.ln_pu
    }

    /// `ln P_name`, the charge per keyword bound to a schema name.
    pub fn name_ln(&self) -> f64 {
        self.ln_name
    }

    /// Whether the unmapped branch is enabled.
    pub fn allows_unmapped(&self) -> bool {
        self.allow_unmapped
    }

    /// `ln P(A : bag)` of the value group holding the occurrences in
    /// `mask` (bit `i` = occurrence `i`), bound to `attr`. Cached; shared
    /// across templates.
    pub fn value_group_ln(&self, mask: u64, attr: AttrRef) -> f64 {
        debug_assert!(mask != 0);
        if self.uniform {
            return 0.0;
        }
        if mask.count_ones() == 1 {
            let i = mask.trailing_zeros() as usize;
            return self.value_ln[i]
                .binary_search_by_key(&attr, |&(a, _)| a)
                .map(|p| self.value_ln[i][p].1)
                .unwrap_or_else(|_| {
                    // Off-candidate attr (term absent): smoothed floor.
                    self.model
                        .index
                        .atf(&self.terms[i], attr, self.model.config.alpha)
                        .max(MIN_PROB)
                        .ln()
                });
        }
        if let Some(&ln) = self.group_cache.borrow().get(&(mask, attr)) {
            return ln;
        }
        let keywords: Vec<String> = (0..self.terms.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.terms[i].clone())
            .collect();
        let cfg = self.model.config;
        let p = if cfg.use_joint_atf {
            self.model.index.joint_atf(&keywords, attr, cfg.alpha)
        } else {
            keywords
                .iter()
                .map(|k| self.model.index.atf(k, attr, cfg.alpha))
                .product()
        };
        let ln = p.max(MIN_PROB).ln();
        self.group_cache.borrow_mut().insert((mask, attr), ln);
        ln
    }

    /// Admissible upper bound on the contribution of occurrence `i` within
    /// template `tpl`, over every route still open to it (see the table in
    /// the type docs). `NEG_INFINITY` when the occurrence has no route —
    /// the template cannot interpret it and partials are off.
    pub fn term_bound(&self, tpl: &QueryTemplate, i: usize) -> f64 {
        let mut best = if self.allow_unmapped {
            self.ln_pu
        } else {
            f64::NEG_INFINITY
        };
        for table in tpl.distinct_tables() {
            if let Some(&v) = self.value_best_table[i].get(&table) {
                if v > best {
                    best = v;
                }
                if self.join_tables[i].contains(&table) && best < 0.0 {
                    best = 0.0;
                }
            }
            if self.name_tables[i].contains(&table) && self.ln_name > best {
                best = self.ln_name;
            }
        }
        best
    }

    /// Suffix sums of per-occurrence bounds for `tpl`: entry `i` bounds the
    /// total remaining contribution once occurrences `0..i` are assigned
    /// (`NEG_INFINITY` when some remaining occurrence has no route). Entry
    /// `n` is 0.
    pub fn suffix_bounds(&self, tpl: &QueryTemplate) -> Vec<f64> {
        let n = self.terms.len();
        let mut out = vec![0.0; n + 1];
        for i in (0..n).rev() {
            out[i] = self.term_bound(tpl, i) + out[i + 1];
        }
        out
    }

    /// Whether occurrence `i` has any binding target inside `tpl`
    /// (ignoring the unmapped route).
    pub fn has_target_in(&self, tpl: &QueryTemplate, i: usize) -> bool {
        tpl.distinct_tables()
            .any(|t| self.value_best_table[i].contains_key(&t) || self.name_tables[i].contains(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::KeywordBinding;
    use keybridge_relstore::{SchemaBuilder, TableKind, Value};

    fn setup() -> (Database, TemplateCatalog) {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        for (i, n) in ["tom hanks", "tom cruise", "meg ryan", "tom berenger"]
            .iter()
            .enumerate()
        {
            db.insert(actor, vec![Value::Int(i as i64), Value::text(*n)])
                .unwrap();
        }
        for (i, t) in [
            "the terminal",
            "tom and huck",
            "top gun",
            "joe versus the volcano",
            "sleepless in seattle",
            "catch me if you can",
        ]
        .iter()
        .enumerate()
        {
            db.insert(movie, vec![Value::Int(i as i64), Value::text(*t)])
                .unwrap();
        }
        let catalog = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        (db, catalog)
    }

    fn value_interp(
        db: &Database,
        catalog: &TemplateCatalog,
        table: &str,
        attr: &str,
        keywords: &[&str],
    ) -> QueryInterpretation {
        let tid = db.schema().table_id(table).unwrap();
        let tpl = catalog
            .iter()
            .find(|t| t.tree.nodes == vec![tid])
            .unwrap()
            .id;
        let aref = db.schema().resolve(table, attr).unwrap();
        QueryInterpretation::new(
            tpl,
            vec![KeywordBinding {
                keywords: keywords.iter().map(|s| s.to_string()).collect(),
                target: BindingTarget::Value {
                    node: 0,
                    attr: aref.attr,
                },
            }],
        )
    }

    #[test]
    fn frequent_attribute_wins() {
        let (db, catalog) = setup();
        let idx = InvertedIndex::build(&db);
        let m = ProbabilityModel::new(
            &db,
            &idx,
            &catalog,
            TemplatePrior::Uniform,
            ProbabilityConfig::default(),
        );
        // "tom" as an actor name (3 of 4 rows) vs as a movie title word (1 of 2).
        let a = value_interp(&db, &catalog, "actor", "name", &["tom"]);
        let t = value_interp(&db, &catalog, "movie", "title", &["tom"]);
        assert!(m.log_score(&a, 1) > m.log_score(&t, 1));
    }

    #[test]
    fn joint_atf_beats_split_bindings() {
        let (db, catalog) = setup();
        let idx = InvertedIndex::build(&db);
        let m = ProbabilityModel::new(
            &db,
            &idx,
            &catalog,
            TemplatePrior::Uniform,
            ProbabilityConfig::default(),
        );
        // "tom hanks" co-occurring in one name should outscore "tom" in a
        // title and "hanks" in a name under the joint model.
        let together = value_interp(&db, &catalog, "actor", "name", &["tom", "hanks"]);
        let q = 2;
        let split_partial = value_interp(&db, &catalog, "actor", "name", &["hanks"]);
        assert!(m.log_score(&together, q) > m.log_score(&split_partial, q));
    }

    #[test]
    fn partial_charged_unmapped_penalty() {
        let (db, catalog) = setup();
        let idx = InvertedIndex::build(&db);
        let m = ProbabilityModel::new(
            &db,
            &idx,
            &catalog,
            TemplatePrior::Uniform,
            ProbabilityConfig::default(),
        );
        let i = value_interp(&db, &catalog, "actor", "name", &["tom"]);
        let complete = m.log_score(&i, 1);
        let partial = m.log_score(&i, 3); // two keywords unmapped
        assert!(complete > partial);
        let expected = 2.0 * (1e-8f64).ln();
        assert!((partial - complete - expected).abs() < 1e-9);
    }

    #[test]
    fn usage_prior_prefers_frequent_templates() {
        let (db, catalog) = setup();
        let idx = InvertedIndex::build(&db);
        let sig_actor = vec!["actor".to_owned()];
        let prior = TemplatePrior::from_usage(vec![(sig_actor, 80)]);
        let m = ProbabilityModel::new(&db, &idx, &catalog, prior, ProbabilityConfig::baseline());
        let a = value_interp(&db, &catalog, "actor", "name", &["tom"]);
        let t = value_interp(&db, &catalog, "movie", "title", &["tom"]);
        // With uniform keyword scores, only the prior differs.
        assert!(m.log_score(&a, 1) > m.log_score(&t, 1));
    }

    #[test]
    fn baseline_is_indifferent() {
        let (db, catalog) = setup();
        let idx = InvertedIndex::build(&db);
        let m = ProbabilityModel::new(
            &db,
            &idx,
            &catalog,
            TemplatePrior::Uniform,
            ProbabilityConfig::baseline(),
        );
        let a = value_interp(&db, &catalog, "actor", "name", &["tom"]);
        let t = value_interp(&db, &catalog, "movie", "title", &["tom"]);
        assert!((m.log_score(&a, 1) - m.log_score(&t, 1)).abs() < 1e-12);
    }

    #[test]
    fn normalize_sums_to_one() {
        let probs = ProbabilityModel::normalize(&[-700.0, -701.0, -705.0]);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(probs[0] > probs[1] && probs[1] > probs[2]);
        assert!(ProbabilityModel::normalize(&[]).is_empty());
    }

    #[test]
    fn uniform_prior_value() {
        let p = TemplatePrior::Uniform;
        assert!((p.prob(&[], 4) - 0.25).abs() < 1e-12);
        let u = TemplatePrior::from_usage(vec![(vec!["a".to_owned()], 9)]);
        // (9+1)/(9+2) for the seen signature, 1/(9+2) for unseen.
        assert!((u.prob(&["a".to_owned()], 2) - 10.0 / 11.0).abs() < 1e-12);
        assert!((u.prob(&["b".to_owned()], 2) - 1.0 / 11.0).abs() < 1e-12);
    }
}
