//! The composable query pipeline: generation → execution → post-processing.
//!
//! Every end-to-end serving mode in this workspace is the same three stages
//! wired differently: an [`InterpretationSource`] produces ranked candidate
//! interpretations (best-first over a keyword query, or a fixed pre-ranked
//! window), the cached batched executor materializes them through one
//! [`ExecCache`] (optionally backed by the process-wide shared tier), and a
//! pluggable [`PostProcess`] stage consumes the streamed
//! [`ExecutedResult`]s:
//!
//! * **plain top-k answers** (Hot path 2) — collect JTTs best-first until
//!   `k` answers exist, growing the generation wave geometrically;
//! * **diversified top-k** (Alg. 4.1, §4.4) — build the relevance/novelty
//!   pool from streamed executions (empty interpretations drop out, result
//!   keys are capped per interpretation) and greedily select relevant *and*
//!   structurally novel interpretations;
//! * **construction-session windows** (Alg. 3.2) — execute the remaining
//!   candidate window of an interactive session, candidates sharing one
//!   cache across refreshes.
//!
//! [`crate::Interpreter::answers_top_k`] and the [`crate::SearchService`]
//! request modes all run on this pipeline, which is what keeps a warm,
//! concurrent service byte-identical to the cold offline oracles: the only
//! cross-query state is the result-invariant shared cache tier, and
//! complete cached results are truncated back to the request's limit
//! ([`truncate_result`]) before a stage observes them.

use crate::exec::{
    execute_interpretation_cached, prefix_keys, truncate_result, ExecCache, ExecutedResult,
    ResultKey,
};
use crate::generate::{
    AnswerStats, GenerationStats, Interpreter, NonemptyCache, RankedAnswer, ScoredInterpretation,
};
use crate::interp::BindingAtom;
use crate::keyword::KeywordQuery;
use crate::template::TemplateCatalog;
use crate::QueryInterpretation;
use keybridge_relstore::ExecOptions;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Stage 1: interpretation sources.
// ---------------------------------------------------------------------------

/// A source of ranked candidate interpretations. `pull(k)` returns the best
/// `k`, best-first; the pipeline driver grows `k` geometrically (up to
/// [`InterpretationSource::cap`]) when the post-processing stage still
/// demands answers after a wave.
pub trait InterpretationSource {
    /// The best `k` candidates, best-first. Waves replay: a later, larger
    /// pull returns a superset prefix of an earlier one.
    fn pull(
        &mut self,
        k: usize,
        gen_cache: &mut NonemptyCache,
    ) -> (Vec<ScoredInterpretation>, GenerationStats);

    /// Hard ceiling on the candidate space; wave growth stops here.
    fn cap(&self) -> usize;
}

/// Best-first generation over a keyword query — the
/// [`Interpreter::top_k_with_cache`] hot path, with the non-emptiness memo
/// persisting across waves (and falling through to the shared tier when the
/// cache was built with [`NonemptyCache::with_shared`]).
pub struct BestFirstSource<'q, 'a> {
    interpreter: &'q Interpreter<'a>,
    query: &'q KeywordQuery,
    include_partials: bool,
}

impl<'q, 'a> BestFirstSource<'q, 'a> {
    pub fn new(interpreter: &'q Interpreter<'a>, query: &'q KeywordQuery, partials: bool) -> Self {
        BestFirstSource {
            interpreter,
            query,
            include_partials: partials,
        }
    }
}

impl InterpretationSource for BestFirstSource<'_, '_> {
    fn pull(
        &mut self,
        k: usize,
        gen_cache: &mut NonemptyCache,
    ) -> (Vec<ScoredInterpretation>, GenerationStats) {
        self.interpreter
            .top_k_with_cache(self.query, k, self.include_partials, gen_cache)
    }

    fn cap(&self) -> usize {
        self.interpreter.config().max_interpretations
    }
}

/// A fixed, pre-ranked candidate list — a diversification pool handed in by
/// a caller, or the remaining window of a construction session.
pub struct FixedSource {
    ranked: Vec<ScoredInterpretation>,
}

impl FixedSource {
    pub fn new(ranked: Vec<ScoredInterpretation>) -> Self {
        FixedSource { ranked }
    }

    /// Wrap a construction-session window: `(interpretation, weight)` pairs
    /// in window order. Weights become probabilities; the window carries no
    /// log-scores.
    pub fn from_window(window: &[(QueryInterpretation, f64)]) -> Self {
        FixedSource {
            ranked: window
                .iter()
                .map(|(c, p)| ScoredInterpretation {
                    interpretation: c.clone(),
                    log_score: 0.0,
                    probability: *p,
                })
                .collect(),
        }
    }
}

impl InterpretationSource for FixedSource {
    fn pull(
        &mut self,
        k: usize,
        _gen_cache: &mut NonemptyCache,
    ) -> (Vec<ScoredInterpretation>, GenerationStats) {
        let out: Vec<ScoredInterpretation> = self.ranked.iter().take(k).cloned().collect();
        let stats = GenerationStats {
            emitted: out.len(),
            ..Default::default()
        };
        (out, stats)
    }

    fn cap(&self) -> usize {
        self.ranked.len().max(1)
    }
}

// ---------------------------------------------------------------------------
// Stage 3: post-processing.
// ---------------------------------------------------------------------------

/// A stage consuming the pipeline's stream of non-empty executed
/// interpretations, in rank order.
pub trait PostProcess {
    /// Raw answers (JTTs) the stage still wants. Drives the executor's
    /// per-interpretation `limit` and stops the wave at `0`. Stages that
    /// must see *every* candidate (diversification pools, session windows)
    /// return their per-candidate cap and never reach `0`.
    fn demand(&self) -> usize;

    /// Start of a (re)play: the driver re-walks the ranked prefix each
    /// wave (replays are execution-cache hits), so accumulated output
    /// resets here.
    fn begin_wave(&mut self);

    /// One non-empty executed candidate. `rank` is its position in the
    /// current wave's ranked list. The result may carry more JTTs than
    /// [`PostProcess::demand`] asked for when it was served complete from a
    /// cache; stages cap what they consume.
    fn ingest(&mut self, rank: usize, scored: &ScoredInterpretation, result: &Arc<ExecutedResult>);
}

/// Plain streamed top-k answers: take JTTs best-first until `k` exist.
struct TopKAnswers<'q, 'a> {
    interpreter: &'q Interpreter<'a>,
    k: usize,
    answers: Vec<RankedAnswer>,
}

impl PostProcess for TopKAnswers<'_, '_> {
    fn demand(&self) -> usize {
        self.k - self.answers.len().min(self.k)
    }

    fn begin_wave(&mut self) {
        self.answers.clear();
    }

    fn ingest(&mut self, _rank: usize, s: &ScoredInterpretation, res: &Arc<ExecutedResult>) {
        let remaining = self.demand();
        self.interpreter
            .collect_answers(s, res, remaining, &mut self.answers);
    }
}

/// The diversification pool (§4.4.2): every non-empty candidate survives
/// with its relevance, structural atoms, and result keys capped at `cap`
/// JTTs per interpretation — the pool Alg. 4.1 then selects from.
struct DivPoolStage<'q, 'a> {
    interpreter: &'q Interpreter<'a>,
    cap: usize,
    items: Vec<DivItem>,
    keys: Vec<BTreeSet<ResultKey>>,
    picks: Vec<ScoredInterpretation>,
}

impl<'q, 'a> DivPoolStage<'q, 'a> {
    fn new(interpreter: &'q Interpreter<'a>, cap: usize) -> Self {
        DivPoolStage {
            interpreter,
            cap,
            items: Vec::new(),
            keys: Vec::new(),
            picks: Vec::new(),
        }
    }
}

impl PostProcess for DivPoolStage<'_, '_> {
    fn demand(&self) -> usize {
        self.cap
    }

    fn begin_wave(&mut self) {
        self.items.clear();
        self.keys.clear();
        self.picks.clear();
    }

    fn ingest(&mut self, _rank: usize, s: &ScoredInterpretation, res: &Arc<ExecutedResult>) {
        self.items.push(DivItem {
            relevance: s.probability,
            atoms: s
                .interpretation
                .atoms(self.interpreter.catalog())
                .into_iter()
                .collect(),
        });
        self.keys.push(prefix_keys(
            self.interpreter.db(),
            self.interpreter.catalog(),
            &s.interpretation,
            res,
            self.cap,
        ));
        self.picks.push(s.clone());
    }
}

/// A construction session's window refresh: every candidate executed (at
/// most `limit` JTTs each), non-empty ones collected with their window
/// index, complete cache hits truncated back to `limit`.
struct WindowStage<'q, 'a> {
    interpreter: &'q Interpreter<'a>,
    limit: usize,
    out: Vec<(usize, Arc<ExecutedResult>)>,
}

impl PostProcess for WindowStage<'_, '_> {
    fn demand(&self) -> usize {
        self.limit
    }

    fn begin_wave(&mut self) {
        self.out.clear();
    }

    fn ingest(&mut self, rank: usize, s: &ScoredInterpretation, res: &Arc<ExecutedResult>) {
        self.out.push((
            rank,
            truncate_result(
                self.interpreter.db(),
                self.interpreter.catalog(),
                &s.interpretation,
                res,
                self.limit,
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// The pipeline.
// ---------------------------------------------------------------------------

/// Generation → cached execution → post-processing over explicit cache
/// handles. Construct the caches with [`NonemptyCache::with_shared`] /
/// [`ExecCache::with_shared`] to fall through to a
/// [`crate::SearchService`]'s process-wide tier; plain caches give the cold
/// offline behavior.
pub struct QueryPipeline<'s, 'a> {
    interpreter: &'s Interpreter<'a>,
    base: ExecOptions,
    gen_cache: &'s mut NonemptyCache,
    exec_cache: &'s mut ExecCache,
}

impl<'s, 'a> QueryPipeline<'s, 'a> {
    pub fn new(
        interpreter: &'s Interpreter<'a>,
        base: ExecOptions,
        gen_cache: &'s mut NonemptyCache,
        exec_cache: &'s mut ExecCache,
    ) -> Self {
        QueryPipeline {
            interpreter,
            base,
            gen_cache,
            exec_cache,
        }
    }

    /// The shared driver: pull a ranked wave from `source`, execute each
    /// candidate through the cached batched executor with `limit` set to
    /// the stage's remaining demand, and feed non-empty results to `post`.
    /// With `grow`, waves expand geometrically until the stage is satisfied
    /// or the source is exhausted; executions that error are tombstoned so
    /// replays skip them.
    fn drive<S: InterpretationSource, P: PostProcess>(
        &mut self,
        source: &mut S,
        post: &mut P,
        start_k: usize,
        grow: bool,
        seed_terms: Option<&[String]>,
        stats: &mut AnswerStats,
    ) {
        let mut failed: HashSet<QueryInterpretation> = HashSet::new();
        let mut gen_k = start_k;
        loop {
            stats.waves += 1;
            let (ranked, gstats) = source.pull(gen_k, self.gen_cache);
            stats.gen = gstats;
            stats.generated = ranked.len();
            post.begin_wave();
            for (rank, s) in ranked.iter().enumerate() {
                let remaining = post.demand();
                if remaining == 0 {
                    break;
                }
                let opts = ExecOptions {
                    limit: remaining,
                    count_only: false,
                    ..self.base
                };
                if failed.contains(&s.interpretation) {
                    continue;
                }
                let hits_before = self.exec_cache.result_hits;
                let res = match execute_interpretation_cached(
                    self.interpreter.db(),
                    self.interpreter.index(),
                    self.interpreter.catalog(),
                    &s.interpretation,
                    opts,
                    self.exec_cache,
                ) {
                    Ok(r) => r,
                    Err(_) => {
                        stats.exec_errors += 1;
                        failed.insert(s.interpretation.clone());
                        continue;
                    }
                };
                if self.exec_cache.result_hits == hits_before {
                    // Fresh execution: count it once and feed what the
                    // executor learned back into the generator's cache.
                    stats.executed += 1;
                    stats.exec.absorb(&res.stats);
                    if !res.is_empty() {
                        stats.nonempty += 1;
                    }
                    if let Some(terms) = seed_terms {
                        stats.nonempty_seeded += self.interpreter.seed_nonempty_from_execution(
                            terms,
                            &s.interpretation,
                            self.exec_cache,
                            self.gen_cache,
                        );
                    }
                }
                if res.is_empty() {
                    continue;
                }
                post.ingest(rank, s, &res);
            }
            let exhausted = ranked.len() < gen_k || gen_k >= source.cap();
            if post.demand() == 0 || !grow || exhausted {
                break;
            }
            gen_k = gen_k.saturating_mul(4).min(source.cap());
        }
        stats.predicate_cache_hits = self.exec_cache.predicate_hits;
        stats.result_cache_hits = self.exec_cache.result_hits;
    }

    /// Streamed top-k answers (Hot path 2): best-first generation in
    /// geometrically growing waves, lazy limited execution, answers in
    /// interpretation-rank order. This *is*
    /// [`Interpreter::answers_top_k_with_caches`].
    pub fn answers(&mut self, query: &KeywordQuery, k: usize) -> (Vec<RankedAnswer>, AnswerStats) {
        let mut stats = AnswerStats::default();
        if k == 0 || query.is_empty() {
            return (Vec::new(), stats);
        }
        let interpreter = self.interpreter;
        let mut source = BestFirstSource::new(interpreter, query, true);
        let mut post = TopKAnswers {
            interpreter,
            k,
            answers: Vec::new(),
        };
        let start = k.max(8).min(interpreter.config().max_interpretations);
        self.drive(
            &mut source,
            &mut post,
            start,
            true,
            Some(query.terms()),
            &mut stats,
        );
        stats.answers = post.answers.len();
        (post.answers, stats)
    }

    /// Execute a pre-ranked candidate list into a diversification pool:
    /// every non-empty interpretation survives with its relevance, atoms,
    /// and result keys capped at `cap` JTTs (the §4.4.1 zero-probability
    /// condition drops empty ones). The offline
    /// `keybridge_divq::executed_div_pool` oracle is this call over plain
    /// (unshared) caches.
    pub fn executed_pool(&mut self, ranked: &[ScoredInterpretation], cap: usize) -> ExecutedPool {
        let mut stats = AnswerStats::default();
        let interpreter = self.interpreter;
        let mut post = DivPoolStage::new(interpreter, cap);
        let mut source = FixedSource::new(ranked.to_vec());
        let start = ranked.len().max(1);
        self.drive(&mut source, &mut post, start, false, None, &mut stats);
        ExecutedPool {
            items: post.items,
            keys: post.keys,
            interps: post.picks,
            generated: ranked.len(),
            stats,
        }
    }

    /// Diversified top-k (Alg. 4.1) end to end: pull the best `opts.pool`
    /// interpretations (complete *and* partial — the DivQ candidate pool),
    /// stream them through the cached executor (at most `opts.cap` JTTs
    /// each, empty ones dropped), then greedily select
    /// relevance-and-novelty winners.
    pub fn diversified(
        &mut self,
        query: &KeywordQuery,
        opts: DiversifyOptions,
    ) -> DiversifiedAnswers {
        let mut stats = AnswerStats::default();
        let interpreter = self.interpreter;
        let mut post = DivPoolStage::new(interpreter, opts.cap);
        if opts.pool > 0 && !query.is_empty() {
            let mut source = BestFirstSource::new(interpreter, query, true);
            let start = opts
                .pool
                .min(interpreter.config().max_interpretations.max(1));
            self.drive(
                &mut source,
                &mut post,
                start,
                false,
                Some(query.terms()),
                &mut stats,
            );
        }
        let selected = diversify(&post.items, opts.config);
        let answers: Vec<DiversifiedAnswer> = selected
            .into_iter()
            .map(|i| DiversifiedAnswer {
                interpretation: post.picks[i].interpretation.clone(),
                log_score: post.picks[i].log_score,
                relevance: post.items[i].relevance,
                atoms: post.items[i].atoms.clone(),
                keys: post.keys[i].clone(),
                pool_rank: i,
            })
            .collect();
        stats.answers = answers.len();
        DiversifiedAnswers {
            answers,
            pool: post.items.len(),
            stats,
        }
    }

    /// Execute a construction session's candidate window: every candidate
    /// runs through the cached executor (at most `limit` JTTs each), and
    /// the non-empty ones come back as `(window index, result)` in window
    /// order — byte-identical to a cold per-candidate execution even when
    /// served from a warm shared cache (complete hits are truncated back to
    /// `limit`).
    pub fn window(
        &mut self,
        candidates: &[(QueryInterpretation, f64)],
        limit: usize,
    ) -> Vec<(usize, Arc<ExecutedResult>)> {
        let mut stats = AnswerStats::default();
        let interpreter = self.interpreter;
        let mut post = WindowStage {
            interpreter,
            limit,
            out: Vec::new(),
        };
        let mut source = FixedSource::from_window(candidates);
        let start = candidates.len().max(1);
        self.drive(&mut source, &mut post, start, false, None, &mut stats);
        post.out
    }
}

/// A materialized diversification pool: the surviving (non-empty) items in
/// rank order, their capped result-key sets, the interpretations they came
/// from, and the run counters.
#[derive(Debug, Clone)]
pub struct ExecutedPool {
    /// Relevance + atoms per surviving interpretation (the Alg. 4.1 input).
    pub items: Vec<DivItem>,
    /// Result keys per surviving interpretation, capped at the pool's
    /// per-interpretation JTT limit (the Chapter 4 subtopics).
    pub keys: Vec<BTreeSet<ResultKey>>,
    /// The surviving interpretations, parallel to `items`.
    pub interps: Vec<ScoredInterpretation>,
    /// Candidates handed to the executor (pool size before the empty-result
    /// drop).
    pub generated: usize,
    /// Pipeline counters of the pool build.
    pub stats: AnswerStats,
}

/// Knobs of the diversified serving mode.
#[derive(Debug, Clone, Copy)]
pub struct DiversifyOptions {
    /// Selection size and λ trade-off (Alg. 4.1 / Eq. 4.4).
    pub config: DiversifyConfig,
    /// Ranked interpretations pulled best-first into the candidate pool
    /// (the paper's experiments use the top 25).
    pub pool: usize,
    /// Materialization cap: JTTs executed per pool interpretation.
    pub cap: usize,
}

impl Default for DiversifyOptions {
    fn default() -> Self {
        DiversifyOptions {
            config: DiversifyConfig::default(),
            pool: 25,
            cap: 500,
        }
    }
}

/// One selected answer of the diversified mode.
#[derive(Debug, Clone)]
pub struct DiversifiedAnswer {
    /// The selected interpretation.
    pub interpretation: QueryInterpretation,
    /// Its `ln P(Q|K)` (up to the per-query constant).
    pub log_score: f64,
    /// Its relevance: the probability normalized over the generated pool.
    pub relevance: f64,
    /// Its keyword-interpretation set `I` (Eq. 4.3).
    pub atoms: BTreeSet<BindingAtom>,
    /// Its capped result keys (the subtopics it covers).
    pub keys: BTreeSet<ResultKey>,
    /// Position in the executed pool (relevance rank).
    pub pool_rank: usize,
}

/// Outcome of one diversified pipeline run.
#[derive(Debug, Clone)]
pub struct DiversifiedAnswers {
    /// Selected interpretations in selection order (most relevant first).
    pub answers: Vec<DiversifiedAnswer>,
    /// Surviving executed pool size the selection drew from.
    pub pool: usize,
    /// Pipeline counters.
    pub stats: AnswerStats,
}

// ---------------------------------------------------------------------------
// Alg. 4.1: Jaccard similarity and the greedy relevance/novelty selection.
// (The algorithmic core of DivQ lives here so the serving layer can run it;
// `keybridge_divq` re-exports it.)
// ---------------------------------------------------------------------------

/// One candidate for diversification: an interpretation's relevance score
/// and its set of keyword interpretations (schema-level atoms).
#[derive(Debug, Clone)]
pub struct DivItem {
    /// Relevance = `P(Q|K)` from the disambiguation model (§4.4.2).
    pub relevance: f64,
    /// The keyword-interpretation set `I` of Eq. 4.3.
    pub atoms: BTreeSet<BindingAtom>,
}

/// Build the diversification pool from ranked interpretations — typically
/// the interpreter's `top_k(query, k)` output, which is exactly the DivQ
/// candidate pool (§4.4.2: complete and partial interpretations, best
/// first). Relevance is the ranked probability; atoms are the schema-level
/// keyword interpretations.
pub fn div_pool(ranked: &[ScoredInterpretation], catalog: &TemplateCatalog) -> Vec<DivItem> {
    ranked
        .iter()
        .map(|s| DivItem {
            relevance: s.probability,
            atoms: s.interpretation.atoms(catalog).into_iter().collect(),
        })
        .collect()
}

/// Jaccard coefficient between two atom sets (Eq. 4.3). Two empty sets are
/// defined maximally similar (they describe the same — empty — query).
pub fn jaccard(a: &BTreeSet<BindingAtom>, b: &BTreeSet<BindingAtom>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Diversification knobs.
#[derive(Debug, Clone, Copy)]
pub struct DiversifyConfig {
    /// Trade-off: 1.0 = pure relevance, 0.5 = balanced, < 0.5 emphasizes
    /// novelty (Eq. 4.4). The Chapter 4 experiments use λ = 0.1.
    pub lambda: f64,
    /// Number of interpretations to select.
    pub k: usize,
}

impl Default for DiversifyConfig {
    fn default() -> Self {
        DiversifyConfig { lambda: 0.1, k: 10 }
    }
}

/// Alg. 4.1: select `cfg.k` relevant-and-diverse items from `items`, which
/// must be sorted by relevance descending (the top-k of the ranker).
/// Returns indexes into `items` in selection order.
///
/// Relevance and similarity are normalized to equal means before the
/// λ-weighting (the note under Eq. 4.4), and the scan for each next element
/// stops early once `best_score > λ · relevance(L[j])` can no longer be
/// beaten — the upper-bound pruning of the paper's pseudo-code.
pub fn diversify(items: &[DivItem], cfg: DiversifyConfig) -> Vec<usize> {
    let n = items.len();
    if n == 0 || cfg.k == 0 {
        return Vec::new();
    }
    debug_assert!(
        items.windows(2).all(|w| w[0].relevance >= w[1].relevance),
        "items must be sorted by relevance descending"
    );

    // Normalization to equal means. Mean similarity is estimated over all
    // pairs of the candidate list (the population the selection draws from).
    let mean_rel = items.iter().map(|i| i.relevance).sum::<f64>() / n as f64;
    let mut sim_sum = 0.0;
    let mut sim_cnt = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sim_sum += jaccard(&items[i].atoms, &items[j].atoms);
            sim_cnt += 1;
        }
    }
    let mean_sim = if sim_cnt > 0 {
        sim_sum / sim_cnt as f64
    } else {
        0.0
    };
    let rel_scale = if mean_rel > 0.0 { 1.0 / mean_rel } else { 1.0 };
    let sim_scale = if mean_sim > 0.0 { 1.0 / mean_sim } else { 1.0 };

    let lambda = cfg.lambda;
    let mut selected: Vec<usize> = vec![0]; // most relevant always first
    let mut available: Vec<usize> = (1..n).collect();

    while selected.len() < cfg.k.min(n) {
        let mut best_score = f64::NEG_INFINITY;
        let mut best_pos = 0usize;
        for (pos, &j) in available.iter().enumerate() {
            let rel = items[j].relevance * rel_scale;
            // Upper bound: diversity penalty is ≥ 0, so score(j) ≤ λ·rel(j).
            // `available` is relevance-sorted, so once the bound falls below
            // the incumbent nothing later can win.
            if best_score > lambda * rel {
                break;
            }
            let avg_sim = selected
                .iter()
                .map(|&s| jaccard(&items[s].atoms, &items[j].atoms))
                .sum::<f64>()
                / selected.len() as f64;
            let score = lambda * rel - (1.0 - lambda) * avg_sim * sim_scale;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        let chosen = available.remove(best_pos);
        selected.push(chosen);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::InterpreterConfig;
    use keybridge_datagen::{ImdbConfig, ImdbDataset};
    use keybridge_index::InvertedIndex;
    use keybridge_relstore::Database;

    struct Fixture {
        db: Database,
        index: InvertedIndex,
        catalog: TemplateCatalog,
    }

    fn fixture() -> Fixture {
        let data = ImdbDataset::generate(ImdbConfig::tiny(1)).unwrap();
        let index = InvertedIndex::build(&data.db);
        let catalog = TemplateCatalog::enumerate(&data.db, 4, 50_000).unwrap();
        Fixture {
            db: data.db,
            index,
            catalog,
        }
    }

    fn interp(f: &Fixture) -> Interpreter<'_> {
        Interpreter::new(&f.db, &f.index, &f.catalog, InterpreterConfig::default())
    }

    #[test]
    fn pipeline_answers_equals_interpreter_entry_point() {
        let f = fixture();
        let it = interp(&f);
        let q = KeywordQuery::from_terms(vec!["tom".into(), "hanks".into()]);
        let direct = it.answers_top_k(&q, 7);
        let mut gen_cache = NonemptyCache::new();
        let mut exec_cache = ExecCache::new();
        let (piped, stats) =
            QueryPipeline::new(&it, ExecOptions::default(), &mut gen_cache, &mut exec_cache)
                .answers(&q, 7);
        assert_eq!(direct.len(), piped.len());
        for (a, b) in direct.iter().zip(&piped) {
            assert_eq!(a.interpretation, b.interpretation);
            assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
            assert_eq!(a.jtt, b.jtt);
            assert_eq!(a.keys, b.keys);
        }
        assert_eq!(stats.answers, piped.len());
    }

    #[test]
    fn executed_pool_drops_empty_and_caps_keys() {
        let f = fixture();
        let it = interp(&f);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let ranked = it.top_k(&q, 10);
        assert!(!ranked.is_empty());
        let mut gen_cache = NonemptyCache::new();
        let mut exec_cache = ExecCache::new();
        let pool = QueryPipeline::new(&it, ExecOptions::default(), &mut gen_cache, &mut exec_cache)
            .executed_pool(&ranked, 3);
        assert_eq!(pool.generated, ranked.len());
        assert_eq!(pool.items.len(), pool.keys.len());
        assert_eq!(pool.items.len(), pool.interps.len());
        assert!(!pool.items.is_empty(), "every candidate executed empty");
        // Capped: no key set can exceed what 3 JTTs of its template carry.
        for (keys, s) in pool.keys.iter().zip(&pool.interps) {
            let nodes = f.catalog.get(s.interpretation.template).tree.nodes.len();
            assert!(keys.len() <= 3 * nodes, "keys overflow the cap");
        }
        // Pool items keep the ranked relevance, bit-exact.
        for (item, s) in pool.items.iter().zip(&pool.interps) {
            assert_eq!(item.relevance.to_bits(), s.probability.to_bits());
        }
    }

    #[test]
    fn diversified_selection_matches_manual_pool_plus_alg41() {
        let f = fixture();
        let it = interp(&f);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let opts = DiversifyOptions {
            config: DiversifyConfig { lambda: 0.1, k: 4 },
            pool: 12,
            cap: 5,
        };
        // Manual composition of the same stages.
        let ranked = it.top_k(&q, opts.pool);
        let mut g1 = NonemptyCache::new();
        let mut e1 = ExecCache::new();
        let manual = QueryPipeline::new(&it, ExecOptions::default(), &mut g1, &mut e1)
            .executed_pool(&ranked, opts.cap);
        let sel = diversify(&manual.items, opts.config);

        let mut g2 = NonemptyCache::new();
        let mut e2 = ExecCache::new();
        let got =
            QueryPipeline::new(&it, ExecOptions::default(), &mut g2, &mut e2).diversified(&q, opts);
        assert_eq!(got.pool, manual.items.len());
        assert_eq!(got.answers.len(), sel.len());
        for (a, &i) in got.answers.iter().zip(&sel) {
            assert_eq!(a.pool_rank, i);
            assert_eq!(a.relevance.to_bits(), manual.items[i].relevance.to_bits());
            assert_eq!(a.atoms, manual.items[i].atoms);
            assert_eq!(a.keys, manual.keys[i]);
            assert_eq!(a.interpretation, manual.interps[i].interpretation);
        }
    }

    #[test]
    fn window_truncates_warm_complete_hits_to_the_request_limit() {
        let f = fixture();
        let it = interp(&f);
        let q = KeywordQuery::from_terms(vec!["tom".into()]);
        let ranked = it.top_k_complete(&q, 6);
        let window: Vec<(QueryInterpretation, f64)> = ranked
            .iter()
            .map(|s| (s.interpretation.clone(), s.probability))
            .collect();
        // Cold oracle: fresh cache, limit 1.
        let mut g1 = NonemptyCache::new();
        let mut e1 = ExecCache::new();
        let cold =
            QueryPipeline::new(&it, ExecOptions::default(), &mut g1, &mut e1).window(&window, 1);
        // Warm path: a big-limit pass first populates the cache with
        // *complete* results, then the limit-1 refresh must truncate them.
        let mut g2 = NonemptyCache::new();
        let mut e2 = ExecCache::new();
        let mut warm_pipe = QueryPipeline::new(&it, ExecOptions::default(), &mut g2, &mut e2);
        let big = warm_pipe.window(&window, 10_000);
        assert!(big.iter().any(|(_, r)| r.len() > 1), "fixture too small");
        let warm = warm_pipe.window(&window, 1);
        assert_eq!(cold.len(), warm.len());
        for ((ci, cr), (wi, wr)) in cold.iter().zip(&warm) {
            assert_eq!(ci, wi);
            assert_eq!(cr.jtts, wr.jtts);
            assert_eq!(cr.keys, wr.keys);
            assert_eq!(cr.all_keys, wr.all_keys);
            assert!(wr.len() <= 1);
        }
    }

    #[test]
    fn diversified_empty_query_yields_nothing() {
        let f = fixture();
        let it = interp(&f);
        let mut g = NonemptyCache::new();
        let mut e = ExecCache::new();
        let got = QueryPipeline::new(&it, ExecOptions::default(), &mut g, &mut e).diversified(
            &KeywordQuery::from_terms(vec![]),
            DiversifyOptions::default(),
        );
        assert!(got.answers.is_empty());
        assert_eq!(got.pool, 0);
    }
}
