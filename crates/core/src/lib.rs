//! # keybridge-core
//!
//! The shared keyword-search framework of the paper (§3.5, §3.6, §4.4):
//! translating keyword queries into structured queries over a relational
//! database and scoring the possible interpretations.
//!
//! Pipeline:
//!
//! 1. [`KeywordQuery`] — the user's bag of terms (Def. 3.5.1).
//! 2. [`TemplateCatalog`] — query templates: connected join trees enumerated
//!    breadth-first over the schema graph up to a join bound (§3.5.2, the
//!    DISCOVER-style candidate-network shapes).
//! 3. [`Interpreter`] — generates [`QueryInterpretation`]s: assignments of
//!    every keyword to a template element (value predicate, table name, or
//!    attribute name) satisfying uniqueness and minimality (Def. 3.5.4).
//!    `Interpreter::top_k` emits the best k interpretations (complete and
//!    partial) by best-first search guided by [`IncrementalScorer`], never
//!    materializing the full space; the exhaustive enumerate-then-rank
//!    pipeline stays available as [`GenerationStrategy::Exhaustive`].
//! 4. [`ProbabilityModel`] — the probabilistic interpretation model
//!    (Eqs. 3.5–3.8) with the DivQ refinements (joint ATF, unmapped-keyword
//!    smoothing; Eq. 4.2), plus the SQAK and join-count baseline rankers.
//! 5. [`execute_interpretation`] — runs an interpretation against the
//!    database and materializes its joining tuple trees.
//! 6. [`SearchService`] — the concurrent serving layer: an `Arc`-shared,
//!    epoch-versioned [`SearchSnapshot`] of database + index + catalog
//!    served by N worker threads whose queries share the lock-striped
//!    [`SharedNonemptyCache`] and [`SharedExecCache`], so one user's
//!    pruning work prunes every other user's search. `SearchService::ingest`
//!    absorbs live insert batches and publishes each as the next
//!    [`SnapshotEpoch`] with a fresh shared-cache generation, keeping warm
//!    served answers byte-identical to a cold rebuild.

mod construct;
mod exec;
mod generate;
mod hierarchy;
mod interp;
mod keyword;
mod pipeline;
mod prob;
mod rank;
mod render;
mod service;
mod sharded;
mod template;
mod wal;

pub use construct::{ConstructionOption, ConstructionSession, SessionConfig};
pub use exec::{
    bound_nodes, execute_interpretation, execute_interpretation_cached, truncate_result, ExecCache,
    ExecutedResult, ResultKey, SharedExecCache,
};
pub use generate::{
    AnswerStats, GenerationStats, GenerationStrategy, Interpreter, InterpreterConfig,
    NonemptyCache, RankedAnswer, ScoredInterpretation, SharedNonemptyCache,
};
pub use hierarchy::{subsumes, QueryHierarchy};
pub use interp::{
    BindingAtom, BindingAtomKind, BindingTarget, IntentDescription, KeywordBinding,
    QueryInterpretation,
};
pub use keyword::KeywordQuery;
pub use pipeline::{
    div_pool, diversify, jaccard, BestFirstSource, DivItem, DiversifiedAnswer, DiversifiedAnswers,
    DiversifyConfig, DiversifyOptions, ExecutedPool, FixedSource, InterpretationSource,
    PostProcess, QueryPipeline,
};
pub use prob::{IncrementalScorer, ProbabilityConfig, ProbabilityModel, TemplatePrior};
pub use rank::{join_count_score, sqak_score};
pub use render::{render_natural, render_sql};
pub use service::{
    CheckpointReceipt, DiversifiedReply, DurableOptions, IngestError, IngestReceipt,
    InterpretationsReply, KeywordService, Reply, Request, RequestError, SearchReply, SearchService,
    SearchSnapshot, ServeRequests, ServiceBuilder, ServiceError, ServiceStats, SessionAnswers,
    SessionId, SessionView, SnapshotEpoch, Ticket, TimedReply,
};
pub use sharded::ShardedService;
pub use template::{QueryTemplate, TemplateCatalog, TemplateId};
pub use wal::{
    scan_wal, DurabilityError, FaultPlan, FaultPoint, Wal, WalScan, SNAPSHOT_FILE, SNAPSHOT_TMP,
    WAL_FILE,
};
