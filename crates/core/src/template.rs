//! Query templates (Def. 3.5.6): structured-query skeletons whose predicates
//! hold variables instead of keywords. A template is a connected join tree
//! over the schema graph; the catalog enumerates all shapes up to a join
//! bound, breadth-first, the way DISCOVER enumerates candidate networks
//! (§2.2.3, §3.5.2).

use keybridge_relstore::{
    Database, JoinTree, JoinTreeEdge, RelError, RelResult, SchemaGraph, TableId,
};
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a template within one [`TemplateCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// A query template: a join tree whose nodes are table *occurrences*.
///
/// Carries a precomputed table → node-occurrence index so the generator's
/// inner loop (localizing term candidates to template nodes) is a binary
/// search over a flat vector instead of a scan of `tree.nodes` per lookup.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    pub id: TemplateId,
    pub tree: JoinTree,
    /// Distinct tables of the tree, sorted, paired with the (ascending)
    /// node indexes occupied by each.
    table_index: Vec<(TableId, Vec<usize>)>,
    /// Node indexes that are leaves of the tree, ascending. Minimality
    /// (Def. 3.5.4(2)) requires every one of them to carry a binding.
    leaf_nodes: Vec<usize>,
}

impl QueryTemplate {
    /// Wrap a join tree, building the table → nodes and leaf indexes.
    pub fn new(id: TemplateId, tree: JoinTree) -> Self {
        let mut table_index: Vec<(TableId, Vec<usize>)> = Vec::new();
        for (i, &t) in tree.nodes.iter().enumerate() {
            match table_index.binary_search_by_key(&t, |(k, _)| *k) {
                Ok(pos) => table_index[pos].1.push(i),
                Err(pos) => table_index.insert(pos, (t, vec![i])),
            }
        }
        let mut degree = vec![0usize; tree.nodes.len()];
        for e in &tree.edges {
            degree[e.a] += 1;
            degree[e.b] += 1;
        }
        let leaf_nodes = (0..tree.nodes.len()).filter(|&i| degree[i] <= 1).collect();
        QueryTemplate {
            id,
            tree,
            table_index,
            leaf_nodes,
        }
    }

    /// The leaf node indexes of the tree, ascending (precomputed).
    pub fn leaves(&self) -> &[usize] {
        &self.leaf_nodes
    }

    /// Number of joins.
    pub fn join_count(&self) -> usize {
        self.tree.join_count()
    }

    /// Sorted multiset of table names — the schema-level signature used to
    /// match templates against query-log usage records.
    pub fn signature(&self, db: &Database) -> Vec<String> {
        let mut names: Vec<String> = self
            .tree
            .nodes
            .iter()
            .map(|t| db.schema().table(*t).name.clone())
            .collect();
        names.sort();
        names
    }

    /// Node indexes whose table is `t`, ascending (precomputed).
    pub fn nodes_of_table(&self, t: TableId) -> &[usize] {
        self.table_index
            .binary_search_by_key(&t, |(k, _)| *k)
            .map(|pos| self.table_index[pos].1.as_slice())
            .unwrap_or(&[])
    }

    /// The distinct tables of the template, sorted ascending.
    pub fn distinct_tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.table_index.iter().map(|(t, _)| *t)
    }

    /// Whether node `i` is a leaf of the tree (or the only node).
    pub fn is_leaf(&self, i: usize) -> bool {
        let deg = self
            .tree
            .edges
            .iter()
            .filter(|e| e.a == i || e.b == i)
            .count();
        deg <= 1
    }
}

/// Internal: a foreign key together with its referencing table, used by the
/// duplicate-fk pruning in enumeration.
#[derive(Debug, Clone, Copy)]
struct FkRef {
    id: keybridge_relstore::FkId,
    from_table: TableId,
}

/// Canonical encoding of an unordered, unrooted labeled tree (AHU-style):
/// root at every node, take the lexicographically smallest encoding. Trees
/// here are tiny (≤ ~6 nodes), so the O(n²) rooting is irrelevant.
fn canonical_code(tree: &JoinTree) -> String {
    fn encode(
        tree: &JoinTree,
        adj: &[Vec<(usize, u32)>],
        node: usize,
        parent: Option<usize>,
    ) -> String {
        let mut children: Vec<String> = adj[node]
            .iter()
            .filter(|(n, _)| Some(*n) != parent)
            .map(|(n, fk)| format!("{}:{}", fk, encode(tree, adj, *n, Some(node))))
            .collect();
        children.sort();
        format!("({}{})", tree.nodes[node].0, children.concat())
    }
    let n = tree.nodes.len();
    let mut adj = vec![Vec::new(); n];
    for e in &tree.edges {
        adj[e.a].push((e.b, e.fk.0));
        adj[e.b].push((e.a, e.fk.0));
    }
    (0..n)
        .map(|r| encode(tree, &adj, r, None))
        .min()
        .unwrap_or_default()
}

/// The enumerated template catalog of a database.
#[derive(Debug, Clone)]
pub struct TemplateCatalog {
    templates: Vec<QueryTemplate>,
    /// table -> templates containing at least one occurrence of it.
    by_table: HashMap<TableId, Vec<TemplateId>>,
}

impl TemplateCatalog {
    /// Enumerate all templates with at most `max_joins` joins, stopping with
    /// an error if more than `cap` distinct templates exist (guards against
    /// running the eager enumerator on a Freebase-scale schema — use the
    /// FreeQ lazy traversal there instead).
    pub fn enumerate(db: &Database, max_joins: usize, cap: usize) -> RelResult<Self> {
        let graph = SchemaGraph::new(db.schema());
        let mut seen: HashSet<String> = HashSet::new();
        let mut out: Vec<JoinTree> = Vec::new();
        let mut queue: VecDeque<JoinTree> = VecDeque::new();

        for (tid, _) in db.schema().tables() {
            let t = JoinTree::single(tid);
            if seen.insert(canonical_code(&t)) {
                out.push(t.clone());
                queue.push_back(t);
            }
        }

        // A foreign-key *column* of one table occurrence can participate in
        // only one join: attaching the same fk twice to the occurrence that
        // holds the column would force the two parent occurrences to be the
        // same row (the degenerate R←S→R shape DISCOVER prunes). The pk
        // side may fan out freely (two `acts` rows of one `movie`).
        let from_side_used = |tree: &JoinTree, node_idx: usize, fk: FkRef| {
            tree.edges.iter().any(|e| {
                if e.fk != fk.id || (e.a != node_idx && e.b != node_idx) {
                    return false;
                }
                let (this, other) = if e.a == node_idx {
                    (e.a, e.b)
                } else {
                    (e.b, e.a)
                };
                let this_is_from = tree.nodes[this] == fk.from_table;
                let other_is_from = tree.nodes[other] == fk.from_table;
                // Ambiguous self-fk: be conservative and treat as used.
                this_is_from || (this_is_from == other_is_from)
            })
        };

        while let Some(tree) = queue.pop_front() {
            if tree.join_count() >= max_joins {
                continue;
            }
            for (node_idx, &table) in tree.nodes.iter().enumerate() {
                for edge in graph.neighbors(table) {
                    let other = edge.other(table);
                    let fk_def = db.schema().fk(edge.fk);
                    let fkref = FkRef {
                        id: edge.fk,
                        from_table: fk_def.from.table,
                    };
                    // Skip if the existing occurrence would use its fk
                    // column a second time.
                    if fk_def.from.table == table && from_side_used(&tree, node_idx, fkref) {
                        continue;
                    }
                    let mut next = tree.clone();
                    next.nodes.push(other);
                    next.edges.push(JoinTreeEdge {
                        a: node_idx,
                        b: next.nodes.len() - 1,
                        fk: edge.fk,
                    });
                    let code = canonical_code(&next);
                    if seen.insert(code) {
                        if out.len() >= cap {
                            return Err(RelError::MalformedJoinTree(format!(
                                "template enumeration exceeded cap of {cap}"
                            )));
                        }
                        out.push(next.clone());
                        queue.push_back(next);
                    }
                }
            }
        }

        let templates: Vec<QueryTemplate> = out
            .into_iter()
            .enumerate()
            .map(|(i, tree)| QueryTemplate::new(TemplateId(i as u32), tree))
            .collect();
        let mut by_table: HashMap<TableId, Vec<TemplateId>> = HashMap::new();
        for t in &templates {
            for table in t.distinct_tables() {
                by_table.entry(table).or_default().push(t.id);
            }
        }
        Ok(TemplateCatalog {
            templates,
            by_table,
        })
    }

    /// Build a catalog from an explicit template list (e.g. administrator-
    /// defined templates, the third source in §3.5.2).
    pub fn from_trees(trees: Vec<JoinTree>) -> Self {
        let templates: Vec<QueryTemplate> = trees
            .into_iter()
            .enumerate()
            .map(|(i, tree)| QueryTemplate::new(TemplateId(i as u32), tree))
            .collect();
        let mut by_table: HashMap<TableId, Vec<TemplateId>> = HashMap::new();
        for t in &templates {
            for table in t.distinct_tables() {
                by_table.entry(table).or_default().push(t.id);
            }
        }
        TemplateCatalog {
            templates,
            by_table,
        }
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The template with id `id`.
    pub fn get(&self, id: TemplateId) -> &QueryTemplate {
        &self.templates[id.0 as usize]
    }

    /// Iterate over all templates.
    pub fn iter(&self) -> impl Iterator<Item = &QueryTemplate> {
        self.templates.iter()
    }

    /// Templates containing table `t`.
    pub fn containing(&self, t: TableId) -> &[TemplateId] {
        self.by_table.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{SchemaBuilder, TableKind};

    fn movie_db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title");
        b.table("acts", TableKind::Relation)
            .pk("id")
            .int_attr("actor_id")
            .int_attr("movie_id");
        b.foreign_key("acts", "actor_id", "actor").unwrap();
        b.foreign_key("acts", "movie_id", "movie").unwrap();
        Database::new(b.finish().unwrap())
    }

    #[test]
    fn zero_joins_yields_singletons() {
        let db = movie_db();
        let c = TemplateCatalog::enumerate(&db, 0, 100).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|t| t.join_count() == 0));
    }

    #[test]
    fn enumeration_counts_small_schema() {
        let db = movie_db();
        // 1 join: actor-acts, acts-movie => 3 + 2 = 5.
        let c1 = TemplateCatalog::enumerate(&db, 1, 100).unwrap();
        assert_eq!(c1.len(), 5);
        // 2 joins adds actor-acts-movie and actor-acts x2? No: distinct
        // shapes with 2 edges: actor-acts-movie, movie-acts (already), plus
        // acts-actor-..? actor has degree 1, so only the path through acts.
        let c2 = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        assert!(c2.len() > c1.len());
        let sigs: Vec<Vec<String>> = c2.iter().map(|t| t.signature(&db)).collect();
        assert!(sigs.contains(&vec![
            "actor".to_owned(),
            "acts".to_owned(),
            "movie".to_owned()
        ]));
    }

    #[test]
    fn self_join_shapes_enumerated() {
        let db = movie_db();
        let c4 = TemplateCatalog::enumerate(&db, 4, 1000).unwrap();
        // actor-acts-movie-acts-actor (a movie with two actors).
        let sig = vec![
            "actor".to_owned(),
            "actor".to_owned(),
            "acts".to_owned(),
            "acts".to_owned(),
            "movie".to_owned(),
        ];
        assert!(c4.iter().any(|t| t.signature(&db) == sig));
        // All trees validate against the db.
        for t in c4.iter() {
            t.tree.validate(&db).unwrap();
        }
    }

    #[test]
    fn dedup_no_isomorphic_duplicates() {
        let db = movie_db();
        let c = TemplateCatalog::enumerate(&db, 3, 1000).unwrap();
        let codes: HashSet<String> = c.iter().map(|t| canonical_code(&t.tree)).collect();
        assert_eq!(codes.len(), c.len());
    }

    #[test]
    fn cap_enforced() {
        let db = movie_db();
        let err = TemplateCatalog::enumerate(&db, 4, 3).unwrap_err();
        assert!(matches!(err, RelError::MalformedJoinTree(_)));
    }

    #[test]
    fn by_table_index() {
        let db = movie_db();
        let c = TemplateCatalog::enumerate(&db, 2, 100).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        for id in c.containing(actor) {
            assert!(c.get(*id).tree.nodes.contains(&actor));
        }
        assert!(!c.containing(actor).is_empty());
    }

    #[test]
    fn nodes_of_table_and_leaves() {
        let db = movie_db();
        let c = TemplateCatalog::enumerate(&db, 4, 1000).unwrap();
        let actor = db.schema().table_id("actor").unwrap();
        let two_actor = c
            .iter()
            .find(|t| t.nodes_of_table(actor).len() == 2)
            .expect("self-join template exists");
        let nodes = two_actor.nodes_of_table(actor);
        for n in nodes {
            assert!(two_actor.is_leaf(*n), "actor occurrences are leaves");
        }
    }

    #[test]
    fn from_trees_roundtrip() {
        let db = movie_db();
        let actor = db.schema().table_id("actor").unwrap();
        let c = TemplateCatalog::from_trees(vec![JoinTree::single(actor)]);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.get(TemplateId(0)).tree.nodes, vec![actor]);
    }
}
