//! Write-ahead log and on-disk store layout for the durable
//! [`crate::SearchService`].
//!
//! A durable service directory holds exactly two files:
//!
//! * `snapshot.kb` — the latest checkpoint: a versioned header carrying the
//!   epoch, then the [`Database`] and [`InvertedIndex`] snapshots as
//!   length-prefixed, CRC-checksummed sections. Replaced atomically
//!   (write temp → fsync → rename), so it is always a complete, valid
//!   snapshot of *some* epoch.
//! * `wal.kb` — the write-ahead log: a magic header followed by CRC-framed
//!   records, one per ingested batch, each fsynced *before* the batch's
//!   epoch is published. A record is `[len u32][crc u32][seq u64 + encoded
//!   RowBatch]`; `seq` is the epoch the batch produces, which lets recovery
//!   skip records already folded into the snapshot (the post-checkpoint /
//!   pre-truncate crash window) without ever applying a batch twice.
//!
//! Recovery ([`crate::SearchService::open`]) loads the snapshot, replays the
//! WAL tail, and *discards* a torn final record: a crash mid-append leaves a
//! frame whose length, checksum, or payload is incomplete, and the scanner
//! truncates the log back to the last whole record. `insert_batch`
//! atomicity is the replay unit, so a batch is either fully visible after
//! recovery or not at all.
//!
//! Every fallible step of the append/checkpoint path carries a
//! [`FaultPoint`] hook keyed by an injectable [`FaultPlan`], so the
//! recovery suite can deterministically "kill" the process at each point
//! and assert crash-equivalence.

use keybridge_index::InvertedIndex;
use keybridge_relstore::snapshot::{
    crc32, decode_batch, encode_batch, put_section, put_u32, put_u64, Cursor, SnapshotError,
};
use keybridge_relstore::{Database, RowBatch};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Snapshot file name inside a durable service directory.
pub const SNAPSHOT_FILE: &str = "snapshot.kb";
/// Temp file the checkpoint writes before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Write-ahead log file name inside a durable service directory.
pub const WAL_FILE: &str = "wal.kb";

const WAL_MAGIC: &[u8; 8] = b"KBWAL001";
const SNAP_MAGIC: &[u8; 8] = b"KBSNAP01";
const SNAP_VERSION: u32 = 1;
const SEC_DB: u8 = 1;
const SEC_INDEX: u8 = 2;

/// A point in the WAL/checkpoint path where the fault-injection harness can
/// simulate a crash. Each fault leaves the on-disk state exactly as a
/// process death at that instant would (including a *torn* partial write
/// for the `Mid*` points) and poisons the service's durability, modeling
/// that the process is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Die halfway through writing a WAL frame: the log gains a torn tail.
    MidWalAppend,
    /// Die after the WAL record is durable but before the epoch swap: the
    /// batch is on disk yet was never served.
    PostWalAppendPreSwap,
    /// Die halfway through writing the checkpoint temp file: a partial
    /// `snapshot.tmp` survives; the real snapshot is untouched.
    MidCheckpoint,
    /// Die after the snapshot rename but before the WAL truncation: the log
    /// still holds records the snapshot already contains.
    PostCheckpointPreTruncate,
    /// A WAL append dies halfway through its frame *and* the rollback
    /// truncation fails too: a durable torn tail remains that this handle
    /// cannot clear, so the log must poison itself.
    WalRollbackFail,
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultPoint::MidWalAppend => "mid-wal-append",
            FaultPoint::PostWalAppendPreSwap => "post-wal-append-pre-swap",
            FaultPoint::MidCheckpoint => "mid-checkpoint",
            FaultPoint::PostCheckpointPreTruncate => "post-checkpoint-pre-truncate",
            FaultPoint::WalRollbackFail => "wal-rollback-fail",
        };
        f.write_str(name)
    }
}

/// Deterministic fault injector. Arm a [`FaultPoint`] and the next time the
/// durability path passes that point it fails exactly as a crash there
/// would. One-shot: firing disarms the plan.
#[derive(Debug, Default)]
pub struct FaultPlan {
    armed: Mutex<Option<FaultPoint>>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the plan to fire at `point`.
    pub fn arm(&self, point: FaultPoint) {
        *self.armed.lock().unwrap() = Some(point);
    }

    /// Consume the armed fault if it matches `point`.
    pub(crate) fn fire(&self, point: FaultPoint) -> bool {
        let mut armed = self.armed.lock().unwrap();
        if *armed == Some(point) {
            *armed = None;
            true
        } else {
            false
        }
    }
}

/// Errors of the durability layer: the WAL, the checkpoint/snapshot files,
/// and recovery.
#[derive(Debug)]
pub enum DurabilityError {
    /// Filesystem failure; the message names the operation and cause.
    Io(String),
    /// A snapshot file failed to decode.
    Snapshot(SnapshotError),
    /// On-disk state is internally inconsistent (WAL sequence gap, replayed
    /// batch rejected, store directory already occupied, …).
    Corrupt(String),
    /// An armed [`FaultPoint`] fired (testing only).
    FaultInjected(FaultPoint),
    /// The service's durability was poisoned by an earlier failure; restart
    /// via [`crate::SearchService::open`] to recover.
    Poisoned,
    /// The service was started without a durable directory.
    NotDurable,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(msg) => write!(f, "durability io error: {msg}"),
            DurabilityError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            DurabilityError::FaultInjected(p) => write!(f, "injected fault at {p}"),
            DurabilityError::Poisoned => {
                f.write_str("durability poisoned by an earlier failure; reopen to recover")
            }
            DurabilityError::NotDurable => {
                f.write_str("service has no durable directory (started with `start`)")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e.to_string())
    }
}

impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        DurabilityError::Snapshot(e)
    }
}

fn io_ctx(op: &str, path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io(format!("{op} {}: {e}", path.display()))
}

/// An open write-ahead log positioned at its good end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Length of the validated prefix; appends start here.
    good_len: u64,
    /// Set when a failed append could not be rolled back: the file may end
    /// in a durable torn frame this handle cannot clear, so any further
    /// append through it would land *past* the tear and be silently dropped
    /// by the recovery scan. A poisoned log refuses all appends; reopen via
    /// [`Wal::open_at`] (which truncates the tear) to recover.
    poisoned: bool,
}

impl Wal {
    /// Create a fresh, empty log (truncating any existing file).
    pub fn create(dir: &Path) -> Result<Wal, DurabilityError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_ctx("create", &path, e))?;
        file.write_all(WAL_MAGIC)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_ctx("init", &path, e))?;
        Ok(Wal {
            file,
            path,
            good_len: WAL_MAGIC.len() as u64,
            poisoned: false,
        })
    }

    /// Open an existing log for appending at `good_len` — the validated
    /// prefix a [`scan_wal`] returned. Any torn tail beyond it is truncated
    /// away so new records land on a clean boundary.
    pub fn open_at(dir: &Path, good_len: u64) -> Result<Wal, DurabilityError> {
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_ctx("open", &path, e))?;
        file.set_len(good_len)
            .and_then(|()| file.sync_all())
            .and_then(|()| file.seek(SeekFrom::Start(good_len)))
            .map_err(|e| io_ctx("truncate torn tail of", &path, e))?;
        Ok(Wal {
            file,
            path,
            good_len,
            poisoned: false,
        })
    }

    /// Whether a failed rollback has poisoned this log (see [`Wal::append`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append one record — `seq` plus the encoded batch — and fsync it.
    /// Returns the frame size in bytes. On failure the file is rolled back
    /// to the previous good length; if that rollback *itself* fails the log
    /// poisons itself and every later append returns
    /// [`DurabilityError::Poisoned`], because appending past a torn frame
    /// would produce records the recovery scan silently discards. The
    /// service poisons its durability on any append error, so a torn tail
    /// left by a genuine mid-write crash is only ever seen by recovery.
    pub fn append(
        &mut self,
        seq: u64,
        batch: &RowBatch,
        faults: &FaultPlan,
    ) -> Result<u64, DurabilityError> {
        if self.poisoned {
            return Err(DurabilityError::Poisoned);
        }
        let mut payload = Vec::new();
        put_u64(&mut payload, seq);
        payload.extend_from_slice(&encode_batch(batch)?);
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);

        if faults.fire(FaultPoint::MidWalAppend) {
            // Simulate dying halfway through the frame: write a torn prefix,
            // make it durable, and fail. Recovery must discard it.
            let torn = &frame[..frame.len() / 2];
            let _ = self
                .file
                .write_all(torn)
                .and_then(|()| self.file.sync_data());
            return Err(DurabilityError::FaultInjected(FaultPoint::MidWalAppend));
        }
        if faults.fire(FaultPoint::WalRollbackFail) {
            // Simulate the worst append failure: the frame write dies midway
            // AND the rollback truncation fails, leaving a durable torn tail
            // this handle cannot clear. The log must poison itself.
            let torn = &frame[..frame.len() / 2];
            let _ = self
                .file
                .write_all(torn)
                .and_then(|()| self.file.sync_data());
            self.poisoned = true;
            return Err(DurabilityError::FaultInjected(FaultPoint::WalRollbackFail));
        }

        let write = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data());
        if let Err(e) = write {
            // Roll back to the previous good length. If the rollback fails
            // the file may end in a torn frame a later append would sit
            // *past* — recovery would then silently drop that record — so
            // the log refuses all further appends until reopened.
            let rollback = self
                .file
                .set_len(self.good_len)
                .and_then(|()| self.file.seek(SeekFrom::Start(self.good_len)).map(|_| ()));
            if rollback.is_err() {
                self.poisoned = true;
            }
            return Err(io_ctx("append to", &self.path, e));
        }
        self.good_len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Drop every record: the checkpoint has folded them into the snapshot.
    pub fn truncate(&mut self) -> Result<(), DurabilityError> {
        let header = WAL_MAGIC.len() as u64;
        self.file
            .set_len(header)
            .and_then(|()| self.file.sync_all())
            .and_then(|()| self.file.seek(SeekFrom::Start(header)))
            .map_err(|e| io_ctx("truncate", &self.path, e))?;
        self.good_len = header;
        Ok(())
    }
}

/// Result of scanning a write-ahead log.
#[derive(Debug)]
pub struct WalScan {
    /// The whole records, in file order: `(seq, batch)`.
    pub records: Vec<(u64, RowBatch)>,
    /// Byte length of the validated prefix (torn bytes excluded).
    pub good_len: u64,
    /// Bytes discarded past `good_len` — a torn final record, if any.
    pub torn_bytes: u64,
    /// Whether the file existed with a valid header. When false the log
    /// must be recreated rather than opened for append.
    pub header_valid: bool,
}

/// Scan `wal.kb` in `dir`, validating frame lengths and checksums. A record
/// whose frame is incomplete, whose CRC mismatches, or whose payload fails
/// to decode ends the scan: everything before it is the durable prefix,
/// everything from it on is a torn tail to discard. A missing file scans as
/// empty. A present file with the wrong magic is an error — it is not ours
/// to truncate.
pub fn scan_wal(dir: &Path) -> Result<WalScan, DurabilityError> {
    let path = dir.join(WAL_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_ctx("read", &path, e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                good_len: 0,
                torn_bytes: 0,
                header_valid: false,
            });
        }
        Err(e) => return Err(io_ctx("open", &path, e)),
    }
    if bytes.len() < WAL_MAGIC.len() {
        // Torn header: the log died during creation, before any record
        // could exist. Recreate it.
        return Ok(WalScan {
            records: Vec::new(),
            good_len: 0,
            torn_bytes: bytes.len() as u64,
            header_valid: false,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DurabilityError::Corrupt(format!(
            "{} is not a keybridge WAL",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos + 8 > bytes.len() {
            break; // torn frame header (or clean EOF at pos == len)
        }
        let mut hc = Cursor::new(&bytes[pos..pos + 8]);
        let len = hc.u32().expect("8 bytes present") as usize;
        let stored_crc = hc.u32().expect("8 bytes present");
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // torn payload
        };
        let payload = &bytes[start..end];
        if crc32(payload) != stored_crc {
            break; // torn or bit-flipped payload
        }
        let mut pc = Cursor::new(payload);
        let Ok(seq) = pc.u64() else { break };
        let Ok(batch) = decode_batch(&payload[8..]) else {
            break; // undecodable payload: treat as torn
        };
        records.push((seq, batch));
        pos = end;
    }
    Ok(WalScan {
        records,
        good_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        header_valid: true,
    })
}

/// Write the combined `snapshot.kb` (epoch + database + index) atomically:
/// temp file, fsync, rename, best-effort directory sync. Returns the
/// snapshot size in bytes. The [`FaultPoint::MidCheckpoint`] hook dies
/// halfway through the temp write, leaving the previous snapshot intact.
pub fn write_snapshot_file(
    dir: &Path,
    epoch: u64,
    db: &Database,
    index: &InvertedIndex,
    faults: &FaultPlan,
) -> Result<u64, DurabilityError> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, SNAP_VERSION);
    put_u64(&mut out, epoch);
    put_section(&mut out, SEC_DB, &db.snapshot_bytes()?);
    put_section(&mut out, SEC_INDEX, &index.snapshot_bytes()?);

    let tmp = dir.join(SNAPSHOT_TMP);
    let path = dir.join(SNAPSHOT_FILE);
    if faults.fire(FaultPoint::MidCheckpoint) {
        // Simulate dying mid-checkpoint: a partial temp file survives.
        let torn = &out[..out.len() / 2];
        let _ = std::fs::write(&tmp, torn);
        return Err(DurabilityError::FaultInjected(FaultPoint::MidCheckpoint));
    }
    let mut f = File::create(&tmp).map_err(|e| io_ctx("create", &tmp, e))?;
    f.write_all(&out)
        .and_then(|()| f.sync_all())
        .map_err(|e| io_ctx("write", &tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, &path).map_err(|e| io_ctx("rename into", &path, e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all(); // make the rename durable where supported
    }
    Ok(out.len() as u64)
}

/// Read and decode `snapshot.kb` from `dir`, returning `(epoch, db, index)`.
/// A stale `snapshot.tmp` left by a mid-checkpoint crash is deleted.
pub fn read_snapshot_file(dir: &Path) -> Result<(u64, Database, InvertedIndex), DurabilityError> {
    let tmp = dir.join(SNAPSHOT_TMP);
    if tmp.exists() {
        let _ = std::fs::remove_file(&tmp);
    }
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    File::open(&path)
        .map_err(|e| io_ctx("open", &path, e))?
        .read_to_end(&mut bytes)
        .map_err(|e| io_ctx("read", &path, e))?;
    let mut c = Cursor::new(&bytes);
    if c.take(8).map_err(DurabilityError::Snapshot)? != SNAP_MAGIC {
        return Err(DurabilityError::Snapshot(SnapshotError::BadMagic));
    }
    let version = c.u32().map_err(DurabilityError::Snapshot)?;
    if version != SNAP_VERSION {
        return Err(DurabilityError::Snapshot(
            SnapshotError::UnsupportedVersion(version),
        ));
    }
    let epoch = c.u64().map_err(DurabilityError::Snapshot)?;
    let db_bytes = c.section(SEC_DB).map_err(DurabilityError::Snapshot)?;
    let idx_bytes = c.section(SEC_INDEX).map_err(DurabilityError::Snapshot)?;
    let db = Database::from_snapshot_bytes(db_bytes)?;
    let index = InvertedIndex::from_snapshot_bytes(idx_bytes)?;
    Ok((epoch, db, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{SchemaBuilder, TableKind, Value};

    fn tiny_db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("doc", TableKind::Entity).pk("id").text_attr("body");
        let mut db = Database::new(b.finish().unwrap());
        let doc = db.schema().table_id("doc").unwrap();
        db.insert(doc, vec![Value::Int(1), Value::text("hello wal")])
            .unwrap();
        db
    }

    fn batch(db: &Database, ids: &[i64]) -> RowBatch {
        let doc = db.schema().table_id("doc").unwrap();
        ids.iter()
            .map(|&i| (doc, vec![Value::Int(i), Value::text(format!("row {i}"))]))
            .collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("keybridge-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let db = tiny_db();
        let faults = FaultPlan::new();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &batch(&db, &[10, 11]), &faults).unwrap();
        wal.append(2, &batch(&db, &[12]), &faults).unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert!(scan.header_valid);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].0, 1);
        assert_eq!(scan.records[0].1, batch(&db, &[10, 11]));
        assert_eq!(scan.records[1].0, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tmp_dir("truncate");
        let db = tiny_db();
        let faults = FaultPlan::new();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &batch(&db, &[10]), &faults).unwrap();
        wal.truncate().unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.header_valid);
        // Appends continue cleanly after a truncation.
        wal.append(5, &batch(&db, &[20]), &faults).unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_discarded_at_every_byte() {
        let dir = tmp_dir("torn");
        let db = tiny_db();
        let faults = FaultPlan::new();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &batch(&db, &[10]), &faults).unwrap();
        let keep = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        wal.append(2, &batch(&db, &[11]), &faults).unwrap();
        drop(wal);
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        for cut in keep as usize..full.len() {
            std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
            let scan = scan_wal(&dir).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.good_len, keep, "cut at {cut}");
            assert_eq!(scan.torn_bytes, (cut as u64) - keep, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_append_fault_leaves_torn_tail() {
        let dir = tmp_dir("fault");
        let db = tiny_db();
        let faults = FaultPlan::new();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &batch(&db, &[10]), &faults).unwrap();
        faults.arm(FaultPoint::MidWalAppend);
        let err = wal.append(2, &batch(&db, &[11]), &faults).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::FaultInjected(FaultPoint::MidWalAppend)
        ));
        drop(wal);
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 1, "torn record discarded");
        assert!(scan.torn_bytes > 0);
        // Reopening at the good length clears the tail for new appends.
        let mut wal = Wal::open_at(&dir, scan.good_len).unwrap();
        wal.append(2, &batch(&db, &[11]), &FaultPlan::new())
            .unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rollback_poisons_log_until_reopen() {
        let dir = tmp_dir("rollbackfail");
        let db = tiny_db();
        let faults = FaultPlan::new();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(1, &batch(&db, &[10]), &faults).unwrap();
        let good = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();

        faults.arm(FaultPoint::WalRollbackFail);
        let err = wal.append(2, &batch(&db, &[11]), &faults).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::FaultInjected(FaultPoint::WalRollbackFail)
        ));
        assert!(wal.is_poisoned());

        // The poisoned handle refuses further appends — were it to accept
        // one, the record would land past the durable torn frame and the
        // recovery scan would silently drop it.
        let err = wal
            .append(3, &batch(&db, &[12]), &FaultPlan::new())
            .unwrap_err();
        assert!(matches!(err, DurabilityError::Poisoned));

        // Recovery sees the good prefix, discards the tear…
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.good_len, good);
        assert!(scan.torn_bytes > 0);

        // …and a reopen at the good length clears the tear and serves
        // appends again.
        drop(wal);
        let mut wal = Wal::open_at(&dir, scan.good_len).unwrap();
        assert!(!wal.is_poisoned());
        wal.append(2, &batch(&db, &[11]), &FaultPlan::new())
            .unwrap();
        let scan = scan_wal(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_foreign_files() {
        let dir = tmp_dir("missing");
        let scan = scan_wal(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.header_valid);
        std::fs::write(dir.join(WAL_FILE), b"definitely not a wal").unwrap();
        assert!(matches!(
            scan_wal(&dir).unwrap_err(),
            DurabilityError::Corrupt(_)
        ));
        // A header shorter than the magic is a torn creation, not foreign.
        std::fs::write(dir.join(WAL_FILE), b"KBW").unwrap();
        assert!(!scan_wal(&dir).unwrap().header_valid);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_file_roundtrip_and_tmp_cleanup() {
        let dir = tmp_dir("snapfile");
        let db = tiny_db();
        let index = InvertedIndex::build(&db);
        let faults = FaultPlan::new();
        let n = write_snapshot_file(&dir, 7, &db, &index, &faults).unwrap();
        assert!(n > 0);
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp renamed away");
        // A stale tmp from a crashed checkpoint is swept on read.
        std::fs::write(dir.join(SNAPSHOT_TMP), b"partial").unwrap();
        let (epoch, db2, index2) = read_snapshot_file(&dir).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(db2.snapshot_bytes(), db.snapshot_bytes());
        assert_eq!(index2.snapshot_bytes(), index.snapshot_bytes());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_checkpoint_fault_preserves_previous_snapshot() {
        let dir = tmp_dir("midckpt");
        let db = tiny_db();
        let index = InvertedIndex::build(&db);
        let faults = FaultPlan::new();
        write_snapshot_file(&dir, 1, &db, &index, &faults).unwrap();
        let before = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        faults.arm(FaultPoint::MidCheckpoint);
        let err = write_snapshot_file(&dir, 2, &db, &index, &faults).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::FaultInjected(FaultPoint::MidCheckpoint)
        ));
        assert!(dir.join(SNAPSHOT_TMP).exists(), "partial tmp left behind");
        assert_eq!(
            std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap(),
            before,
            "real snapshot untouched"
        );
        let (epoch, ..) = read_snapshot_file(&dir).unwrap();
        assert_eq!(epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
