//! Sharded scatter-gather serving — the same [`ServeRequests`] surface as
//! the single-shard [`crate::SearchService`], over K FK-closed partitions.
//!
//! ## Architecture
//!
//! Rows are partitioned across K shards by [`assign_shards`]: whole
//! foreign-key components land on one shard, so every join tree an
//! interpretation can execute stays *within* a shard and the global result
//! set is the disjoint union of the per-shard result sets. Each shard owns
//! its own [`Database`], its own local [`InvertedIndex`], its own
//! [`SharedExecCache`] generation, and its own [`SnapshotEpoch`] chain — an
//! ingest touching shards {i, j} republishes only those two shards; every
//! other shard keeps its `Arc`'d state *and* its warm caches.
//!
//! The coordinator keeps what sharding cannot split:
//!
//! - the **global inverted index** (generation must see global term
//!   statistics to rank interpretations byte-identically to one store),
//! - the **pk maps** (global `RowId` → primary key per table, to mint
//!   [`ResultKey`]s without a global database),
//! - the global [`SharedNonemptyCache`] / result-level [`SharedExecCache`]
//!   generations (swapped on every ingest, like the single-shard service).
//!
//! ## Execution: two-phase scatter-gather
//!
//! Serving a query runs the identical wave loop as
//! [`crate::QueryPipeline::answers`] / `diversified`, except each
//! interpretation's execution scatters:
//!
//! 1. **Reduce**: every shard harvests its local candidate rows and runs
//!    the full Yannakakis semi-join reduction; it reports its per-node
//!    `given` and reduced-set cardinalities and *blocks*.
//! 2. **Plan + gather**: the coordinator sums the cardinalities — under
//!    FK-closed partitioning the sums equal the single-store values — and
//!    forces one global [`JoinPlan`] on every shard. Shards enumerate their
//!    (limit-capped) result prefixes, translate local row ids to global
//!    through their monotone row maps, and the coordinator merges by the
//!    plan's visit-order row tuple. Because the executor enumerates
//!    lexicographically in visit order and each shard's output is the
//!    order-preserved restriction of the global enumeration, the merged
//!    prefix is **byte-identical** to the single-store oracle.
//!
//! The one deliberate divergence: the `max_intermediate` abort guard fires
//! per shard, so a query that aborts on one big store may succeed sharded
//! (each shard's intermediate stays under the bound). The differential
//! fixtures never trigger the guard; byte-identity there is exact.
//!
//! Coordinator pool size equals every shard pool size, so at most one job
//! per shard pool exists per in-flight request and the two-phase barrier
//! cannot deadlock: every in-flight request's shard jobs hold threads
//! simultaneously, reduce always completes, and the plan (or an abort) is
//! always delivered.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use keybridge_index::InvertedIndex;
use keybridge_relstore::{
    assign_shards, execute_reduced_in, hash_shard, plan_join_order, reduce_join_tree,
    split_database, AttrRef, BatchError, Candidates, Database, ExecOptions, ExecStats, JoinPlan,
    JoinTree, JoinedRow, RelResult, RowBatch, RowId, Schema, ShardAssignment, TableId,
};

use crate::exec::{bound_nodes, intersect_sorted, with_result_cache};
use crate::exec::{ExecCache, ExecutedResult, ResultKey, SharedExecCache};
use crate::generate::{
    AnswerStats, Interpreter, NonemptyCache, RankedAnswer, ScoredInterpretation,
    SharedNonemptyCache,
};
use crate::interp::{BindingTarget, QueryInterpretation};
use crate::keyword::KeywordQuery;
use crate::pipeline::{
    diversify, BestFirstSource, DivItem, DiversifiedAnswer, DiversifyOptions, InterpretationSource,
};
use crate::service::{
    panic_to_error, DiversifiedReply, IngestError, IngestReceipt, Reply, Request, SearchReply,
    SearchSnapshot, ServeRequests, ServiceError, ServiceStats, SnapshotEpoch, Ticket, TimedReply,
};
use crate::template::TemplateCatalog;

// ---------------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------------

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of named threads draining one job queue. Jobs run under
/// `catch_unwind` so a panicking job never takes its thread down — the
/// coordinator observes the failure through the job's dropped reply
/// channel, exactly like the single-shard worker loop observes a dead
/// sibling. Dropping the pool hangs up the queue and joins every thread.
struct WorkerPool {
    tx: Option<Sender<PoolJob>>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn start(name: &str, threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<PoolJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the pop.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        let Ok(job) = job else { return };
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    })
                    .expect("spawn shard worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads: handles,
        }
    }

    fn submit(&self, job: PoolJob) {
        if let Some(tx) = &self.tx {
            // Only fails when every thread is gone; callers observe that
            // through their reply channel.
            let _ = tx.send(job);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take(); // hang up: threads drain the queue, then exit
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Published state.
// ---------------------------------------------------------------------------

/// One shard's immutable serving state. Untouched shards keep their `Arc`
/// (and warm predicate cache) across ingests.
struct ShardState {
    /// This shard's own epoch chain: bumped only when an ingest routes rows
    /// *here*.
    epoch: SnapshotEpoch,
    db: Arc<Database>,
    /// Local inverted index over the shard's rows (local row ids).
    index: Arc<InvertedIndex>,
    /// Shard-generation predicate cache (local row ids — never valid across
    /// this shard's epochs, so it is replaced whenever `epoch` bumps).
    exec: Arc<SharedExecCache>,
    /// Per table: local row index → global [`RowId`]. Strictly increasing,
    /// because a shard's rows are inserted in global order.
    row_map: Arc<Vec<Vec<RowId>>>,
}

/// One published generation of the whole sharded store: the shard vector
/// plus everything global. Swapped atomically under the writer lock, pinned
/// per request by the coordinator — the same snapshot-isolation discipline
/// as the single-shard `ServingState`.
struct ShardSet {
    /// Global epoch: one bump per accepted ingest (matches the single-shard
    /// oracle's epoch for the same replay).
    generation: SnapshotEpoch,
    shards: Vec<Arc<ShardState>>,
    /// The coordinator's *global* inverted index — identical to the oracle's
    /// (generation must rank on global term statistics).
    index: Arc<InvertedIndex>,
    /// Per table: global row index → primary key. The coordinator's stand-in
    /// for `db.pk_value` when minting [`ResultKey`]s.
    pk_maps: Arc<Vec<Vec<i64>>>,
    /// Global generation-side verdict cache (swapped every ingest).
    nonempty: Arc<SharedNonemptyCache>,
    /// Global *result-level* execution cache (swapped every ingest). Its
    /// predicate tier stays empty — predicate rows are shard-local.
    exec: Arc<SharedExecCache>,
}

impl ShardSet {
    fn shard_epochs(&self) -> Vec<SnapshotEpoch> {
        self.shards.iter().map(|s| s.epoch).collect()
    }
}

/// Writer-side state, serialized under one mutex like the single-shard
/// writer: the global shard directory plus the ever-touched set.
struct ShardedWriter {
    /// `(table, pk) → shard` for every row ever placed — committed rows and
    /// (when started with a pre-computed plan) rows scheduled for future
    /// ingest. Routing honors scheduled placements so a replayed holdout
    /// lands exactly where the full-corpus partitioning put it.
    assignment: ShardAssignment,
    touched_ever: Vec<bool>,
}

/// Everything a coordinator job needs, cloneable into the job closure.
struct ServeCtx {
    base: Arc<SearchSnapshot>,
    /// Empty database over the schema — the generation side only reads
    /// schema names from it (verified: `tpl.signature(db)`), never rows.
    schema_db: Arc<Database>,
    current: Arc<Mutex<Arc<ShardSet>>>,
    pools: Arc<Vec<Arc<WorkerPool>>>,
    served: Arc<AtomicUsize>,
    /// Gathered-but-never-merged rows: what the bounded top-k merge left
    /// unconsumed once the global prefix was provably complete.
    shard_rows_skipped: Arc<AtomicUsize>,
}

impl Clone for ServeCtx {
    fn clone(&self) -> Self {
        ServeCtx {
            base: Arc::clone(&self.base),
            schema_db: Arc::clone(&self.schema_db),
            current: Arc::clone(&self.current),
            pools: Arc::clone(&self.pools),
            served: Arc::clone(&self.served),
            shard_rows_skipped: Arc::clone(&self.shard_rows_skipped),
        }
    }
}

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

/// K-shard scatter-gather server behind the unified [`ServeRequests`]
/// seam. Answers are byte-identical (answer content: interpretations,
/// JTTs in global row ids, scores, keys) to a [`crate::SearchService`]
/// over the unsharded store; see the module docs for the argument.
///
/// Construct through [`crate::ServiceBuilder::shards`].
pub struct ShardedService {
    // Dropped first: joins the coordinator threads, after which no new
    // shard jobs can be submitted and the pools (Arc'd by in-flight jobs)
    // wind down on their own Drop.
    coordinator: WorkerPool,
    ctx: ServeCtx,
    writer: Mutex<ShardedWriter>,
    epoch_swaps: AtomicUsize,
    shard_epoch_swaps: AtomicUsize,
    stale_evictions: AtomicUsize,
    rows_ingested: AtomicUsize,
}

impl ShardedService {
    /// Partition `snapshot`'s database into `shards` FK-closed shards (a
    /// deterministic LPT over the foreign-key components) and start serving
    /// with `workers` threads on the coordinator *and* on each shard.
    pub fn start(snapshot: Arc<SearchSnapshot>, shards: usize, workers: usize) -> ShardedService {
        let assignment = assign_shards(&snapshot.db, shards.max(1));
        Self::start_with_assignment(snapshot, assignment, workers)
    }

    /// [`Self::start`] with an explicit shard directory. The assignment may
    /// cover *more* rows than the snapshot holds (a plan computed over a
    /// full corpus before rows were held out for replay); ingest then
    /// routes each held-out row to its planned shard. Every row the
    /// snapshot *does* hold must be assigned.
    pub fn start_with_assignment(
        snapshot: Arc<SearchSnapshot>,
        assignment: ShardAssignment,
        workers: usize,
    ) -> ShardedService {
        let split = split_database(&snapshot.db, &assignment)
            .expect("shard assignment covers every snapshot row");
        let table_count = snapshot.db.schema().table_count();
        let shard_states: Vec<Arc<ShardState>> = split
            .dbs
            .into_iter()
            .zip(split.row_maps)
            .map(|(db, row_map)| {
                let index = InvertedIndex::build(&db);
                Arc::new(ShardState {
                    epoch: SnapshotEpoch::default(),
                    db: Arc::new(db),
                    index: Arc::new(index),
                    exec: Arc::new(SharedExecCache::new()),
                    row_map: Arc::new(row_map),
                })
            })
            .collect();
        let pk_maps: Vec<Vec<i64>> = (0..table_count)
            .map(|t| {
                let table = TableId(t as u32);
                snapshot
                    .db
                    .table(table)
                    .rows()
                    .map(|(r, _)| snapshot.db.pk_value(table, r))
                    .collect()
            })
            .collect();
        let set = Arc::new(ShardSet {
            generation: SnapshotEpoch::default(),
            shards: shard_states,
            index: Arc::new(snapshot.index.clone()),
            pk_maps: Arc::new(pk_maps),
            nonempty: Arc::new(SharedNonemptyCache::new()),
            exec: Arc::new(SharedExecCache::new()),
        });
        let schema_db = Arc::new(Database::new(snapshot.db.schema().clone()));
        let shard_count = assignment.shards();
        let pools: Vec<Arc<WorkerPool>> = (0..shard_count)
            .map(|s| Arc::new(WorkerPool::start(&format!("kb-shard{s}"), workers)))
            .collect();
        ShardedService {
            coordinator: WorkerPool::start("kb-coord", workers),
            ctx: ServeCtx {
                base: snapshot,
                schema_db,
                current: Arc::new(Mutex::new(set)),
                pools: Arc::new(pools),
                served: Arc::new(AtomicUsize::new(0)),
                shard_rows_skipped: Arc::new(AtomicUsize::new(0)),
            },
            writer: Mutex::new(ShardedWriter {
                assignment,
                touched_ever: vec![false; shard_count],
            }),
            epoch_swaps: AtomicUsize::new(0),
            shard_epoch_swaps: AtomicUsize::new(0),
            stale_evictions: AtomicUsize::new(0),
            rows_ingested: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ctx.pools.len()
    }

    /// The per-shard epoch vector of the currently published generation.
    pub fn shard_epochs(&self) -> Vec<SnapshotEpoch> {
        self.ctx.current.lock().unwrap().shard_epochs()
    }

    /// Apply one insert batch: validate exactly like
    /// [`Database::insert_batch`] (same errors, same order, with the whole
    /// sharded store standing in for "the database"), route every row to
    /// the single shard its foreign-key parents pin (planned placement
    /// honored, rootless rows hashed), and publish a generation in which
    /// **only the touched shards** carry a new epoch and a fresh predicate
    /// cache.
    pub fn ingest(&self, batch: &RowBatch) -> Result<IngestReceipt, IngestError> {
        let mut writer = self.writer.lock().unwrap();
        let set = Arc::clone(&self.ctx.current.lock().unwrap());
        let schema = self.ctx.base.db.schema();
        let table_count = schema.table_count();

        // Does (table, pk) exist in the *store*? The directory also holds
        // planned (not yet ingested) placements, so hint presence alone is
        // not existence — probe the hinted shard.
        let in_store = |table: TableId, pk: i64| -> Option<usize> {
            writer
                .assignment
                .shard_of(table, pk)
                .filter(|&s| set.shards[s].db.table(table).by_pk(pk).is_some())
        };

        // Phase 1 (mirrors `insert_batch`): shape, then pk uniqueness
        // against the store and within the batch.
        let mut new_pks: Vec<HashSet<i64>> = vec![HashSet::new(); table_count];
        let mut row_pks: Vec<i64> = Vec::with_capacity(batch.len());
        let mut batch_pos: HashMap<(u32, i64), usize> = HashMap::new();
        for (i, (table, row)) in batch.iter().enumerate() {
            let pk_val = check_shape(schema, *table, row, i).map_err(IngestError::Batch)?;
            let t = table.0 as usize;
            if in_store(*table, pk_val).is_some() || !new_pks[t].insert(pk_val) {
                return Err(IngestError::Batch(BatchError::DuplicatePrimaryKey {
                    table: schema.table(*table).name.clone(),
                    key: pk_val,
                    batch_row: i,
                }));
            }
            batch_pos.insert((table.0, pk_val), i);
            row_pks.push(pk_val);
        }
        // Referential integrity: a parent may live anywhere in the store or
        // in this batch. Same fk-column order as `insert_batch`.
        for (i, (table, row)) in batch.iter().enumerate() {
            for (_, fk) in schema.fks().filter(|(_, fk)| fk.from.table == *table) {
                if let Some(key) = row[fk.from.attr.0 as usize].as_int() {
                    let parent = fk.to.table;
                    if in_store(parent, key).is_none() && !new_pks[parent.0 as usize].contains(&key)
                    {
                        let t = schema.table(*table);
                        return Err(IngestError::Batch(BatchError::DanglingForeignKey {
                            table: t.name.clone(),
                            attr: t.attr(fk.from.attr).name.clone(),
                            key,
                            batch_row: i,
                        }));
                    }
                }
            }
        }

        // Route every row to one shard. Constraints per row: its planned
        // placement (if the directory has one) and the shards of its
        // foreign-key parents (in-store, or earlier-routed batch rows).
        // Multi-pass so intra-batch parents may appear in any order; a
        // stuck cycle pins its first row from whatever constraints are
        // already resolved. Conflicting constraints are unroutable.
        let shard_count = writer.assignment.shards();
        let mut route: Vec<Option<usize>> = vec![None; batch.len()];
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for (i, (table, row)) in batch.iter().enumerate() {
                if route[i].is_some() {
                    continue;
                }
                match resolve_route(
                    schema, &writer, &set, &batch_pos, &route, *table, row, row_pks[i], false,
                ) {
                    Resolution::Shard(s) => {
                        route[i] = Some(s);
                        progressed = true;
                    }
                    Resolution::Unrouted => {
                        route[i] = Some(hash_shard(*table, row_pks[i], shard_count));
                        progressed = true;
                    }
                    Resolution::Pending => all_done = false,
                    Resolution::Conflict => {
                        return Err(IngestError::Unroutable {
                            table: schema.table(*table).name.clone(),
                            key: row_pks[i],
                        });
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                // Intra-batch fk cycle: force-resolve the first pending row
                // from its already-resolved constraints only.
                let i = route.iter().position(Option::is_none).expect("pending row");
                let (table, row) = &batch[i];
                route[i] = Some(
                    match resolve_route(
                        schema, &writer, &set, &batch_pos, &route, *table, row, row_pks[i], true,
                    ) {
                        Resolution::Shard(s) => s,
                        Resolution::Unrouted => hash_shard(*table, row_pks[i], shard_count),
                        Resolution::Conflict => {
                            return Err(IngestError::Unroutable {
                                table: schema.table(*table).name.clone(),
                                key: row_pks[i],
                            });
                        }
                        Resolution::Pending => unreachable!("forced resolution never pends"),
                    },
                );
            }
        }
        // Every fk edge must be intra-shard, else a shard-local join would
        // drop results the oracle finds. Forced cycle resolution can in
        // principle split an edge; refuse such batches atomically.
        for (i, (table, row)) in batch.iter().enumerate() {
            let my_shard = route[i].expect("routed above");
            for (_, fk) in schema.fks().filter(|(_, fk)| fk.from.table == *table) {
                if let Some(key) = row[fk.from.attr.0 as usize].as_int() {
                    let parent_shard = in_store(fk.to.table, key)
                        .or_else(|| batch_pos.get(&(fk.to.table.0, key)).and_then(|&j| route[j]))
                        .expect("parent validated above");
                    if parent_shard != my_shard {
                        return Err(IngestError::Unroutable {
                            table: schema.table(*table).name.clone(),
                            key: row_pks[i],
                        });
                    }
                }
            }
        }

        // Apply, in full batch order: clone only the touched shards' state,
        // insert locally, maintain the local index, the global index, the
        // row/pk maps, and the directory.
        let touched: BTreeSet<usize> = route.iter().map(|r| r.expect("routed")).collect();
        let mut new_dbs: HashMap<usize, Database> = touched
            .iter()
            .map(|&s| (s, (*set.shards[s].db).clone()))
            .collect();
        let mut new_indexes: HashMap<usize, InvertedIndex> = touched
            .iter()
            .map(|&s| (s, (*set.shards[s].index).clone()))
            .collect();
        let mut new_row_maps: HashMap<usize, Vec<Vec<RowId>>> = touched
            .iter()
            .map(|&s| (s, (*set.shards[s].row_map).clone()))
            .collect();
        let mut pk_maps = (*set.pk_maps).clone();
        let mut global_index = (*set.index).clone();
        for (i, (table, row)) in batch.iter().enumerate() {
            let s = route[i].expect("routed");
            let t = table.0 as usize;
            let db = new_dbs.get_mut(&s).expect("touched shard");
            let local = db
                .insert(*table, row.clone())
                .expect("batch validated before apply");
            new_indexes
                .get_mut(&s)
                .expect("touched shard")
                .index_row(db, *table, local);
            let global = RowId(pk_maps[t].len() as u32);
            new_row_maps.get_mut(&s).expect("touched shard")[t].push(global);
            global_index.index_row_values(schema, *table, global, row);
            pk_maps[t].push(row_pks[i]);
            writer.assignment.record(*table, row_pks[i], s);
        }

        // Publish: global epoch bumps, touched shards bump their own chain
        // and drop their predicate-cache generation, everyone else keeps
        // their Arc (and their warm cache).
        let mut stale = set.nonempty.len() + set.exec.predicate_count() + set.exec.result_count();
        let mut shards = set.shards.clone();
        for &s in &touched {
            let old = &set.shards[s];
            stale += old.exec.predicate_count() + old.exec.result_count();
            shards[s] = Arc::new(ShardState {
                epoch: SnapshotEpoch(old.epoch.0 + 1),
                db: Arc::new(new_dbs.remove(&s).expect("touched shard")),
                index: Arc::new(new_indexes.remove(&s).expect("touched shard")),
                exec: Arc::new(SharedExecCache::new()),
                row_map: Arc::new(new_row_maps.remove(&s).expect("touched shard")),
            });
        }
        let generation = SnapshotEpoch(set.generation.0 + 1);
        let next = Arc::new(ShardSet {
            generation,
            shards,
            index: Arc::new(global_index),
            pk_maps: Arc::new(pk_maps),
            nonempty: Arc::new(SharedNonemptyCache::new()),
            exec: Arc::new(SharedExecCache::new()),
        });
        *self.ctx.current.lock().unwrap() = next;
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        self.shard_epoch_swaps
            .fetch_add(touched.len(), Ordering::Relaxed);
        self.stale_evictions.fetch_add(stale, Ordering::Relaxed);
        self.rows_ingested.fetch_add(batch.len(), Ordering::Relaxed);
        for s in touched {
            writer.touched_ever[s] = true;
        }
        Ok(IngestReceipt {
            epoch: generation,
            rows: batch.len(),
        })
    }
}

impl ServeRequests for ShardedService {
    fn submit_request(&self, request: Request) -> Ticket<Reply> {
        let (reply, rx) = channel();
        let ctx = self.ctx.clone();
        self.coordinator.submit(Box::new(move || {
            // Pin one generation for the whole request (snapshot isolation
            // across every shard at once).
            let set = match ctx.current.lock() {
                Ok(guard) => Arc::clone(&guard),
                Err(_) => return,
            };
            let out = serve_sharded(&ctx, &set, request);
            ctx.served.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(out);
        }));
        Ticket::raw(rx)
    }

    fn ingest_batch(&self, batch: &RowBatch) -> Result<IngestReceipt, ServiceError> {
        self.ingest(batch).map_err(ServiceError::from)
    }

    fn service_stats(&self) -> ServiceStats {
        let set = Arc::clone(&self.ctx.current.lock().unwrap());
        let mut predicate_entries = set.exec.predicate_count();
        let mut predicate_hits = set.exec.predicate_hits();
        let mut result_entries = set.exec.result_count();
        let mut result_hits = set.exec.result_hits();
        for s in &set.shards {
            predicate_entries += s.exec.predicate_count();
            predicate_hits += s.exec.predicate_hits();
            result_entries += s.exec.result_count();
            result_hits += s.exec.result_hits();
        }
        ServiceStats {
            served: self.ctx.served.load(Ordering::Relaxed),
            epoch: set.generation.0,
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            stale_evictions: self.stale_evictions.load(Ordering::Relaxed),
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            nonempty_entries: set.nonempty.len(),
            nonempty_hits: set.nonempty.hits(),
            predicate_entries,
            predicate_hits,
            result_entries,
            result_hits,
            sessions_open: 0,
            sessions_evicted: 0,
            sessions_expired: 0,
            wal_batches: 0,
            wal_bytes: 0,
            checkpoints: 0,
            recovery_replayed_batches: 0,
            shard_epoch_swaps: self.shard_epoch_swaps.load(Ordering::Relaxed),
            shard_rows_skipped: self.ctx.shard_rows_skipped.load(Ordering::Relaxed),
            shards_touched: self
                .writer
                .lock()
                .unwrap()
                .touched_ever
                .iter()
                .filter(|&&t| t)
                .count(),
        }
    }

    fn serving_epoch(&self) -> SnapshotEpoch {
        self.ctx.current.lock().unwrap().generation
    }

    #[cfg(any(test, feature = "test-seams"))]
    fn submit_sleeping(&self, dur: std::time::Duration) -> Ticket<TimedReply<SearchReply>> {
        let (reply, rx) = channel();
        let ctx = self.ctx.clone();
        self.coordinator.submit(Box::new(move || {
            let set = match ctx.current.lock() {
                Ok(guard) => Arc::clone(&guard),
                Err(_) => return,
            };
            std::thread::sleep(dur);
            ctx.served.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Reply::AnswersTimed(TimedReply {
                completed_at: Instant::now(),
                result: Ok(SearchReply {
                    epoch: set.generation,
                    shard_epochs: set.shard_epochs(),
                    answers: Vec::new(),
                    stats: AnswerStats::default(),
                }),
            }));
        }));
        Ticket::raw(rx).expecting(crate::service::reply_answers_timed)
    }
}

// ---------------------------------------------------------------------------
// Ingest helpers.
// ---------------------------------------------------------------------------

/// Mirror of `Database::check_shape` + `shape_batch_error`, against the
/// schema alone (the coordinator holds no global database). Same checks,
/// same order, same error shapes.
fn check_shape(
    schema: &Schema,
    table: TableId,
    row: &[keybridge_relstore::Value],
    batch_row: usize,
) -> Result<i64, BatchError> {
    let def = schema.table(table);
    if row.len() != def.attrs.len() {
        return Err(BatchError::Arity {
            table: def.name.clone(),
            batch_row,
            expected: def.attrs.len(),
            got: row.len(),
        });
    }
    for (v, a) in row.iter().zip(&def.attrs) {
        if !v.conforms_to(a.ty) {
            return Err(BatchError::Type {
                table: def.name.clone(),
                attr: a.name.clone(),
                batch_row,
            });
        }
    }
    row[def.pk.0 as usize]
        .as_int()
        .ok_or_else(|| BatchError::NullPrimaryKey {
            table: def.name.clone(),
            batch_row,
        })
}

enum Resolution {
    /// All resolved constraints agree on this shard.
    Shard(usize),
    /// No constraints at all (rootless, unplanned row): caller hashes.
    Unrouted,
    /// An intra-batch parent is not routed yet; try again next pass (only
    /// when `forced` is false).
    Pending,
    /// Two resolved constraints name different shards.
    Conflict,
}

/// The shard constraints of one batch row: its planned placement in the
/// directory plus every foreign-key parent's shard.
#[allow(clippy::too_many_arguments)]
fn resolve_route(
    schema: &Schema,
    writer: &ShardedWriter,
    set: &ShardSet,
    batch_pos: &HashMap<(u32, i64), usize>,
    route: &[Option<usize>],
    table: TableId,
    row: &[keybridge_relstore::Value],
    pk: i64,
    forced: bool,
) -> Resolution {
    let mut req: Option<usize> = None;
    let mut constrain = |s: usize| -> bool {
        match req {
            Some(prev) => prev == s,
            None => {
                req = Some(s);
                true
            }
        }
    };
    if let Some(h) = writer.assignment.shard_of(table, pk) {
        if !constrain(h) {
            unreachable!("first constraint cannot conflict");
        }
    }
    for (_, fk) in schema.fks().filter(|(_, fk)| fk.from.table == table) {
        let Some(key) = row[fk.from.attr.0 as usize].as_int() else {
            continue;
        };
        let parent = fk.to.table;
        let parent_shard = match writer
            .assignment
            .shard_of(parent, key)
            .filter(|&s| set.shards[s].db.table(parent).by_pk(key).is_some())
        {
            Some(s) => Some(s),
            None => match batch_pos.get(&(parent.0, key)) {
                Some(&j) => match route[j] {
                    Some(s) => Some(s),
                    None if forced => None, // skip unresolved constraints
                    None => return Resolution::Pending,
                },
                // Parent only planned in the directory (validated, so this
                // means it is in the batch — handled above — or in store).
                None => writer.assignment.shard_of(parent, key),
            },
        };
        if let Some(s) = parent_shard {
            if !constrain(s) {
                return Resolution::Conflict;
            }
        }
    }
    match req {
        Some(s) => Resolution::Shard(s),
        None => Resolution::Unrouted,
    }
}

// ---------------------------------------------------------------------------
// Serving: the coordinator-side pipeline mirror.
// ---------------------------------------------------------------------------

/// Serve one request against a pinned generation — the sharded counterpart
/// of the single-shard `serve_request`, with the same panic containment
/// per arm and the same completion-stamp placement.
fn serve_sharded(ctx: &ServeCtx, set: &Arc<ShardSet>, request: Request) -> Reply {
    match request {
        Request::Answers { query, k } => Reply::Answers(
            catch_unwind(AssertUnwindSafe(|| answers_on_set(ctx, set, &query, k)))
                .map_err(panic_to_error),
        ),
        Request::Interpretations { query, k } => Reply::Interpretations(
            catch_unwind(AssertUnwindSafe(|| {
                let interpreter = coordinator_interpreter(ctx, set);
                let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&set.nonempty));
                interpreter.top_k_with_cache(&query, k, true, &mut gen_cache)
            }))
            .map_err(panic_to_error),
        ),
        Request::Diversified { query, opts } => Reply::Diversified(
            catch_unwind(AssertUnwindSafe(|| {
                diversified_on_set(ctx, set, &query, opts)
            }))
            .map_err(panic_to_error),
        ),
        Request::AnswersTimed { query, k } => {
            let out = catch_unwind(AssertUnwindSafe(|| answers_on_set(ctx, set, &query, k)));
            Reply::AnswersTimed(TimedReply {
                completed_at: Instant::now(),
                result: out.map_err(panic_to_error),
            })
        }
        Request::DiversifiedTimed { query, opts } => {
            let out = catch_unwind(AssertUnwindSafe(|| {
                diversified_on_set(ctx, set, &query, opts)
            }));
            Reply::DiversifiedTimed(TimedReply {
                completed_at: Instant::now(),
                result: out.map_err(panic_to_error),
            })
        }
    }
}

/// The generation-side interpreter: global index (oracle-identical term
/// statistics), schema-only database (generation reads only schema names).
fn coordinator_interpreter<'a>(ctx: &'a ServeCtx, set: &'a ShardSet) -> Interpreter<'a> {
    Interpreter::new(
        &ctx.schema_db,
        &set.index,
        &ctx.base.catalog,
        ctx.base.config.clone(),
    )
}

/// Streamed top-k answers: the exact wave loop of
/// [`crate::QueryPipeline::answers`], with scatter-gather execution in
/// place of the single-store executor and pk-map key minting in place of
/// `db.pk_value`. Verdict seeding from executor predicates is skipped (the
/// coordinator's result cache holds no predicate rows); seeded verdicts
/// are index-derivable, so generation output — and therefore the answers —
/// is unchanged, only the uncompared seeding counter differs.
fn answers_on_set(ctx: &ServeCtx, set: &ShardSet, query: &KeywordQuery, k: usize) -> SearchReply {
    let mut stats = AnswerStats::default();
    let mut answers: Vec<RankedAnswer> = Vec::new();
    if k > 0 && !query.is_empty() {
        let interpreter = coordinator_interpreter(ctx, set);
        let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&set.nonempty));
        let mut exec_cache = ExecCache::with_shared(Arc::clone(&set.exec));
        let mut source = BestFirstSource::new(&interpreter, query, true);
        let start = k.max(8).min(interpreter.config().max_interpretations);
        let mut failed: HashSet<QueryInterpretation> = HashSet::new();
        let mut gen_k = start;
        loop {
            stats.waves += 1;
            let (ranked, gstats) = source.pull(gen_k, &mut gen_cache);
            stats.gen = gstats;
            stats.generated = ranked.len();
            answers.clear();
            for s in ranked.iter() {
                let remaining = k - answers.len().min(k);
                if remaining == 0 {
                    break;
                }
                let Some(res) = executed_sharded(
                    ctx,
                    set,
                    s,
                    remaining,
                    &mut exec_cache,
                    &mut stats,
                    &mut failed,
                ) else {
                    continue;
                };
                collect_answers(
                    &ctx.base.catalog,
                    &set.pk_maps,
                    s,
                    &res,
                    remaining,
                    &mut answers,
                );
            }
            let exhausted = ranked.len() < gen_k || gen_k >= source.cap();
            if k - answers.len().min(k) == 0 || exhausted {
                break;
            }
            gen_k = gen_k.saturating_mul(4).min(source.cap());
        }
        stats.predicate_cache_hits = exec_cache.predicate_hits;
        stats.result_cache_hits = exec_cache.result_hits;
        stats.answers = answers.len();
    }
    SearchReply {
        epoch: set.generation,
        shard_epochs: set.shard_epochs(),
        answers,
        stats,
    }
}

/// Diversified top-k: the exact single-wave pool build of
/// [`crate::QueryPipeline::diversified`] over scatter-gather execution.
fn diversified_on_set(
    ctx: &ServeCtx,
    set: &ShardSet,
    query: &KeywordQuery,
    opts: DiversifyOptions,
) -> DiversifiedReply {
    let mut stats = AnswerStats::default();
    let mut items: Vec<DivItem> = Vec::new();
    let mut keys: Vec<BTreeSet<ResultKey>> = Vec::new();
    let mut picks: Vec<ScoredInterpretation> = Vec::new();
    if opts.pool > 0 && !query.is_empty() {
        let interpreter = coordinator_interpreter(ctx, set);
        let mut gen_cache = NonemptyCache::with_shared(Arc::clone(&set.nonempty));
        let mut exec_cache = ExecCache::with_shared(Arc::clone(&set.exec));
        let mut source = BestFirstSource::new(&interpreter, query, true);
        let start = opts
            .pool
            .min(interpreter.config().max_interpretations.max(1));
        let mut failed: HashSet<QueryInterpretation> = HashSet::new();
        // One wave (no growth), like the single-shard pool build.
        stats.waves += 1;
        let (ranked, gstats) = source.pull(start, &mut gen_cache);
        stats.gen = gstats;
        stats.generated = ranked.len();
        for s in ranked.iter() {
            if opts.cap == 0 {
                break;
            }
            let Some(res) = executed_sharded(
                ctx,
                set,
                s,
                opts.cap,
                &mut exec_cache,
                &mut stats,
                &mut failed,
            ) else {
                continue;
            };
            items.push(DivItem {
                relevance: s.probability,
                atoms: s
                    .interpretation
                    .atoms(&ctx.base.catalog)
                    .into_iter()
                    .collect(),
            });
            keys.push(prefix_keys(
                &ctx.base.catalog,
                &set.pk_maps,
                &s.interpretation,
                &res,
                opts.cap,
            ));
            picks.push(s.clone());
        }
        stats.predicate_cache_hits = exec_cache.predicate_hits;
        stats.result_cache_hits = exec_cache.result_hits;
    }
    let selected = diversify(&items, opts.config);
    let answers: Vec<DiversifiedAnswer> = selected
        .into_iter()
        .map(|i| DiversifiedAnswer {
            interpretation: picks[i].interpretation.clone(),
            log_score: picks[i].log_score,
            relevance: items[i].relevance,
            atoms: items[i].atoms.clone(),
            keys: keys[i].clone(),
            pool_rank: i,
        })
        .collect();
    stats.answers = answers.len();
    DiversifiedReply {
        epoch: set.generation,
        shard_epochs: set.shard_epochs(),
        answers,
        pool: items.len(),
        stats,
    }
}

/// One interpretation through the cached scatter-gather executor — the
/// per-candidate body of the pipeline's drive loop: tombstone errored
/// interpretations, count fresh executions once, drop empty results.
fn executed_sharded(
    ctx: &ServeCtx,
    set: &ShardSet,
    s: &ScoredInterpretation,
    remaining: usize,
    exec_cache: &mut ExecCache,
    stats: &mut AnswerStats,
    failed: &mut HashSet<QueryInterpretation>,
) -> Option<Arc<ExecutedResult>> {
    let opts = ExecOptions {
        limit: remaining,
        count_only: false,
        ..ExecOptions::default()
    };
    if failed.contains(&s.interpretation) {
        return None;
    }
    let hits_before = exec_cache.result_hits;
    let res = match with_result_cache(exec_cache, &s.interpretation, opts, |_| {
        scatter_execute(ctx, set, &s.interpretation, opts)
    }) {
        Ok(r) => r,
        Err(_) => {
            stats.exec_errors += 1;
            failed.insert(s.interpretation.clone());
            return None;
        }
    };
    if exec_cache.result_hits == hits_before {
        stats.executed += 1;
        stats.exec.absorb(&res.stats);
        if !res.is_empty() {
            stats.nonempty += 1;
        }
    }
    if res.is_empty() {
        return None;
    }
    Some(res)
}

// ---------------------------------------------------------------------------
// Scatter-gather execution.
// ---------------------------------------------------------------------------

/// What a shard reports after its semi-join reduction pass: per-node
/// candidate counts before reduction, per-node reduced-set sizes, and the
/// reduction's executor counters.
type ReduceReport = RelResult<(Vec<usize>, Vec<usize>, ExecStats)>;

/// Execute one interpretation across every shard and merge the prefixes
/// into the oracle's result (see the module docs for why the merge is
/// byte-identical). Returns global row ids.
fn scatter_execute(
    ctx: &ServeCtx,
    set: &ShardSet,
    interp: &QueryInterpretation,
    opts: ExecOptions,
) -> RelResult<ExecutedResult> {
    let catalog = &ctx.base.catalog;
    let tpl = catalog.get(interp.template);
    let tree = &tpl.tree;
    let n = tree.nodes.len();

    struct ShardRun {
        plan_tx: Sender<Option<JoinPlan>>,
        red_rx: Receiver<ReduceReport>,
        out_rx: Receiver<RelResult<(Vec<JoinedRow>, ExecStats)>>,
    }
    let runs: Vec<ShardRun> = set
        .shards
        .iter()
        .enumerate()
        .map(|(si, shard)| {
            let (plan_tx, plan_rx) = channel::<Option<JoinPlan>>();
            let (red_tx, red_rx) = channel();
            let (out_tx, out_rx) = channel();
            let shard = Arc::clone(shard);
            let interp = interp.clone();
            let tree = tree.clone();
            ctx.pools[si].submit(Box::new(move || {
                shard_execute(&shard, &interp, &tree, opts, red_tx, plan_rx, out_tx);
            }));
            ShardRun {
                plan_tx,
                red_rx,
                out_rx,
            }
        })
        .collect();

    // Phase 1: gather per-shard reduction cardinalities. Under FK-closed
    // partitioning the global reduced set per node is the disjoint union of
    // the per-shard sets, so the sums equal the oracle's values.
    let mut given_sum = vec![0usize; n];
    let mut size_sum = vec![0usize; n];
    let mut stats = ExecStats::default();
    let mut failure = None;
    for run in &runs {
        match run.red_rx.recv() {
            Ok(Ok((given, sizes, red_stats))) => {
                for i in 0..n {
                    given_sum[i] += given[i];
                    size_sum[i] += sizes[i];
                }
                stats.absorb(&red_stats);
            }
            // Reduction errors are schema-level (tree validation): every
            // shard fails identically, exactly as the oracle would.
            Ok(Err(e)) => failure = failure.or(Some(e)),
            // A shard job panicked (its channel died): surface as a worker
            // panic through the serving arm's catch_unwind.
            Err(_) => panic!("shard worker disappeared during reduction"),
        }
    }
    if let Some(e) = failure {
        for run in &runs {
            let _ = run.plan_tx.send(None);
        }
        return Err(e);
    }
    // Oracle mirror: `execute_hash_join` returns empty (reduction stats
    // only) when any *global* reduced set is empty.
    if size_sum.contains(&0) {
        for run in &runs {
            let _ = run.plan_tx.send(None);
        }
        return Ok(ExecutedResult {
            jtts: Vec::new(),
            keys: BTreeSet::new(),
            all_keys: BTreeSet::new(),
            stats,
        });
    }

    // Phase 2: force the oracle's plan (computed from the summed
    // cardinalities) on every shard, gather the limit-capped prefixes.
    let plan = plan_join_order(tree, &given_sum, &size_sum);
    for run in &runs {
        let _ = run.plan_tx.send(Some(plan.clone()));
    }
    let mut shard_rows: Vec<Vec<JoinedRow>> = Vec::with_capacity(runs.len());
    for run in &runs {
        match run.out_rx.recv() {
            Ok(Ok((rows, exec_stats))) => {
                stats.absorb(&exec_stats);
                shard_rows.push(rows);
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => panic!("shard worker disappeared during execution"),
        }
    }

    // Bounded merge: the executor enumerates lexicographically by the plan's
    // visit-order row tuple, and shard row maps are monotone, so each shard's
    // prefix arrives already sorted by the *global* visit tuple. Cross-shard
    // tuples never compare equal (row ownership is disjoint), so a k-way
    // streaming min-merge that stops at `opts.limit` yields byte-for-byte the
    // same prefix as concatenate + sort + truncate — without ever looking at
    // the rows the merge leaves behind.
    let visit = visit_order(tree, &plan);
    fn key<'a>(visit: &'a [usize], row: &'a JoinedRow) -> impl Iterator<Item = RowId> + 'a {
        visit.iter().map(move |&v| row[v])
    }
    let total: usize = shard_rows.iter().map(Vec::len).sum();
    let mut idx = vec![0usize; shard_rows.len()];
    let mut merged: Vec<JoinedRow> = Vec::with_capacity(opts.limit.min(total));
    while merged.len() < opts.limit {
        let mut best: Option<usize> = None;
        for (s, rows) in shard_rows.iter().enumerate() {
            if idx[s] < rows.len()
                && best.is_none_or(|b| {
                    key(&visit, &rows[idx[s]])
                        .cmp(key(&visit, &shard_rows[b][idx[b]]))
                        .is_lt()
                })
            {
                best = Some(s);
            }
        }
        let Some(s) = best else { break };
        merged.push(std::mem::take(&mut shard_rows[s][idx[s]]));
        idx[s] += 1;
    }
    let consumed: usize = idx.iter().sum();
    ctx.shard_rows_skipped
        .fetch_add(total - consumed, Ordering::Relaxed);
    stats.result_count = merged.len();
    let bound = bound_nodes(interp, n);
    let (keys, all_keys) = collect_result_keys(&set.pk_maps, &tree.nodes, &bound, &merged);
    Ok(ExecutedResult {
        jtts: merged,
        keys,
        all_keys,
        stats,
    })
}

/// Node visit order of a plan: the seed, then each attached edge's new
/// node — the column order the executor's enumeration is lexicographic in.
fn visit_order(tree: &JoinTree, plan: &JoinPlan) -> Vec<usize> {
    let mut joined = vec![false; tree.nodes.len()];
    joined[plan.seed] = true;
    let mut visit = Vec::with_capacity(tree.nodes.len());
    visit.push(plan.seed);
    for &ei in &plan.attach {
        let e = &tree.edges[ei];
        let new = if joined[e.a] { e.b } else { e.a };
        joined[new] = true;
        visit.push(new);
    }
    visit
}

/// The per-shard job: harvest local candidates through the shard's
/// predicate cache, reduce, report cardinalities, await the global plan,
/// execute, translate local rows to global ids. Runs entirely on the
/// shard's pool; a dropped plan channel (coordinator abort or panic) ends
/// the job silently.
fn shard_execute(
    shard: &ShardState,
    interp: &QueryInterpretation,
    tree: &JoinTree,
    opts: ExecOptions,
    red_tx: Sender<ReduceReport>,
    plan_rx: Receiver<Option<JoinPlan>>,
    out_tx: Sender<RelResult<(Vec<JoinedRow>, ExecStats)>>,
) {
    let n = tree.nodes.len();
    // Candidate harvest, exactly like `execute_inner`: predicate row sets
    // through the (shard-local) cache, sorted-merge intersection for
    // multiple predicates on one node.
    let mut cache = ExecCache::with_shared(Arc::clone(&shard.exec));
    let mut per_node: Vec<Option<Vec<RowId>>> = vec![None; n];
    for b in &interp.bindings {
        if let BindingTarget::Value { node, attr } = b.target {
            let aref = AttrRef {
                table: tree.nodes[node],
                attr,
            };
            let rows = (*cache.rows(&shard.index, &b.keywords, aref)).clone();
            per_node[node] = Some(match per_node[node].take() {
                Some(mut prev) => {
                    intersect_sorted(&mut prev, &rows);
                    prev
                }
                None => rows,
            });
        }
    }
    let reduced = match reduce_join_tree(&shard.db, tree, &Candidates { per_node }) {
        Ok(r) => r,
        Err(e) => {
            let _ = red_tx.send(Err(e));
            return;
        }
    };
    let sizes: Vec<usize> = reduced.sets.iter().map(Vec::len).collect();
    let _ = red_tx.send(Ok((reduced.given, sizes, reduced.stats)));
    let Ok(Some(plan)) = plan_rx.recv() else {
        return; // aborted (empty result, error, or coordinator gone)
    };
    let result = execute_reduced_in(&shard.db, tree, reduced.sets, &plan, opts, &mut cache.arena)
        .map(|out| {
            let rows = out
                .rows
                .into_iter()
                .map(|jtt| {
                    jtt.iter()
                        .enumerate()
                        .map(|(node, local)| {
                            shard.row_map[tree.nodes[node].0 as usize][local.index()]
                        })
                        .collect()
                })
                .collect();
            (rows, out.stats)
        });
    let _ = out_tx.send(result);
}

// ---------------------------------------------------------------------------
// pk-map key minting (mirrors of the db-backed helpers in `crate::exec` /
// `crate::generate`, which the coordinator cannot use: its database is
// schema-only).
// ---------------------------------------------------------------------------

fn pk_of(pk_maps: &[Vec<i64>], table: TableId, row: RowId) -> i64 {
    pk_maps[table.0 as usize][row.index()]
}

/// Mirror of `exec::collect_result_keys` over the pk maps.
fn collect_result_keys(
    pk_maps: &[Vec<i64>],
    nodes: &[TableId],
    bound: &[bool],
    jtts: &[JoinedRow],
) -> (BTreeSet<ResultKey>, BTreeSet<ResultKey>) {
    let mut keys = BTreeSet::new();
    let mut all_keys = BTreeSet::new();
    for jtt in jtts {
        for (node, row) in jtt.iter().enumerate() {
            let table = nodes[node];
            let key = ResultKey {
                table,
                pk: pk_of(pk_maps, table, *row),
            };
            all_keys.insert(key);
            if bound[node] {
                keys.insert(key);
            }
        }
    }
    (keys, all_keys)
}

/// Mirror of `Interpreter::collect_answers` over the pk maps.
fn collect_answers(
    catalog: &TemplateCatalog,
    pk_maps: &[Vec<i64>],
    s: &ScoredInterpretation,
    res: &ExecutedResult,
    remaining: usize,
    answers: &mut Vec<RankedAnswer>,
) {
    let tpl = catalog.get(s.interpretation.template);
    let bound = bound_nodes(&s.interpretation, tpl.tree.nodes.len());
    for jtt in res.jtts.iter().take(remaining) {
        let mut keys: Vec<ResultKey> = jtt
            .iter()
            .enumerate()
            .filter(|(node, _)| bound[*node])
            .map(|(node, row)| {
                let table = tpl.tree.nodes[node];
                ResultKey {
                    table,
                    pk: pk_of(pk_maps, table, *row),
                }
            })
            .collect();
        keys.sort();
        keys.dedup();
        answers.push(RankedAnswer {
            interpretation: s.interpretation.clone(),
            log_score: s.log_score,
            jtt: jtt.clone(),
            keys,
        });
    }
}

/// Mirror of `exec::prefix_keys` over the pk maps.
fn prefix_keys(
    catalog: &TemplateCatalog,
    pk_maps: &[Vec<i64>],
    interp: &QueryInterpretation,
    res: &ExecutedResult,
    cap: usize,
) -> BTreeSet<ResultKey> {
    if res.jtts.len() <= cap {
        return res.keys.clone();
    }
    let tpl = catalog.get(interp.template);
    let bound = bound_nodes(interp, tpl.tree.nodes.len());
    collect_result_keys(pk_maps, &tpl.tree.nodes, &bound, &res.jtts[..cap]).0
}

// Everything a coordinator or shard job touches crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedService>();
};
