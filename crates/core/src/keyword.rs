//! Keyword queries (Def. 3.5.1): a bag of words, duplicates allowed.

use keybridge_index::Tokenizer;
use std::collections::HashMap;
use std::fmt;

/// A keyword query. Terms are lowercase tokens in input order; the same term
/// may appear more than once and each occurrence is interpreted separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    terms: Vec<String>,
}

impl KeywordQuery {
    /// Build from already-tokenized terms.
    pub fn from_terms(terms: Vec<String>) -> Self {
        KeywordQuery { terms }
    }

    /// Tokenize raw user input. The tokenizer should be the one the target
    /// index was built with so query terms line up with dictionary terms.
    pub fn parse(tokenizer: &Tokenizer, input: &str) -> Self {
        KeywordQuery {
            terms: tokenizer.tokenize(input),
        }
    }

    /// Number of keywords (with duplicates).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no keywords.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The terms in input order.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// The terms as a multiset: term -> multiplicity.
    pub fn term_counts(&self) -> HashMap<&str, usize> {
        let mut m = HashMap::new();
        for t in &self.terms {
            *m.entry(t.as_str()).or_default() += 1;
        }
        m
    }

    /// Distinct terms in first-seen order.
    pub fn distinct_terms(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.terms
            .iter()
            .filter(|t| seen.insert(t.as_str()))
            .map(String::as_str)
            .collect()
    }
}

impl fmt::Display for KeywordQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.terms.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_uses_tokenizer() {
        let t = Tokenizer::new();
        let q = KeywordQuery::parse(&t, "Hanks, Terminal!");
        assert_eq!(q.terms(), &["hanks", "terminal"]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.to_string(), "hanks terminal");
    }

    #[test]
    fn duplicates_allowed() {
        let q = KeywordQuery::from_terms(vec!["tom".into(), "tom".into(), "hanks".into()]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.term_counts()["tom"], 2);
        assert_eq!(q.distinct_terms(), vec!["tom", "hanks"]);
    }

    #[test]
    fn empty_query() {
        let t = Tokenizer::new();
        let q = KeywordQuery::parse(&t, "   ");
        assert!(q.is_empty());
        assert_eq!(q.distinct_terms().len(), 0);
    }
}
