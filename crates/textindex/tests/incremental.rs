//! Property test: incremental posting/statistic maintenance
//! (`InvertedIndex::index_row`) is *exactly* equivalent to a full
//! `InvertedIndex::build` rebuild — same postings in the same (row-sorted)
//! order, same sorted `attrs_containing` slices, same integer statistics,
//! and therefore bit-identical ATF / IDF / joint-ATF values — over
//! randomized insert sequences on a randomized schema.
//!
//! This is the correctness spine under the live-ingestion path: the serving
//! layer swaps in incrementally maintained indexes, and the end-to-end
//! differential suite (`tests/ingest.rs` at the workspace root) only holds
//! if the index layer is exact.

use keybridge_index::InvertedIndex;
use keybridge_relstore::{AttrRef, Database, SchemaBuilder, TableKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small overlapping vocabulary so terms collide across rows, attributes,
/// and tables (the interesting splice cases).
const VOCAB: &[&str] = &[
    "tom", "hanks", "terminal", "cruise", "meg", "ryan", "top", "gun", "drama", "velocity",
];

fn random_text(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.08) {
        return Value::Null; // null text values must stay a no-op
    }
    let n = rng.gen_range(1..=4);
    let words: Vec<&str> = (0..n)
        .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())])
        .collect();
    Value::text(words.join(" "))
}

/// A 3-table schema with one single-text, one double-text, and one
/// text-free table, so every maintenance shape is exercised.
fn schema() -> Database {
    let mut b = SchemaBuilder::new();
    b.table("person", TableKind::Entity)
        .pk("id")
        .text_attr("name");
    b.table("work", TableKind::Entity)
        .pk("id")
        .text_attr("title")
        .text_attr("summary")
        .int_attr("year");
    b.table("link", TableKind::Relation)
        .pk("id")
        .int_attr("a")
        .int_attr("b");
    Database::new(b.finish().unwrap())
}

/// Assert full structural + statistical equality of two indexes.
fn assert_equivalent(live: &InvertedIndex, rebuilt: &InvertedIndex, ctx: &str) {
    let mut live_terms: Vec<&str> = live.terms().collect();
    let mut rebuilt_terms: Vec<&str> = rebuilt.terms().collect();
    live_terms.sort_unstable();
    rebuilt_terms.sort_unstable();
    assert_eq!(live_terms, rebuilt_terms, "{ctx}: dictionaries differ");

    let attrs: Vec<AttrRef> = {
        let mut v: Vec<AttrRef> = rebuilt.indexed_attrs().collect();
        v.sort();
        v
    };
    for &attr in &attrs {
        assert_eq!(
            live.attr_stats(attr),
            rebuilt.attr_stats(attr),
            "{ctx}: attr_stats({attr:?}) diverged"
        );
        // Bit-exact derived statistics (f64 equality is intentional).
        assert_eq!(
            live.atf_denominator(attr, 1.0).to_bits(),
            rebuilt.atf_denominator(attr, 1.0).to_bits(),
            "{ctx}: atf_denominator({attr:?})"
        );
    }

    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for term in &live_terms {
        assert_eq!(
            live.attrs_containing(term),
            rebuilt.attrs_containing(term),
            "{ctx}: attrs_containing({term}) diverged"
        );
        for &attr in rebuilt.attrs_containing(term) {
            let a = live.postings(term, attr).expect("live has term/attr");
            let b = rebuilt.postings(term, attr).expect("rebuilt has term/attr");
            assert_eq!(
                a.rows().collect::<Vec<_>>(),
                b.rows().collect::<Vec<_>>(),
                "{ctx}: postings({term}, {attr:?})"
            );
            assert_eq!(
                a.occurrences, b.occurrences,
                "{ctx}: occurrences({term}, {attr:?})"
            );
            assert_eq!(
                live.idf(term, attr).to_bits(),
                rebuilt.idf(term, attr).to_bits(),
                "{ctx}: idf({term}, {attr:?})"
            );
            assert_eq!(
                live.atf(term, attr, 1.0).to_bits(),
                rebuilt.atf(term, attr, 1.0).to_bits(),
                "{ctx}: atf({term}, {attr:?})"
            );
        }
        // Joint statistics over random keyword bags (incl. absent pairs).
        let other = VOCAB[rng.gen_range(0..VOCAB.len())];
        let bag = vec![(*term).to_owned(), other.to_owned()];
        for &attr in &attrs {
            assert_eq!(
                live.joint_atf(&bag, attr, 1.0).to_bits(),
                rebuilt.joint_atf(&bag, attr, 1.0).to_bits(),
                "{ctx}: joint_atf({bag:?}, {attr:?})"
            );
            assert_eq!(
                live.rows_with_all(&bag, attr),
                rebuilt.rows_with_all(&bag, attr),
                "{ctx}: rows_with_all({bag:?}, {attr:?})"
            );
        }
    }
}

/// One randomized run: preload a prefix, build the live index, then insert
/// the remaining rows one at a time in random table order, comparing against
/// a from-scratch rebuild at every checkpoint.
fn run_sequence(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = schema();
    let person = db.schema().table_id("person").unwrap();
    let work = db.schema().table_id("work").unwrap();
    let link = db.schema().table_id("link").unwrap();

    let preload = rng.gen_range(0..8);
    let mut next_pk = [1i64; 3];
    let mut make_row = |table_idx: usize, rng: &mut StdRng| -> (usize, Vec<Value>) {
        let pk = next_pk[table_idx];
        next_pk[table_idx] += 1;
        let row = match table_idx {
            0 => vec![Value::Int(pk), random_text(rng)],
            1 => vec![
                Value::Int(pk),
                random_text(rng),
                random_text(rng),
                Value::Int(1990 + pk),
            ],
            _ => vec![Value::Int(pk), Value::Int(pk), Value::Int(pk)],
        };
        (table_idx, row)
    };
    let tables = [person, work, link];
    for _ in 0..preload {
        let (t, row) = make_row(rng.gen_range(0..3), &mut rng);
        db.insert(tables[t], row).unwrap();
    }

    let mut live = InvertedIndex::build(&db);
    let inserts = rng.gen_range(8..28);
    for step in 0..inserts {
        let (t, row) = make_row(rng.gen_range(0..3), &mut rng);
        let rid = db.insert(tables[t], row).unwrap();
        live.index_row(&db, tables[t], rid);
        // Checkpoint roughly every third insert plus always at the end.
        if step % 3 == 0 || step + 1 == inserts {
            let rebuilt = InvertedIndex::build(&db);
            assert_equivalent(&live, &rebuilt, &format!("seed {seed} step {step}"));
        }
    }
}

#[test]
fn incremental_equals_rebuild_randomized() {
    for seed in [11, 22, 33, 44, 55] {
        run_sequence(seed);
    }
}

#[test]
fn index_batch_equals_rebuild() {
    let mut db = schema();
    let person = db.schema().table_id("person").unwrap();
    let work = db.schema().table_id("work").unwrap();
    db.insert(person, vec![Value::Int(1), Value::text("tom hanks")])
        .unwrap();
    let mut live = InvertedIndex::build(&db);
    let mut fresh = Vec::new();
    for (pk, name) in [(2, "meg ryan"), (3, "tom cruise")] {
        let rid = db
            .insert(person, vec![Value::Int(pk), Value::text(name)])
            .unwrap();
        fresh.push((person, rid));
    }
    let rid = db
        .insert(
            work,
            vec![
                Value::Int(1),
                Value::text("top gun"),
                Value::text("tom cruise drama"),
                Value::Int(1986),
            ],
        )
        .unwrap();
    fresh.push((work, rid));
    live.index_batch(&db, &fresh);
    let rebuilt = InvertedIndex::build(&db);
    assert_equivalent(&live, &rebuilt, "batch");
}
