//! # keybridge-index
//!
//! Inverted index over the textual attributes of a [`keybridge_relstore`]
//! database, in the style of §2.2.1 of the paper (Fig. 2.1): the dictionary
//! maps terms to postings at *(table, attribute, row)* granularity, and the
//! index additionally maintains the per-attribute statistics that the
//! probabilistic interpretation model consumes:
//!
//! * **TF / ATF** — attribute term frequency (Eq. 3.8): how typical a term is
//!   among the values of an attribute, with additive smoothing;
//! * **joint ATF** — co-occurrence frequency of a keyword *bag* inside one
//!   attribute (the DivQ refinement of Eq. 4.2);
//! * **DF / IDF** — per-attribute document frequency, used by the SQAK
//!   baseline's TF-IDF scoring;
//! * **schema terms** — matches of keywords against table and attribute
//!   names (metadata interpretations, §2.2.7).

mod index;
mod token;

pub use index::{
    for_each_joint_row, AttrStats, InvertedIndex, Postings, PostingsRepr, SchemaTarget,
    TermAttrEntry, TermIndex,
};
pub use token::Tokenizer;
