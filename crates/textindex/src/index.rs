//! The inverted index and its attribute statistics.
//!
//! Storage layout: one [`TermEntry`] per dictionary term holding *parallel,
//! attribute-sorted* vectors of attributes and postings. The layout serves
//! the interpretation generator's hot paths directly:
//!
//! * [`InvertedIndex::attrs_containing`] returns a borrowed slice — no
//!   allocation, deterministic order — because candidate harvesting runs
//!   once per distinct query term per query;
//! * [`InvertedIndex::postings`] is a binary search in a short vector
//!   (terms rarely occur in more than a handful of attributes);
//! * [`InvertedIndex::rows_with_all`] and [`InvertedIndex::joint_atf`]
//!   intersect postings smallest-list-first by sorted merge, never building
//!   per-call hash sets; [`InvertedIndex::has_row_with_all`] is the
//!   early-exit variant backing the generator's non-emptiness cache.

use crate::token::Tokenizer;
use keybridge_relstore::snapshot::{
    put_section, put_str, put_u32, put_u64, put_u8, Cursor, SnapshotError,
};
use keybridge_relstore::{AttrId, AttrRef, Database, RowId, TableId};
use std::collections::HashMap;

/// Postings of one term within one attribute: sorted `(row, tf)` pairs.
#[derive(Debug, Clone, Default)]
pub struct TermAttrEntry {
    /// Rows of the attribute's table containing the term, with per-row term
    /// frequency, sorted by row id.
    pub rows: Vec<(RowId, u32)>,
    /// Total occurrences of the term across all rows of this attribute.
    pub occurrences: u64,
}

impl TermAttrEntry {
    /// Number of rows containing the term (document frequency).
    pub fn df(&self) -> usize {
        self.rows.len()
    }

    /// Term frequency in `row`, by binary search (rows are sorted).
    fn tf(&self, row: RowId) -> Option<u32> {
        self.rows
            .binary_search_by_key(&row, |&(r, _)| r)
            .ok()
            .map(|i| self.rows[i].1)
    }
}

/// All postings of one term, over every attribute it occurs in.
/// `attrs` is sorted; `postings[i]` belongs to `attrs[i]`.
#[derive(Debug, Clone, Default)]
struct TermEntry {
    attrs: Vec<AttrRef>,
    postings: Vec<TermAttrEntry>,
}

impl TermEntry {
    fn get(&self, attr: AttrRef) -> Option<&TermAttrEntry> {
        self.attrs
            .binary_search(&attr)
            .ok()
            .map(|i| &self.postings[i])
    }
}

/// Aggregate statistics of one indexed attribute.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttrStats {
    /// Number of rows in the attribute's table.
    pub row_count: u32,
    /// Total token count over all values of this attribute.
    pub total_tokens: u64,
    /// Number of distinct terms occurring in this attribute.
    pub vocabulary: u32,
}

/// A schema element whose *name* matches a keyword (metadata interpretation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaTarget {
    /// The keyword matches a table name token.
    Table(TableId),
    /// The keyword matches an attribute name token.
    Attribute(AttrRef),
}

/// Inverted index over every text attribute of a database.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// term -> attribute-sorted postings.
    dict: HashMap<String, TermEntry>,
    /// Statistics per indexed attribute.
    attr_stats: HashMap<AttrRef, AttrStats>,
    /// term -> schema elements whose name contains the term.
    schema_terms: HashMap<String, Vec<SchemaTarget>>,
    tokenizer: Tokenizer,
}

impl InvertedIndex {
    /// Index all text attributes of `db` with the default tokenizer.
    pub fn build(db: &Database) -> Self {
        Self::build_with(db, Tokenizer::new())
    }

    /// Index all text attributes of `db` with a custom tokenizer.
    pub fn build_with(db: &Database, tokenizer: Tokenizer) -> Self {
        let mut staging: HashMap<String, HashMap<AttrRef, TermAttrEntry>> = HashMap::new();
        let mut attr_stats: HashMap<AttrRef, AttrStats> = HashMap::new();

        for (tid, tdef) in db.schema().tables() {
            let store = db.table(tid);
            for (aid, _) in tdef.text_attrs() {
                let aref = AttrRef {
                    table: tid,
                    attr: aid,
                };
                let stats = attr_stats.entry(aref).or_default();
                stats.row_count = store.len() as u32;
                for (rid, row) in store.rows() {
                    let Some(text) = row[aid.0 as usize].as_text() else {
                        continue;
                    };
                    let tokens = tokenizer.tokenize(text);
                    stats.total_tokens += tokens.len() as u64;
                    let mut counts: HashMap<&str, u32> = HashMap::new();
                    for t in &tokens {
                        *counts.entry(t.as_str()).or_default() += 1;
                    }
                    for (term, tf) in counts {
                        let entry = staging
                            .entry(term.to_owned())
                            .or_default()
                            .entry(aref)
                            .or_default();
                        entry.rows.push((rid, tf));
                        entry.occurrences += tf as u64;
                    }
                }
            }
        }

        // Freeze staged postings into attribute-sorted parallel vectors and
        // tally per-attribute vocabulary sizes in the same pass.
        let mut dict: HashMap<String, TermEntry> = HashMap::with_capacity(staging.len());
        for (term, by_attr) in staging {
            let mut pairs: Vec<(AttrRef, TermAttrEntry)> = by_attr.into_iter().collect();
            pairs.sort_by_key(|(a, _)| *a);
            let mut entry = TermEntry {
                attrs: Vec::with_capacity(pairs.len()),
                postings: Vec::with_capacity(pairs.len()),
            };
            for (aref, postings) in pairs {
                if let Some(s) = attr_stats.get_mut(&aref) {
                    s.vocabulary += 1;
                }
                entry.attrs.push(aref);
                entry.postings.push(postings);
            }
            dict.insert(term, entry);
        }

        // Schema-term index over table and attribute names.
        let mut schema_terms: HashMap<String, Vec<SchemaTarget>> = HashMap::new();
        for (tid, tdef) in db.schema().tables() {
            for tok in tokenizer.tokenize(&tdef.name) {
                schema_terms
                    .entry(tok)
                    .or_default()
                    .push(SchemaTarget::Table(tid));
            }
            for (aid, adef) in tdef.attrs_with_ids() {
                for tok in tokenizer.tokenize(&adef.name) {
                    schema_terms
                        .entry(tok)
                        .or_default()
                        .push(SchemaTarget::Attribute(AttrRef {
                            table: tid,
                            attr: aid,
                        }));
                }
            }
        }

        InvertedIndex {
            dict,
            attr_stats,
            schema_terms,
            tokenizer,
        }
    }

    /// Incrementally index one freshly inserted row of `table`, splicing its
    /// postings and updating attribute statistics online so that the result
    /// is *exactly* what [`Self::build`] would produce over the grown
    /// database — same postings (sorted by row id), same sorted
    /// [`Self::attrs_containing`] slices, same integer statistics and hence
    /// bit-identical ATF/IDF/joint-ATF values. The live-ingestion
    /// equivalence suite depends on this exactness.
    ///
    /// Call once per inserted row, *after* the row landed in `db`. Rows of
    /// tables without text attributes are a no-op. Schema-name terms need no
    /// maintenance: the schema is immutable.
    pub fn index_row(&mut self, db: &Database, table: TableId, row: RowId) {
        self.index_row_values(db.schema(), table, row, db.table(table).row(row));
    }

    /// [`Self::index_row`] for a row that is *not* stored in a local
    /// [`Database`]: the caller supplies the schema and the row's values
    /// directly. The sharded coordinator uses this to keep its global index
    /// current — routed rows land in per-shard stores under shard-local ids,
    /// so the coordinator indexes the batch's values under the row's global
    /// id instead of re-reading a store. Bit-identical in effect to
    /// [`Self::index_row`] over a database holding `values` at `row`.
    pub fn index_row_values(
        &mut self,
        schema: &keybridge_relstore::Schema,
        table: TableId,
        row: RowId,
        values: &[keybridge_relstore::Value],
    ) {
        let tdef = schema.table(table);
        let stored = values;
        for (aid, _) in tdef.text_attrs() {
            let aref = AttrRef { table, attr: aid };
            let stats = self.attr_stats.entry(aref).or_default();
            stats.row_count += 1;
            let Some(text) = stored[aid.0 as usize].as_text() else {
                continue;
            };
            let tokens = self.tokenizer.tokenize(text);
            stats.total_tokens += tokens.len() as u64;
            let mut counts: HashMap<&str, u32> = HashMap::new();
            for t in &tokens {
                *counts.entry(t.as_str()).or_default() += 1;
            }
            for (term, tf) in counts {
                let entry = self.dict.entry(term.to_owned()).or_default();
                let slot = match entry.attrs.binary_search(&aref) {
                    Ok(i) => i,
                    Err(i) => {
                        // First occurrence of the term in this attribute:
                        // splice the parallel vectors at the sorted position
                        // and grow the attribute's vocabulary.
                        entry.attrs.insert(i, aref);
                        entry.postings.insert(i, TermAttrEntry::default());
                        if let Some(s) = self.attr_stats.get_mut(&aref) {
                            s.vocabulary += 1;
                        }
                        i
                    }
                };
                let posting = &mut entry.postings[slot];
                // Postings stay row-sorted. Fresh rows carry the largest id
                // of their table, so the common case is a push at the end;
                // the binary search keeps re-indexing or out-of-order
                // maintenance correct too.
                match posting.rows.binary_search_by_key(&row, |&(r, _)| r) {
                    Ok(i) => posting.rows[i].1 += tf, // defensive: re-indexed row
                    Err(i) => posting.rows.insert(i, (row, tf)),
                }
                posting.occurrences += tf as u64;
            }
        }
    }

    /// [`Self::index_row`] over a batch of freshly inserted rows (e.g. the
    /// ids returned by `Database::insert_batch`, zipped with their tables).
    pub fn index_batch(&mut self, db: &Database, rows: &[(TableId, RowId)]) {
        for &(table, row) in rows {
            self.index_row(db, table, row);
        }
    }

    /// All dictionary terms, in no particular order (diagnostics and the
    /// incremental-equivalence tests).
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.dict.keys().map(String::as_str)
    }

    /// The tokenizer the index was built with.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Number of distinct terms in the dictionary.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Statistics of one attribute (zeroed if the attribute is not indexed).
    pub fn attr_stats(&self, attr: AttrRef) -> AttrStats {
        self.attr_stats.get(&attr).copied().unwrap_or_default()
    }

    /// All indexed attributes.
    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrRef> + '_ {
        self.attr_stats.keys().copied()
    }

    /// Postings of `term` in `attr`, if any.
    pub fn postings(&self, term: &str, attr: AttrRef) -> Option<&TermAttrEntry> {
        self.dict.get(term)?.get(attr)
    }

    /// The attributes in which `term` occurs, sorted — a borrowed slice, so
    /// the per-query candidate harvest allocates nothing.
    pub fn attrs_containing(&self, term: &str) -> &[AttrRef] {
        self.dict
            .get(term)
            .map(|e| e.attrs.as_slice())
            .unwrap_or(&[])
    }

    /// Schema elements whose name contains `term`.
    pub fn schema_matches(&self, term: &str) -> &[SchemaTarget] {
        self.schema_terms
            .get(term)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The postings lists of all `terms` in `attr`, sorted smallest-first.
    /// `None` when any term is absent from the attribute (the intersection
    /// is empty a priori).
    fn term_lists<'a>(
        &'a self,
        terms: &[String],
        attr: AttrRef,
        lists: &mut Vec<&'a TermAttrEntry>,
    ) -> bool {
        lists.clear();
        for t in terms {
            match self.postings(t, attr) {
                Some(e) => lists.push(e),
                None => return false,
            }
        }
        lists.sort_by_key(|e| e.rows.len());
        true
    }

    /// Rows of `attr`'s table whose value contains *all* of `terms`
    /// (the `k1..km ⊂ A` containment predicate of Def. 3.5.2), sorted.
    pub fn rows_with_all(&self, terms: &[String], attr: AttrRef) -> Vec<RowId> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.rows_with_all_into(terms, attr, &mut out, &mut scratch);
        out
    }

    /// Allocation-free variant of [`Self::rows_with_all`]: the intersection
    /// lands in `out`; `scratch` is a reusable work buffer. Both are cleared
    /// first, so callers can reuse them across calls.
    pub fn rows_with_all_into(
        &self,
        terms: &[String],
        attr: AttrRef,
        out: &mut Vec<RowId>,
        scratch: &mut Vec<RowId>,
    ) {
        out.clear();
        if terms.is_empty() {
            return;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return;
        }
        out.extend(lists[0].rows.iter().map(|&(r, _)| r));
        for e in &lists[1..] {
            // `out` is no longer than `e.rows` (smallest-first order), so
            // probe each survivor into the larger sorted list.
            scratch.clear();
            scratch.extend(
                out.iter()
                    .copied()
                    .filter(|&r| e.rows.binary_search_by_key(&r, |&(x, _)| x).is_ok()),
            );
            std::mem::swap(out, scratch);
            if out.is_empty() {
                return;
            }
        }
    }

    /// Whether at least one row of `attr` contains *all* of `terms` — the
    /// non-emptiness probe of the DivQ necessary condition (§4.4.1). Walks
    /// the smallest postings list and exits on the first surviving row, so
    /// the common case (a frequent co-occurrence) costs a handful of binary
    /// searches instead of a full intersection.
    pub fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool {
        if terms.is_empty() {
            return false;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return false;
        }
        let (probe, rest) = lists.split_first().expect("terms nonempty");
        probe.rows.iter().any(|&(row, _)| {
            rest.iter()
                .all(|e| e.rows.binary_search_by_key(&row, |&(x, _)| x).is_ok())
        })
    }

    /// Document frequency of `term` in `attr`: number of rows containing it.
    pub fn df(&self, term: &str, attr: AttrRef) -> usize {
        self.postings(term, attr).map_or(0, TermAttrEntry::df)
    }

    /// Lucene-style inverse document frequency of `term` within `attr`:
    /// `1 + ln((N + 1) / (df + 1))`.
    pub fn idf(&self, term: &str, attr: AttrRef) -> f64 {
        let n = self.attr_stats(attr).row_count as f64;
        let df = self.df(term, attr) as f64;
        1.0 + ((n + 1.0) / (df + 1.0)).ln()
    }

    /// The ATF normalizer of `attr` under smoothing `alpha` (the denominator
    /// of Eq. 3.8). Zero when the attribute holds no tokens and `alpha` is
    /// zero. Exposed so incremental scorers can cache it per attribute.
    pub fn atf_denominator(&self, attr: AttrRef, alpha: f64) -> f64 {
        let stats = self.attr_stats(attr);
        stats.total_tokens as f64 + alpha * (stats.vocabulary as f64 + 1.0)
    }

    /// Attribute term frequency with additive smoothing (Eq. 3.8):
    /// the probability that a random token drawn from `attr` is `term`,
    /// Laplace-smoothed with parameter `alpha` so unseen terms keep a small
    /// non-zero mass. The paper writes `ATF = TF + α` up to normalization;
    /// we implement the normalized form directly.
    pub fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64 {
        let occ = self.postings(term, attr).map_or(0, |e| e.occurrences) as f64;
        let denom = self.atf_denominator(attr, alpha);
        if denom <= 0.0 {
            return 0.0;
        }
        (occ + alpha) / denom
    }

    /// Joint attribute term frequency of a keyword *bag* (DivQ, Eq. 4.2):
    /// how often the combination `terms` co-occurs inside single values of
    /// `attr`. A row contributes `min_i tf(term_i)` combination occurrences.
    /// When the terms genuinely co-occur (first + last name in a `name`
    /// attribute) this exceeds the product of marginal ATFs, which is what
    /// pushes phrase-consistent interpretations up the ranking.
    ///
    /// Joint occurrences are counted by walking the smallest postings list
    /// and probing the rest by binary search — no per-call hash maps.
    pub fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64 {
        if terms.is_empty() {
            return 0.0;
        }
        if terms.len() == 1 {
            return self.atf(&terms[0], attr, alpha);
        }
        let denom = self.atf_denominator(attr, alpha);
        if denom <= 0.0 {
            return 0.0;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return alpha / denom;
        }
        let joint = self
            .joint_occurrences(terms, attr)
            .expect("term_lists succeeded");
        (joint as f64 + alpha) / denom
    }

    /// Total combination occurrences of `terms` within single values of
    /// `attr` (the numerator of [`Self::joint_atf`] before smoothing): each
    /// row contributes `min_i tf(term_i)`. `None` when some term has no
    /// postings in `attr` at all — callers merging several indexes need to
    /// distinguish "absent here" (skip) from "present with zero joint
    /// occurrences" (count).
    pub fn joint_occurrences(&self, terms: &[String], attr: AttrRef) -> Option<u64> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<&TermAttrEntry> = Vec::with_capacity(terms.len());
        if !self.term_lists(terms, attr, &mut lists) {
            return None;
        }
        let (probe, rest) = lists.split_first().expect("terms nonempty");
        let mut joint: u64 = 0;
        'rows: for &(row, tf0) in &probe.rows {
            let mut m = tf0;
            for e in rest {
                match e.tf(row) {
                    Some(tf) => m = m.min(tf),
                    None => continue 'rows,
                }
            }
            joint += m as u64;
        }
        Some(joint)
    }

    /// Flat iteration over every `(term, attribute, postings)` triple, for
    /// building merged views over several indexes. Order is unspecified
    /// (hash-map iteration); merging callers must sort.
    pub fn term_attr_postings(&self) -> impl Iterator<Item = (&str, AttrRef, &TermAttrEntry)> {
        self.dict.iter().flat_map(|(term, entry)| {
            entry
                .attrs
                .iter()
                .zip(&entry.postings)
                .map(move |(&attr, p)| (term.as_str(), attr, p))
        })
    }
}

/// The slice of index functionality the interpretation-generation layer
/// consumes: candidate harvesting ([`TermIndex::attrs_containing`],
/// [`TermIndex::schema_matches`]), predicate non-emptiness
/// ([`TermIndex::has_row_with_all`]), and the smoothed (joint) attribute
/// term frequencies the probability model scores with. Implemented by
/// [`InvertedIndex`] and by merged multi-shard views, so one generation
/// code path serves both a single store and a sharded coordinator.
pub trait TermIndex {
    /// The attributes in which `term` occurs, sorted.
    fn attrs_containing(&self, term: &str) -> &[AttrRef];
    /// Schema elements whose name contains `term`.
    fn schema_matches(&self, term: &str) -> &[SchemaTarget];
    /// Whether at least one row of `attr` contains *all* of `terms`.
    fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool;
    /// Attribute term frequency with additive smoothing (Eq. 3.8).
    fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64;
    /// Joint attribute term frequency of a keyword bag (DivQ, Eq. 4.2).
    fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64;
}

impl TermIndex for InvertedIndex {
    fn attrs_containing(&self, term: &str) -> &[AttrRef] {
        InvertedIndex::attrs_containing(self, term)
    }

    fn schema_matches(&self, term: &str) -> &[SchemaTarget] {
        InvertedIndex::schema_matches(self, term)
    }

    fn has_row_with_all(&self, terms: &[String], attr: AttrRef) -> bool {
        InvertedIndex::has_row_with_all(self, terms, attr)
    }

    fn atf(&self, term: &str, attr: AttrRef, alpha: f64) -> f64 {
        InvertedIndex::atf(self, term, attr, alpha)
    }

    fn joint_atf(&self, terms: &[String], attr: AttrRef, alpha: f64) -> f64 {
        InvertedIndex::joint_atf(self, terms, attr, alpha)
    }
}

// ---------------------------------------------------------------------------
// On-disk snapshot (same framing as the relstore database snapshot:
// length-prefixed, CRC-checksummed sections behind a versioned magic header).
// ---------------------------------------------------------------------------

const IDX_MAGIC: &[u8; 8] = b"KBTIDX01";
const IDX_VERSION: u32 = 1;
const SEC_TOKENIZER: u8 = 1;
const SEC_ATTR_STATS: u8 = 2;
const SEC_DICT: u8 = 3;
const SEC_SCHEMA_TERMS: u8 = 4;

const TARGET_TABLE: u8 = 0;
const TARGET_ATTR: u8 = 1;

fn put_attr_ref(out: &mut Vec<u8>, a: AttrRef) {
    put_u32(out, a.table.0);
    put_u32(out, a.attr.0);
}

fn read_attr_ref(c: &mut Cursor<'_>) -> Result<AttrRef, SnapshotError> {
    Ok(AttrRef {
        table: TableId(c.u32()?),
        attr: AttrId(c.u32()?),
    })
}

impl InvertedIndex {
    /// Serialize the index — tokenizer configuration, attribute statistics,
    /// the full dictionary, and the schema-term index. Deterministic: terms,
    /// attributes, and targets are written sorted (postings are row-sorted
    /// already), so the same index always yields the same bytes, and a
    /// future mmap-style reader can binary-search the dictionary in place.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(IDX_MAGIC);
        put_u32(&mut out, IDX_VERSION);

        let mut sec = Vec::new();
        let stopwords = self.tokenizer.stopwords();
        put_u32(&mut sec, stopwords.len() as u32);
        for w in stopwords {
            put_str(&mut sec, w);
        }
        put_section(&mut out, SEC_TOKENIZER, &sec);

        let mut sec = Vec::new();
        let mut stats: Vec<(AttrRef, AttrStats)> =
            self.attr_stats.iter().map(|(a, s)| (*a, *s)).collect();
        stats.sort_by_key(|(a, _)| *a);
        put_u32(&mut sec, stats.len() as u32);
        for (aref, s) in stats {
            put_attr_ref(&mut sec, aref);
            put_u32(&mut sec, s.row_count);
            put_u64(&mut sec, s.total_tokens);
            put_u32(&mut sec, s.vocabulary);
        }
        put_section(&mut out, SEC_ATTR_STATS, &sec);

        let mut sec = Vec::new();
        let mut terms: Vec<&String> = self.dict.keys().collect();
        terms.sort_unstable();
        put_u32(&mut sec, terms.len() as u32);
        for term in terms {
            let entry = &self.dict[term];
            put_str(&mut sec, term);
            put_u32(&mut sec, entry.attrs.len() as u32);
            for (aref, posting) in entry.attrs.iter().zip(&entry.postings) {
                put_attr_ref(&mut sec, *aref);
                put_u64(&mut sec, posting.occurrences);
                put_u32(&mut sec, posting.rows.len() as u32);
                for &(row, tf) in &posting.rows {
                    put_u32(&mut sec, row.0);
                    put_u32(&mut sec, tf);
                }
            }
        }
        put_section(&mut out, SEC_DICT, &sec);

        let mut sec = Vec::new();
        let mut schema_terms: Vec<(&String, &Vec<SchemaTarget>)> =
            self.schema_terms.iter().collect();
        schema_terms.sort_by_key(|(t, _)| *t);
        put_u32(&mut sec, schema_terms.len() as u32);
        for (term, targets) in schema_terms {
            put_str(&mut sec, term);
            put_u32(&mut sec, targets.len() as u32);
            for t in targets {
                match t {
                    SchemaTarget::Table(tid) => {
                        put_u8(&mut sec, TARGET_TABLE);
                        put_u32(&mut sec, tid.0);
                        put_u32(&mut sec, 0);
                    }
                    SchemaTarget::Attribute(aref) => {
                        put_u8(&mut sec, TARGET_ATTR);
                        put_attr_ref(&mut sec, *aref);
                    }
                }
            }
        }
        put_section(&mut out, SEC_SCHEMA_TERMS, &sec);
        out
    }

    /// Decode a snapshot produced by [`Self::snapshot_bytes`]. The result is
    /// observationally identical to the original index: same postings, same
    /// statistics, same schema matches, same tokenizer behavior.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut c = Cursor::new(bytes);
        if c.take(8)? != IDX_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = c.u32()?;
        if version != IDX_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let mut tc = Cursor::new(c.section(SEC_TOKENIZER)?);
        let n = tc.u32()? as usize;
        let mut stopwords = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            stopwords.push(tc.str()?);
        }
        let tokenizer = Tokenizer::with_stopwords(stopwords);

        let mut sc = Cursor::new(c.section(SEC_ATTR_STATS)?);
        let n = sc.u32()? as usize;
        let mut attr_stats = HashMap::with_capacity(n);
        for _ in 0..n {
            let aref = read_attr_ref(&mut sc)?;
            attr_stats.insert(
                aref,
                AttrStats {
                    row_count: sc.u32()?,
                    total_tokens: sc.u64()?,
                    vocabulary: sc.u32()?,
                },
            );
        }

        let mut dc = Cursor::new(c.section(SEC_DICT)?);
        let n_terms = dc.u32()? as usize;
        let mut dict = HashMap::with_capacity(n_terms);
        for _ in 0..n_terms {
            let term = dc.str()?;
            let n_attrs = dc.u32()? as usize;
            let mut entry = TermEntry {
                attrs: Vec::with_capacity(n_attrs.min(1 << 16)),
                postings: Vec::with_capacity(n_attrs.min(1 << 16)),
            };
            for _ in 0..n_attrs {
                let aref = read_attr_ref(&mut dc)?;
                let occurrences = dc.u64()?;
                let n_rows = dc.u32()? as usize;
                let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    let row = RowId(dc.u32()?);
                    let tf = dc.u32()?;
                    rows.push((row, tf));
                }
                entry.attrs.push(aref);
                entry.postings.push(TermAttrEntry { rows, occurrences });
            }
            dict.insert(term, entry);
        }

        let mut xc = Cursor::new(c.section(SEC_SCHEMA_TERMS)?);
        let n = xc.u32()? as usize;
        let mut schema_terms = HashMap::with_capacity(n);
        for _ in 0..n {
            let term = xc.str()?;
            let n_targets = xc.u32()? as usize;
            let mut targets = Vec::with_capacity(n_targets.min(1 << 16));
            for _ in 0..n_targets {
                let kind = xc.u8()?;
                let table = TableId(xc.u32()?);
                let attr = AttrId(xc.u32()?);
                targets.push(match kind {
                    TARGET_TABLE => SchemaTarget::Table(table),
                    TARGET_ATTR => SchemaTarget::Attribute(AttrRef { table, attr }),
                    k => {
                        return Err(SnapshotError::Corrupt(format!(
                            "unknown schema target kind {k}"
                        )))
                    }
                });
            }
            schema_terms.insert(term, targets);
        }
        if c.remaining() != 0 {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after index snapshot".into(),
            ));
        }
        Ok(InvertedIndex {
            dict,
            attr_stats,
            schema_terms,
            tokenizer,
        })
    }

    /// Write [`Self::snapshot_bytes`] to `path`, fsynced.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.snapshot_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Read and decode a snapshot written by [`Self::save_snapshot`].
    pub fn load_snapshot(path: &std::path::Path) -> Result<InvertedIndex, SnapshotError> {
        use std::io::Read;
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        InvertedIndex::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keybridge_relstore::{Database, SchemaBuilder, TableKind, Value};

    fn db() -> Database {
        let mut b = SchemaBuilder::new();
        b.table("actor", TableKind::Entity)
            .pk("id")
            .text_attr("name");
        b.table("movie", TableKind::Entity)
            .pk("id")
            .text_attr("title")
            .int_attr("year");
        let mut db = Database::new(b.finish().unwrap());
        let actor = db.schema().table_id("actor").unwrap();
        let movie = db.schema().table_id("movie").unwrap();
        for (id, n) in [
            (1, "Tom Hanks"),
            (2, "Tom Cruise"),
            (3, "Colin Hanks"),
            (4, "Meg Ryan"),
        ] {
            db.insert(actor, vec![Value::Int(id), Value::text(n)])
                .unwrap();
        }
        for (id, t, y) in [
            (10, "The Terminal", 2004),
            (11, "Tom and Huck", 1995),
            (12, "Terminal Velocity", 1994),
        ] {
            db.insert(movie, vec![Value::Int(id), Value::text(t), Value::Int(y)])
                .unwrap();
        }
        db
    }

    fn aref(db: &Database, table: &str, attr: &str) -> AttrRef {
        db.schema().resolve(table, attr).unwrap()
    }

    #[test]
    fn postings_and_df() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        assert_eq!(idx.df("tom", name), 2);
        assert_eq!(idx.df("hanks", name), 2);
        assert_eq!(idx.df("tom", title), 1);
        assert_eq!(idx.df("terminal", title), 2);
        assert_eq!(idx.df("nope", title), 0);
        assert!(idx.term_count() > 0);
    }

    #[test]
    fn attrs_containing_term() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let attrs = idx.attrs_containing("tom");
        assert_eq!(attrs.len(), 2); // actor.name and movie.title
                                    // Returned sorted, so candidate harvesting needs no re-sort.
        assert!(attrs.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.attrs_containing("zzz").is_empty());
    }

    #[test]
    fn rows_with_all_intersects() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let tom_hanks = idx.rows_with_all(&["tom".to_owned(), "hanks".to_owned()], name);
        assert_eq!(tom_hanks.len(), 1);
        let toms = idx.rows_with_all(&["tom".to_owned()], name);
        assert_eq!(toms.len(), 2);
        assert!(idx
            .rows_with_all(&["tom".to_owned(), "ryan".to_owned()], name)
            .is_empty());
        assert!(idx.rows_with_all(&[], name).is_empty());
    }

    #[test]
    fn rows_with_all_into_reuses_buffers() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let mut out = vec![RowId(99)]; // stale content must be cleared
        let mut scratch = vec![RowId(98)];
        idx.rows_with_all_into(
            &["tom".to_owned(), "hanks".to_owned()],
            name,
            &mut out,
            &mut scratch,
        );
        assert_eq!(out.len(), 1);
        idx.rows_with_all_into(&["tom".to_owned()], name, &mut out, &mut scratch);
        assert_eq!(out.len(), 2);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted output");
    }

    #[test]
    fn has_row_with_all_matches_full_intersection() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        for (terms, attr) in [
            (vec!["tom".to_owned(), "hanks".to_owned()], name),
            (vec!["tom".to_owned(), "ryan".to_owned()], name),
            (vec!["terminal".to_owned()], title),
            (vec!["tom".to_owned(), "huck".to_owned()], title),
            (vec![], name),
        ] {
            assert_eq!(
                idx.has_row_with_all(&terms, attr),
                !idx.rows_with_all(&terms, attr).is_empty(),
                "{terms:?}"
            );
        }
    }

    #[test]
    fn atf_prefers_frequent_terms() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        // "tom" occurs twice in actor.name, "meg" once.
        assert!(idx.atf("tom", name, 1.0) > idx.atf("meg", name, 1.0));
        // Unseen terms get non-zero smoothed mass, below seen terms.
        let unseen = idx.atf("zzz", name, 1.0);
        assert!(unseen > 0.0);
        assert!(unseen < idx.atf("meg", name, 1.0));
    }

    #[test]
    fn atf_sums_to_one_over_vocab() {
        // Σ_term atf(term) + atf(one unseen) ≈ 1 by construction.
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let stats = idx.attr_stats(name);
        let terms = ["tom", "hanks", "cruise", "colin", "meg", "ryan"];
        assert_eq!(stats.vocabulary as usize, terms.len());
        let sum: f64 = terms.iter().map(|t| idx.atf(t, name, 1.0)).sum();
        let with_unseen = sum + idx.atf("unseen", name, 1.0);
        assert!((with_unseen - 1.0).abs() < 1e-9, "sum = {with_unseen}");
    }

    #[test]
    fn joint_atf_rewards_cooccurrence() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        let pair = vec!["tom".to_owned(), "hanks".to_owned()];
        let joint_name = idx.joint_atf(&pair, name, 1.0);
        let product = idx.atf("tom", name, 1.0) * idx.atf("hanks", name, 1.0);
        assert!(joint_name > product, "{joint_name} vs {product}");
        // "tom hanks" never co-occurs in a title.
        let joint_title = idx.joint_atf(&pair, title, 1.0);
        assert!(joint_name > joint_title);
        // Single-term joint degrades to plain ATF.
        assert_eq!(
            idx.joint_atf(&["tom".to_owned()], name, 1.0),
            idx.atf("tom", name, 1.0)
        );
        assert_eq!(idx.joint_atf(&[], name, 1.0), 0.0);
    }

    #[test]
    fn idf_prefers_selective_terms() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let title = aref(&db, "movie", "title");
        // "velocity" (df=1) is more selective than "terminal" (df=2).
        assert!(idx.idf("velocity", title) > idx.idf("terminal", title));
        // Unseen terms have maximal idf.
        assert!(idx.idf("zzz", title) >= idx.idf("velocity", title));
    }

    #[test]
    fn schema_matches_tables_and_attrs() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let actor = db.schema().table_id("actor").unwrap();
        assert_eq!(idx.schema_matches("actor"), &[SchemaTarget::Table(actor)]);
        let title_matches = idx.schema_matches("title");
        assert_eq!(title_matches.len(), 1);
        assert!(matches!(title_matches[0], SchemaTarget::Attribute(_)));
        assert!(idx.schema_matches("zzz").is_empty());
    }

    #[test]
    fn stats_counts() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let name = aref(&db, "actor", "name");
        let s = idx.attr_stats(name);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.total_tokens, 8);
        assert_eq!(s.vocabulary, 6);
        // Unindexed (int) attribute reports zeros.
        let year = aref(&db, "movie", "year");
        assert_eq!(idx.attr_stats(year), AttrStats::default());
        // Denominator matches the ATF normalization.
        assert_eq!(idx.atf_denominator(name, 1.0), 8.0 + 7.0);
    }

    #[test]
    fn stopwords_not_indexed() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let title = aref(&db, "movie", "title");
        assert_eq!(idx.df("the", title), 0); // "The Terminal"
        assert_eq!(idx.df("and", title), 0); // "Tom and Huck"
    }

    #[test]
    fn snapshot_roundtrip_is_observationally_identical() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let bytes = idx.snapshot_bytes();
        let back = InvertedIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.term_count(), idx.term_count());
        let name = aref(&db, "actor", "name");
        let title = aref(&db, "movie", "title");
        for attr in [name, title] {
            assert_eq!(back.attr_stats(attr), idx.attr_stats(attr));
            for term in ["tom", "hanks", "terminal", "huck", "zzz"] {
                assert_eq!(back.df(term, attr), idx.df(term, attr), "{term}");
                assert_eq!(
                    back.atf(term, attr, 1.0).to_bits(),
                    idx.atf(term, attr, 1.0).to_bits(),
                    "bit-exact ATF for {term}"
                );
                assert_eq!(back.attrs_containing(term), idx.attrs_containing(term));
            }
        }
        for term in ["actor", "title", "movie", "year"] {
            assert_eq!(back.schema_matches(term), idx.schema_matches(term));
        }
        assert_eq!(back.tokenizer().stopwords(), idx.tokenizer().stopwords());
        // Deterministic bytes: re-encoding the decoded index is identical.
        assert_eq!(back.snapshot_bytes(), bytes);
    }

    #[test]
    fn snapshot_after_incremental_updates_matches_rebuild() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        let actor = db.schema().table_id("actor").unwrap();
        let r = db
            .insert(actor, vec![Value::Int(5), Value::text("Tom Stoppard")])
            .unwrap();
        idx.index_row(&db, actor, r);
        // The incrementally spliced index serializes byte-identically to a
        // from-scratch rebuild — the snapshot inherits the splice-equals-
        // rebuild guarantee.
        assert_eq!(
            idx.snapshot_bytes(),
            InvertedIndex::build(&db).snapshot_bytes()
        );
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let bytes = idx.snapshot_bytes();
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            InvertedIndex::from_snapshot_bytes(&wrong).unwrap_err(),
            keybridge_relstore::SnapshotError::BadMagic
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(InvertedIndex::from_snapshot_bytes(&flipped).is_err());
        for cut in (0..bytes.len()).step_by(7) {
            assert!(InvertedIndex::from_snapshot_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let path = std::env::temp_dir().join(format!(
            "keybridge-index-snapshot-test-{}.kb",
            std::process::id()
        ));
        idx.save_snapshot(&path).unwrap();
        let back = InvertedIndex::load_snapshot(&path).unwrap();
        assert_eq!(back.snapshot_bytes(), idx.snapshot_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}
